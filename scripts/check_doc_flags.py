"""Doc-consistency check: every EngineConfig knob must be documented.

Walks `dataclasses.fields(EngineConfig)` and asserts each field name
appears in backticks in

* the README configuration table,
* `docs/performance.md` (the fast-path narrative), and
* `docs/MATCHING.md` (the engine reference section),

so adding a flag without documenting it fails CI.  Run directly::

    PYTHONPATH=src python scripts/check_doc_flags.py
"""

from __future__ import annotations

import dataclasses
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)

#: every one of these files must mention every EngineConfig field
DOC_PATHS = [
    "README.md",
    os.path.join("docs", "performance.md"),
    os.path.join("docs", "MATCHING.md"),
]


def undocumented_flags() -> list:
    """(flag, doc-path) pairs for every missing mention."""
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.harmony.engine import EngineConfig

    flags = [f.name for f in dataclasses.fields(EngineConfig)]
    missing = []
    for path in DOC_PATHS:
        with open(os.path.join(REPO, path), "r", encoding="utf-8") as handle:
            text = handle.read()
        for flag in flags:
            if f"`{flag}`" not in text and f"`EngineConfig.{flag}`" not in text:
                missing.append((flag, path))
    return missing


def main() -> int:
    missing = undocumented_flags()
    if missing:
        for flag, path in missing:
            print(f"FAIL: EngineConfig.{flag} is not documented in {path}",
                  file=sys.stderr)
        print(f"{len(missing)} missing flag mention(s); document the flag "
              f"in a backticked table row or prose reference.",
              file=sys.stderr)
        return 1
    print("doc-consistency OK: every EngineConfig flag is documented in "
          + ", ".join(DOC_PATHS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
