"""Doc-consistency check: every config knob must be documented.

Walks the fields of each CI-enforced config dataclass and asserts each
field name appears in backticks in that dataclass's doc set:

* ``EngineConfig`` (the match fast path) — the README configuration
  table, `docs/performance.md` and `docs/MATCHING.md`;
* ``ServingConfig`` (the workbench server) — the README,
  `docs/SERVING.md` and `docs/performance.md`;
* ``BlockingConfig`` (candidate blocking, both strategies) —
  `docs/performance.md` and `docs/MATCHING.md`;
* ``EmbedConfig`` / ``AnnConfig`` (the dense-embedding subsystem) —
  `docs/performance.md`,

so adding a flag without documenting it fails CI.  Run directly::

    PYTHONPATH=src python scripts/check_doc_flags.py
"""

from __future__ import annotations

import dataclasses
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)

#: (config import, doc paths): every listed file must mention every field
DOC_SETS = [
    (
        ("repro.harmony.engine", "EngineConfig"),
        [
            "README.md",
            os.path.join("docs", "performance.md"),
            os.path.join("docs", "MATCHING.md"),
        ],
    ),
    (
        ("repro.serving.config", "ServingConfig"),
        [
            "README.md",
            os.path.join("docs", "SERVING.md"),
            os.path.join("docs", "performance.md"),
        ],
    ),
    (
        ("repro.harmony.blocking", "BlockingConfig"),
        [
            os.path.join("docs", "performance.md"),
            os.path.join("docs", "MATCHING.md"),
        ],
    ),
    (
        ("repro.embed.embedder", "EmbedConfig"),
        [
            os.path.join("docs", "performance.md"),
        ],
    ),
    (
        ("repro.embed.ann", "AnnConfig"),
        [
            os.path.join("docs", "performance.md"),
        ],
    ),
]


def undocumented_flags() -> list:
    """(config name, flag, doc-path) triples for every missing mention."""
    sys.path.insert(0, os.path.join(REPO, "src"))
    import importlib

    missing = []
    for (module_name, class_name), doc_paths in DOC_SETS:
        config_class = getattr(importlib.import_module(module_name),
                               class_name)
        flags = [f.name for f in dataclasses.fields(config_class)]
        for path in doc_paths:
            with open(os.path.join(REPO, path), "r",
                      encoding="utf-8") as handle:
                text = handle.read()
            for flag in flags:
                if (f"`{flag}`" not in text
                        and f"`{class_name}.{flag}`" not in text):
                    missing.append((class_name, flag, path))
    return missing


def main() -> int:
    missing = undocumented_flags()
    if missing:
        for config_name, flag, path in missing:
            print(f"FAIL: {config_name}.{flag} is not documented in {path}",
                  file=sys.stderr)
        print(f"{len(missing)} missing flag mention(s); document the flag "
              f"in a backticked table row or prose reference.",
              file=sys.stderr)
        return 1
    checked = ", ".join(class_name for (_, class_name), _ in DOC_SETS)
    print(f"doc-consistency OK: every {checked} field is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
