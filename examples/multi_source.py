"""Multi-source integration without a target schema (§3.2).

Three personnel systems describe the same world with different names and
coding schemes.  No target schema exists — so the workbench derives one:
pairwise Harmony matching, concept clustering, unified-schema synthesis
(task 2's optional path / task 9's fallback), then the derived mappings
feed the usual mapping/codegen phase, and data from all three sources
lands in the unified shape.

Run:  python examples/multi_source.py
"""

from repro.codegen import assemble
from repro.harmony import integrate_sources
from repro.loaders import load_er
from repro.mapper import MappingTool

HR1 = {
    "name": "hr_east",
    "entities": [{
        "name": "Employee",
        "documentation": "A person employed by the eastern division.",
        "attributes": [
            {"name": "empId", "type": "integer", "key": True,
             "documentation": "Unique employee number."},
            {"name": "salary", "type": "decimal",
             "documentation": "Annual gross salary in dollars."},
            {"name": "grade", "type": "string", "domain": "Grade",
             "documentation": "Pay grade code of the employee."},
        ]}],
    "domains": [{"name": "Grade", "values": [
        {"code": "GS7", "documentation": "Grade seven"},
        {"code": "GS9", "documentation": "Grade nine"}]}],
}

HR2 = {
    "name": "hr_west",
    "entities": [{
        "name": "Worker",
        "documentation": "A person employed by the western division.",
        "attributes": [
            {"name": "workerNumber", "type": "integer", "key": True,
             "documentation": "Unique worker number for the person."},
            {"name": "pay", "type": "decimal",
             "documentation": "Annual gross pay in dollars."},
            {"name": "payGrade", "type": "string", "domain": "PayGrade",
             "documentation": "Code for the pay grade of the worker."},
        ]}],
    "domains": [{"name": "PayGrade", "values": [
        {"code": "GS7"}, {"code": "GS9"}, {"code": "GS11"}]}],
}

HR3 = {
    "name": "hr_hq",
    "entities": [{
        "name": "Staff",
        "documentation": "Employed staff member at headquarters.",
        "attributes": [
            {"name": "staffId", "type": "integer", "key": True,
             "documentation": "Unique staff number."},
            {"name": "compensation", "type": "decimal",
             "documentation": "Annual compensation amount in dollars."},
        ]}],
}


def main() -> None:
    sources = [load_er(HR1), load_er(HR2), load_er(HR3)]
    result = integrate_sources(sources, threshold=0.45, name="unified_hr")

    print("=== concept clusters across the three sources ===")
    for cluster in result.clusters:
        if len(cluster) > 1:
            members = ", ".join(f"{s}:{e.split('/')[-1]}" for s, e in cluster)
            print(f"  {{ {members} }}")
    print()

    print("=== derived unified schema (task 9's fallback) ===")
    print(result.target.to_text())
    print()

    # every source now has a pre-accepted mapping to the unified schema;
    # drafting + assembling gives runnable per-source transformations
    data = {
        "hr_east": {"hr_east/Employee": [
            {"empId": 1, "salary": 98000.0, "grade": "GS9"}]},
        "hr_west": {"hr_west/Worker": [
            {"workerNumber": 2, "pay": 105000.0, "payGrade": "GS11"}]},
        "hr_hq": {"hr_hq/Staff": [
            {"staffId": 3, "compensation": 120000.0}]},
    }
    unified_rows = []
    for graph in sources:
        matrix = result.source_to_target[graph.name]
        tool = MappingTool(graph, result.target, matrix=matrix)
        spec = tool.draft_from_matrix()
        assembled = assemble(spec, graph, result.target, matrix=matrix)
        execution = assembled.run(data[graph.name])
        for entity_id, rows in execution.documents.items():
            for row in rows:
                row["_source"] = graph.name  # provenance push-down
                unified_rows.append(row)

    print("=== all three sources, transformed into the unified shape ===")
    for row in unified_rows:
        print(" ", row)


if __name__ == "__main__":
    main()
