"""Enterprise matching without instance data (Section 2).

Generates a DoD-like metadata registry (schemata only — *"which contains
schemata only, no instances!"*), prints its Table-1-style documentation
statistics, then matches two documented registry models against each other
using nothing but names, documentation and coding schemes — the exact
situation the paper says enterprise integration engineers face.

Run:  python examples/government_registry.py
"""

from repro.harmony import ConfidenceFilter, MatchSession
from repro.loaders import load_registry
from repro.registry import (
    RegistryProfile,
    comparison_table,
    compute_stats,
    generate_registry,
)


def main() -> None:
    scale = 0.01
    registry_dict = generate_registry(seed=2006, scale=scale)
    stats = compute_stats(registry_dict)
    actual_scale = len(registry_dict["models"]) / 265

    print("=== Table 1 on the synthetic registry ===")
    print(stats.to_table(f"synthetic registry @ scale {actual_scale:.3f}"))
    print()
    print("=== measured vs paper (rates and lengths are scale-free) ===")
    print(comparison_table(stats, actual_scale))
    print()

    # Full registry models run to thousands of elements; for the matching
    # demo we generate two compact but equally documented models (the
    # statistics above used the realistic sizes).
    matching_profile = RegistryProfile(
        model_count=2, elements_per_model=6, attributes_per_element=5,
        domain_values_per_attribute=1.0,
    )
    small = generate_registry(seed=42, scale=1.0, profile=matching_profile,
                              name="matching-demo")
    registry = load_registry(small)
    source = registry.schemas[0]
    target = registry.schemas[1]
    print(f"matching registry models {source.name!r} ({len(source)} elements) "
          f"vs {target.name!r} ({len(target)} elements) — no instance data")

    # verify there is genuinely no instance data in play
    assert all(not e.annotation("instance_values") for e in source)
    assert all(not e.annotation("instance_values") for e in target)

    session = MatchSession(source, target)
    run = session.run_engine()
    for line in run.stage_summary():
        print("  " + line)

    strong = [c for c in session.links(None) if c.confidence > 0.6]
    print(f"\nstrong suggestions (confidence > 0.6): {len(strong)}")
    for link in sorted(strong, key=lambda c: -c.confidence)[:10]:
        print("  ", link)

    documented = sum(1 for e in source if e.has_documentation)
    print(f"\nsource documentation coverage: {documented}/{len(source)} elements — "
          "the signal that replaces instance data in enterprise settings")


if __name__ == "__main__":
    main()
