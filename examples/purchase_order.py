"""The paper's running example: Figures 2 and 3, reproduced and executed.

Builds the purchase-order source and shipping-info target schema graphs
(Figure 2), fills the annotated mapping matrix exactly as Figure 3 prints
it (confidences, variable names, column code, matrix code), then assembles
the mapping and runs it on sample purchase orders.

Run:  python examples/purchase_order.py
"""

from repro.codegen import assemble, matrix_code_listing
from repro.core import ElementKind, MappingMatrix, SchemaElement, SchemaGraph
from repro.mapper import (
    AttributeMapping,
    DirectEntity,
    EntityMapping,
    MappingSpec,
    ScalarTransform,
    SkolemFunction,
)


def figure2_source() -> SchemaGraph:
    graph = SchemaGraph.create("po")
    graph.add_child("po", SchemaElement(
        "po/purchaseOrder", "purchaseOrder", ElementKind.ELEMENT,
        documentation="A purchase order placed by a customer."),
        label="contains-element")
    graph.add_child("po/purchaseOrder", SchemaElement(
        "po/purchaseOrder/shipTo", "shipTo", ElementKind.ELEMENT,
        documentation="The party the order ships to."),
        label="contains-element")
    for name, datatype, doc in [
        ("firstName", "string", "Given name of the recipient."),
        ("lastName", "string", "Family name of the recipient."),
        ("subtotal", "decimal", "Sum of item prices before tax."),
    ]:
        graph.add_child("po/purchaseOrder/shipTo", SchemaElement(
            f"po/purchaseOrder/shipTo/{name}", name, ElementKind.ATTRIBUTE,
            datatype=datatype, documentation=doc))
    return graph


def figure2_target() -> SchemaGraph:
    graph = SchemaGraph.create("sn")
    graph.add_child("sn", SchemaElement(
        "sn/shippingInfo", "shippingInfo", ElementKind.ELEMENT,
        documentation="Shipping information for a purchase order."),
        label="contains-element")
    for name, datatype, doc in [
        ("name", "string", "Family name and given name of the recipient."),
        ("total", "decimal", "Total charge computed from the subtotal."),
    ]:
        graph.add_child("sn/shippingInfo", SchemaElement(
            f"sn/shippingInfo/{name}", name, ElementKind.ATTRIBUTE,
            datatype=datatype, documentation=doc))
    return graph


def figure3_matrix(source: SchemaGraph, target: SchemaGraph) -> MappingMatrix:
    matrix = MappingMatrix.from_schemas(source, target)
    # machine suggestions (shipTo row)
    matrix.set_confidence("po/purchaseOrder/shipTo", "sn/shippingInfo", 0.8)
    matrix.set_confidence("po/purchaseOrder/shipTo", "sn/shippingInfo/name", -0.4)
    matrix.set_confidence("po/purchaseOrder/shipTo", "sn/shippingInfo/total", -0.6)
    # user decisions (remaining rows)
    decided = {
        ("po/purchaseOrder/shipTo/firstName", "sn/shippingInfo/name"): 1.0,
        ("po/purchaseOrder/shipTo/lastName", "sn/shippingInfo/name"): 1.0,
        ("po/purchaseOrder/shipTo/subtotal", "sn/shippingInfo/total"): 1.0,
    }
    for row in ("firstName", "lastName", "subtotal"):
        for column in ("", "name", "total"):
            source_id = f"po/purchaseOrder/shipTo/{row}"
            target_id = "sn/shippingInfo" + (f"/{column}" if column else "")
            confidence = decided.get((source_id, target_id), -1.0)
            matrix.set_confidence(source_id, target_id, confidence, user_defined=True)
    # annotations, exactly as the figure prints them
    matrix.set_row_variable("po/purchaseOrder/shipTo", "$shipto")
    matrix.set_row_variable("po/purchaseOrder/shipTo/firstName", "$fname")
    matrix.set_row_variable("po/purchaseOrder/shipTo/lastName", "$lname")
    matrix.set_row_variable("po/purchaseOrder/shipTo/subtotal", "$shipto/subtotal")
    matrix.set_column_code("sn/shippingInfo/name",
                           'concat($lName, concat(", ", $fName))')
    matrix.set_column_code("sn/shippingInfo/total", "data($shipto/subtotal) * 1.05")
    for row in ("firstName", "lastName", "subtotal"):
        matrix.mark_row_complete(f"po/purchaseOrder/shipTo/{row}")
    return matrix


def main() -> None:
    source = figure2_source()
    target = figure2_target()
    print("=== Figure 2: sample schema graphs ===")
    print(source.to_text())
    print()
    print(target.to_text())
    print()

    matrix = figure3_matrix(source, target)
    print("=== Figure 3: annotated mapping matrix ===")
    print(matrix.to_text())
    print()
    print(matrix_code_listing(matrix))
    print(f"progress bar: {matrix.progress():.0%}")
    print()

    spec = MappingSpec("figure3", "po", "sn")
    entity = EntityMapping(
        target_entity="sn/shippingInfo",
        entity_transform=DirectEntity("po/purchaseOrder/shipTo"),
        identity=SkolemFunction("shippingInfo", ["fName", "lName"]),
        attributes=[
            AttributeMapping("sn/shippingInfo/name",
                             ScalarTransform('concat($lName, concat(", ", $fName))')),
            AttributeMapping("sn/shippingInfo/total",
                             ScalarTransform("data($subtotal) * 1.05")),
        ],
    )
    spec.entities.append(entity)
    spec.variable_bindings.update(
        {"fName": "firstName", "lName": "lastName", "subtotal": "subtotal"})

    assembled = assemble(spec, source, target, matrix=matrix)
    print("=== assembled XQuery (the matrix-level code annotation) ===")
    print(assembled.xquery)
    print()

    result = assembled.run({"po/purchaseOrder/shipTo": [
        {"firstName": "Peter", "lastName": "Mork", "subtotal": 100.0},
        {"firstName": "Arnon", "lastName": "Rosenthal", "subtotal": 250.0},
    ]})
    print("=== executed on sample documents ===")
    for document in result.rows("sn/shippingInfo"):
        print("  ", document)


if __name__ == "__main__":
    main()
