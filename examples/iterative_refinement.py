"""Iterative refinement with learning (Section 4.3).

Simulates the engineer's loop over several rounds: run the engine, accept
and reject a few links, re-run — the engine *"can learn from her
feedback"*: the vote merger reweights voters by their agreement with the
decisions, and the bag-of-words matcher reweights predictive words.
Prints matcher weights and match quality per round, plus the progress bar.

Run:  python examples/iterative_refinement.py
"""

from repro.eval import ScenarioConfig, commerce_model, evaluate_matrix, generate_scenario
from repro.harmony import HarmonyEngine, MatchSession


def main() -> None:
    scenario = generate_scenario(commerce_model(), ScenarioConfig(seed=23))
    engine = HarmonyEngine()
    session = MatchSession(scenario.source, scenario.target, engine=engine)

    truth_pairs = set(scenario.alignment.pairs)
    rounds = 4
    per_round = 4  # decisions the engineer makes each round

    for round_number in range(1, rounds + 1):
        session.run_engine()
        quality = evaluate_matrix(session.matrix, scenario.alignment)
        weights = {name: engine.merger.weight_of(name) for name in engine.voter_names()}
        print(f"round {round_number}: F1={quality.f1:.3f} "
              f"P={quality.precision:.3f} R={quality.recall:.3f} "
              f"progress={session.progress():.0%}")
        print("  merger weights: " + ", ".join(
            f"{name}={weight:.2f}" for name, weight in sorted(weights.items())))

        # the scripted engineer reviews the strongest undecided suggestions
        undecided = sorted(
            (c for c in session.matrix.undecided()),
            key=lambda c: -c.confidence,
        )
        decided = 0
        for link in undecided:
            if decided >= per_round:
                break
            if link.pair in truth_pairs:
                session.accept(*link.pair)
            else:
                session.reject(*link.pair)
            decided += 1

    session.run_engine()
    final = evaluate_matrix(session.matrix, scenario.alignment)
    print(f"final:   F1={final.f1:.3f} P={final.precision:.3f} R={final.recall:.3f}")


if __name__ == "__main__":
    main()
