"""Air traffic flow management: the paper's motivating enterprise domain.

Section 4.1: *"In the air traffic flow management domain, these
sub-schemata might include facilities (airports and runways), weather, and
routing."*  This example runs the full workbench on two independently
modeled ATC schemas:

* sub-schema focus via node filters (facilities first, then the rest);
* coding schemes compared at the domain-value level (Section 2);
* a feet→meters unit conversion (task 4's canonical example);
* lookup-table conversion between two runway-surface coding schemes;
* end-to-end execution on sample flight data.

Run:  python examples/air_traffic.py
"""

from repro.codegen import assemble
from repro.harmony import (
    ConfidenceFilter,
    FilterSet,
    MatchSession,
    SubtreeFilter,
    render,
)
from repro.loaders import load_er
from repro.mapper import (
    LookupTransform,
    MappingTool,
    ScalarTransform,
    unit_conversion,
)

US_MODEL = {
    "name": "us_atc",
    "documentation": "United States air traffic control facilities model.",
    "entities": [
        {"name": "Airport",
         "documentation": "A facility where aircraft arrive and depart.",
         "attributes": [
             {"name": "airportCode", "type": "string", "key": True,
              "documentation": "The code that identifies the airport facility."},
             {"name": "elevationFeet", "type": "integer", "units": "feet",
              "documentation": "Elevation of the airport above sea level in feet."}]},
        {"name": "Runway",
         "documentation": "A strip at an airport where aircraft take off and land.",
         "attributes": [
             {"name": "designator", "type": "string", "key": True,
              "documentation": "The designator that identifies the runway."},
             {"name": "lengthFeet", "type": "integer", "units": "feet",
              "documentation": "Usable length of the runway in feet."},
             {"name": "surface", "type": "string", "domain": "SurfaceUS",
              "documentation": "The code that denotes the runway surface type."}]},
        {"name": "Weather",
         "documentation": "Meteorological observation at a facility.",
         "attributes": [
             {"name": "obsTime", "type": "datetime", "key": True,
              "documentation": "Time the weather observation was made."},
             {"name": "visibility", "type": "decimal",
              "documentation": "Horizontal visibility at the facility in miles."}]},
    ],
    "domains": [
        {"name": "SurfaceUS", "type": "string",
         "documentation": "US runway surface material codes.",
         "values": [
             {"code": "ASPH", "documentation": "Asphalt surface"},
             {"code": "CONC", "documentation": "Concrete surface"},
             {"code": "TURF", "documentation": "Grass turf surface"}]},
    ],
}

EURO_MODEL = {
    "name": "euro_atc",
    "documentation": "European air traffic management conceptual model.",
    "entities": [
        {"name": "Aerodrome",
         "documentation": "A facility where aircraft arrive and depart.",
         "attributes": [
             {"name": "icaoCode", "type": "string", "key": True,
              "documentation": "The code that identifies the aerodrome facility."},
             {"name": "elevationMeters", "type": "decimal", "units": "meters",
              "documentation": "Elevation of the aerodrome above sea level in meters."}]},
        {"name": "Airstrip",
         "documentation": "A strip at an aerodrome where aircraft take off and land.",
         "attributes": [
             {"name": "designation", "type": "string", "key": True,
              "documentation": "The designation that identifies the airstrip."},
             {"name": "lengthMeters", "type": "decimal", "units": "meters",
              "documentation": "Usable length of the airstrip in meters."},
             {"name": "surfaceKind", "type": "string", "domain": "SurfaceEU",
              "documentation": "The kind of airstrip surface material."}]},
        {"name": "Meteorology",
         "documentation": "Meteorological observation at a facility.",
         "attributes": [
             {"name": "observationTime", "type": "datetime", "key": True,
              "documentation": "Time the meteorological observation was made."},
             {"name": "visibilityKm", "type": "decimal",
              "documentation": "Horizontal visibility at the facility in kilometers."}]},
    ],
    "domains": [
        {"name": "SurfaceEU", "type": "string",
         "documentation": "European airstrip surface material kinds.",
         "values": [
             {"code": "ASPHALT", "documentation": "Asphalt surface"},
             {"code": "CONCRETE", "documentation": "Concrete surface"},
             {"code": "GRASS", "documentation": "Grass turf surface"}]},
    ],
}


def main() -> None:
    source = load_er(US_MODEL)
    target = load_er(EURO_MODEL)
    session = MatchSession(source, target)
    session.run_engine()

    # Focus on the facilities sub-schema first (Section 4.1's workflow):
    print("=== matching with focus on the Airport facilities sub-schema ===")
    facilities = FilterSet(
        link_filters=[ConfidenceFilter(threshold=0.2)],
        source_filters=[SubtreeFilter(source, "us_atc/Airport")],
    )
    frame = render(session, facilities)
    for line in frame.lines:
        print(f"  {line.source_id} ── {line.target_id} [{line.confidence:+.2f}]")
    print()

    # accept the real correspondences across all sub-schemata
    for source_id, target_id in [
        ("us_atc/Airport", "euro_atc/Aerodrome"),
        ("us_atc/Airport/airportCode", "euro_atc/Aerodrome/icaoCode"),
        ("us_atc/Airport/elevationFeet", "euro_atc/Aerodrome/elevationMeters"),
        ("us_atc/Runway", "euro_atc/Airstrip"),
        ("us_atc/Runway/designator", "euro_atc/Airstrip/designation"),
        ("us_atc/Runway/lengthFeet", "euro_atc/Airstrip/lengthMeters"),
        ("us_atc/Runway/surface", "euro_atc/Airstrip/surfaceKind"),
    ]:
        session.accept(source_id, target_id)
    # mark sub-schemata complete: only the engineer's accepted (+1) links
    # stay; every other undecided link in the sub-tree is rejected
    strict = ConfidenceFilter(threshold=0.99)
    session.mark_subtree_complete("us_atc/Airport", side="source", visible=strict)
    session.mark_subtree_complete("us_atc/Runway", side="source", visible=strict)
    print(f"progress after facilities: {session.progress():.0%}\n")

    # Mapping phase: domain transformations (task 4)
    tool = MappingTool(source, target, matrix=session.matrix)
    for element_id, variable in [
        ("us_atc/Airport/airportCode", "code"),
        ("us_atc/Airport/elevationFeet", "elevFt"),
        ("us_atc/Runway/designator", "desig"),
        ("us_atc/Runway/lengthFeet", "lenFt"),
        ("us_atc/Runway/surface", "surface"),
    ]:
        tool.bind_variable(element_id, variable)
    tool.draft_from_matrix()

    feet_to_meters = unit_conversion("feet", "meters")
    print("feet→meters transform code:", feet_to_meters.to_code("elevFt"))
    tool.set_attribute_transform(
        "euro_atc/Aerodrome", "euro_atc/Aerodrome/elevationMeters",
        ScalarTransform(f"round({feet_to_meters.to_code('elevFt')}, 1)"))
    tool.set_attribute_transform(
        "euro_atc/Airstrip", "euro_atc/Airstrip/lengthMeters",
        ScalarTransform(f"round({feet_to_meters.to_code('lenFt')}, 1)"))

    surface_xref = LookupTransform("surface", {
        "ASPH": "ASPHALT", "CONC": "CONCRETE", "TURF": "GRASS"})
    tool.register_lookup("surface", surface_xref.table)
    tool.set_attribute_transform(
        "euro_atc/Airstrip", "euro_atc/Airstrip/surfaceKind",
        ScalarTransform(surface_xref.to_code("surface")))

    assembled = assemble(tool.spec, source, target, matrix=tool.matrix)
    print("\n=== generated XQuery ===")
    print(assembled.xquery)
    print("\nverification:", assembled.verification.to_text())

    result = assembled.run({
        "us_atc/Airport": [
            {"airportCode": "IAD", "elevationFeet": 313},
            {"airportCode": "DCA", "elevationFeet": 15},
        ],
        "us_atc/Runway": [
            {"designator": "01R/19L", "lengthFeet": 11500, "surface": "ASPH"},
            {"designator": "12/30", "lengthFeet": 5204, "surface": "TURF"},
        ],
    })
    print("\n=== transformed European-model documents ===")
    for entity in ("euro_atc/Aerodrome", "euro_atc/Airstrip"):
        for document in result.rows(entity):
            print(f"  {entity.split('/')[-1]}: {document}")


if __name__ == "__main__":
    main()
