"""Quickstart: match, map and transform in ~60 lines.

Loads a relational source (SQL DDL) and an XML target (XSD), runs the
Harmony matcher, pins the correspondences, builds a mapping with one
transformation, generates XQuery + executable code, and runs it on sample
rows.

Run:  python examples/quickstart.py
"""

from repro.codegen import assemble
from repro.harmony import MatchSession
from repro.loaders import load_sql, load_xsd
from repro.mapper import MappingTool, ScalarTransform

DDL = """
CREATE TABLE employee (
    emp_id INTEGER PRIMARY KEY,     -- Unique employee number.
    first_name VARCHAR(40),         -- Given name of the employee.
    last_name VARCHAR(40),          -- Family name of the employee.
    salary DECIMAL(10,2)            -- Annual gross salary in dollars.
);
"""

XSD = """<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="staffMember">
  <xs:complexType><xs:sequence>
   <xs:element name="employeeNumber" type="xs:integer">
    <xs:annotation><xs:documentation>Unique employee number.</xs:documentation></xs:annotation>
   </xs:element>
   <xs:element name="fullName" type="xs:string">
    <xs:annotation><xs:documentation>Family name and given name of the employee.</xs:documentation></xs:annotation>
   </xs:element>
   <xs:element name="monthlySalary" type="xs:decimal">
    <xs:annotation><xs:documentation>Monthly gross salary in dollars.</xs:documentation></xs:annotation>
   </xs:element>
  </xs:sequence></xs:complexType>
 </xs:element>
</xs:schema>
"""


def main() -> None:
    # 1. schema preparation (task 1/2): load both schemata
    source = load_sql(DDL, "hr")
    target = load_xsd(XSD, "staff")
    print("source schema:\n" + source.to_text(), end="\n\n")
    print("target schema:\n" + target.to_text(), end="\n\n")

    # 2. schema matching (task 3): run Harmony, inspect, pin links
    session = MatchSession(source, target)
    session.run_engine()
    print("Harmony's top suggestions:")
    for link in sorted(session.links(), key=lambda c: -c.confidence)[:5]:
        print("  ", link)
    session.accept("hr/employee", "staff/staffMember")
    session.accept("hr/employee/emp_id", "staff/staffMember/employeeNumber")
    print()

    # 3. schema mapping (tasks 4-7): transformations per target attribute
    tool = MappingTool(source, target, matrix=session.matrix)
    for element_id, variable in [
        ("hr/employee/emp_id", "empId"),
        ("hr/employee/first_name", "fName"),
        ("hr/employee/last_name", "lName"),
        ("hr/employee/salary", "salary"),
    ]:
        tool.bind_variable(element_id, variable)
    tool.draft_from_matrix()
    tool.set_attribute_transform(
        "staff/staffMember", "staff/staffMember/fullName",
        ScalarTransform('concat($lName, ", ", $fName)'))
    tool.set_attribute_transform(
        "staff/staffMember", "staff/staffMember/monthlySalary",
        ScalarTransform("round($salary / 12, 2)"))

    # 4. logical mapping + verification (tasks 8-9), then execution
    assembled = assemble(tool.spec, source, target, matrix=tool.matrix)
    print("generated XQuery:\n" + assembled.xquery, end="\n\n")
    print("verification:", assembled.verification.to_text(), end="\n\n")

    result = assembled.run({"hr/employee": [
        {"emp_id": 1, "first_name": "Peter", "last_name": "Mork", "salary": 120000.0},
        {"emp_id": 2, "first_name": "Len", "last_name": "Seligman", "salary": 132000.0},
    ]})
    print("transformed documents:")
    for document in result.rows("staff/staffMember"):
        print("  ", document)


if __name__ == "__main__":
    main()
