"""Tests for the task model (Section 3)."""

import pytest

from repro.core import (
    Phase,
    ProblemProfile,
    Support,
    TASKS,
    ToolProfile,
    combined_profile,
    coverage_table,
    harmony_profile,
    instance_tools_profile,
    mapper_profile,
    task,
    tasks_in_phase,
    workbench_suite_profile,
)


class TestTaskModel:
    def test_thirteen_tasks(self):
        assert len(TASKS) == 13
        assert [t.number for t in TASKS] == list(range(1, 14))

    def test_five_phases(self):
        assert len(Phase) == 5
        assert {t.phase for t in TASKS} == set(Phase)

    def test_phase_grouping_matches_paper(self):
        assert [t.number for t in tasks_in_phase(Phase.SCHEMA_PREPARATION)] == [1, 2]
        assert [t.number for t in tasks_in_phase(Phase.SCHEMA_MATCHING)] == [3]
        assert [t.number for t in tasks_in_phase(Phase.SCHEMA_MAPPING)] == [4, 5, 6, 7, 8, 9]
        assert [t.number for t in tasks_in_phase(Phase.INSTANCE_INTEGRATION)] == [10, 11]
        assert [t.number for t in tasks_in_phase(Phase.SYSTEM_IMPLEMENTATION)] == [12, 13]

    def test_lookup_by_number(self):
        assert task(3).name == "Generate semantic correspondences"
        with pytest.raises(KeyError):
            task(14)

    def test_optional_tasks_flagged(self):
        assert task(2).optional_when
        assert task(9).optional_when
        assert not task(3).optional_when


class TestToolProfiles:
    def test_set_and_get_support(self):
        profile = ToolProfile("t")
        profile.set_support(3, Support.AUTOMATED, "engine")
        assert profile.support_for(3) is Support.AUTOMATED
        assert profile.support_for(4) is Support.NONE

    def test_invalid_task_number_rejected(self):
        with pytest.raises(KeyError):
            ToolProfile("t").set_support(99, Support.MANUAL)

    def test_coverage(self):
        profile = ToolProfile("t")
        profile.set_support(1, Support.MANUAL)
        assert profile.coverage([1, 2]) == 0.5
        assert profile.coverage() == pytest.approx(1 / 13)

    def test_harmony_profile_matches_paper(self):
        """Harmony loads and matches but 'provides neither a mechanism for
        authoring code snippets, nor a code generation feature'."""
        profile = harmony_profile()
        assert profile.support_for(3) is Support.AUTOMATED
        assert profile.support_for(8) is Support.NONE
        assert profile.support_for(4) is Support.NONE

    def test_mapper_profile_complements_harmony(self):
        profile = mapper_profile()
        assert profile.support_for(8) is Support.AUTOMATED
        assert profile.support_for(3) is Support.MANUAL  # manual matching only

    def test_combined_profile_takes_best(self):
        combined = combined_profile("suite", [harmony_profile(), mapper_profile()])
        assert combined.support_for(3) is Support.AUTOMATED  # from Harmony
        assert combined.support_for(8) is Support.AUTOMATED  # from mapper

    def test_suite_covers_more_than_parts(self):
        harmony = harmony_profile()
        suite = workbench_suite_profile()
        assert suite.coverage() > harmony.coverage()
        assert suite.coverage() > mapper_profile().coverage()

    def test_suite_covers_all_thirteen(self):
        suite = workbench_suite_profile()
        assert suite.coverage() == 1.0


class TestProblemProfiles:
    def test_default_requires_everything(self):
        assert len(ProblemProfile("p").required_tasks()) == 13

    def test_no_instances_prunes_instance_integration(self):
        profile = ProblemProfile("p", instances_available=False)
        numbers = {t.number for t in profile.required_tasks()}
        assert 10 not in numbers and 11 not in numbers

    def test_one_shot_prunes_deployment(self):
        profile = ProblemProfile("p", one_shot=True)
        numbers = {t.number for t in profile.required_tasks()}
        assert 12 not in numbers and 13 not in numbers

    def test_manual_prune_with_reason(self):
        profile = ProblemProfile("p")
        profile.prune(9, "no target schema specified")
        assert 9 not in {t.number for t in profile.required_tasks()}

    def test_coverage_table_renders(self):
        table = coverage_table(
            [harmony_profile(), mapper_profile(), instance_tools_profile()],
            ProblemProfile("demo", one_shot=True),
        )
        assert "Harmony" in table
        assert "coverage" in table
        assert "pruned" in table
