"""Tests for repro.core.graph."""

import pytest

from repro.core import (
    CONTAINS_ATTRIBUTE,
    DuplicateElementError,
    ElementKind,
    HAS_DOMAIN,
    SchemaElement,
    SchemaError,
    SchemaGraph,
    UnknownElementError,
)


@pytest.fixture
def small_graph() -> SchemaGraph:
    graph = SchemaGraph.create("s")
    graph.add_child("s", SchemaElement("s/T", "T", ElementKind.TABLE),
                    label="contains-element")
    graph.add_child("s/T", SchemaElement("s/T/a", "a", ElementKind.ATTRIBUTE))
    graph.add_child("s/T", SchemaElement("s/T/b", "b", ElementKind.ATTRIBUTE))
    graph.add_child("s", SchemaElement("s/D", "D", ElementKind.DOMAIN),
                    label="contains-element")
    graph.add_child("s/D", SchemaElement("s/D/x", "x", ElementKind.DOMAIN_VALUE))
    return graph


class TestConstruction:
    def test_create_adds_root(self):
        graph = SchemaGraph.create("s")
        assert graph.root.kind is ElementKind.SCHEMA
        assert graph.root.element_id == "s"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            SchemaGraph("")

    def test_duplicate_element_rejected(self, small_graph):
        with pytest.raises(DuplicateElementError):
            small_graph.add_element(SchemaElement("s/T", "T2"))

    def test_edge_requires_both_endpoints(self, small_graph):
        with pytest.raises(UnknownElementError):
            small_graph.add_edge("s/T", "references", "missing")
        with pytest.raises(UnknownElementError):
            small_graph.add_edge("missing", "references", "s/T")

    def test_edge_requires_label(self, small_graph):
        with pytest.raises(SchemaError):
            small_graph.add_edge("s/T", "", "s/T/a")

    def test_edges_deduplicate(self, small_graph):
        before = len(small_graph.edges)
        small_graph.add_edge("s/T", CONTAINS_ATTRIBUTE, "s/T/a")  # already exists
        assert len(small_graph.edges) == before

    def test_default_containment_labels(self):
        graph = SchemaGraph.create("s")
        table = graph.add_child("s", SchemaElement("s/t", "t", ElementKind.TABLE))
        attr = graph.add_child("s/t", SchemaElement("s/t/a", "a", ElementKind.ATTRIBUTE))
        labels = {e.label for e in graph.edges}
        assert "contains-table" in labels
        assert "contains-attribute" in labels


class TestStructureQueries:
    def test_children(self, small_graph):
        names = sorted(c.name for c in small_graph.children("s/T"))
        assert names == ["a", "b"]

    def test_parent(self, small_graph):
        assert small_graph.parent("s/T/a").element_id == "s/T"
        assert small_graph.parent("s") is None

    def test_depth(self, small_graph):
        assert small_graph.depth("s") == 0
        assert small_graph.depth("s/T") == 1
        assert small_graph.depth("s/T/a") == 2

    def test_subtree_bfs(self, small_graph):
        ids = [e.element_id for e in small_graph.subtree("s/T")]
        assert ids[0] == "s/T"
        assert set(ids) == {"s/T", "s/T/a", "s/T/b"}

    def test_ancestors(self, small_graph):
        assert [a.element_id for a in small_graph.ancestors("s/T/a")] == ["s/T", "s"]

    def test_path_names(self, small_graph):
        assert small_graph.path("s/T/a") == ["s", "T", "a"]

    def test_leaves(self, small_graph):
        leaf_ids = {e.element_id for e in small_graph.leaves()}
        assert leaf_ids == {"s/T/a", "s/T/b", "s/D/x"}

    def test_domain_of(self, small_graph):
        small_graph.add_edge("s/T/a", HAS_DOMAIN, "s/D")
        assert small_graph.domain_of("s/T/a").element_id == "s/D"
        assert small_graph.domain_of("s/T/b") is None

    def test_walk_yields_depths(self, small_graph):
        depths = {e.element_id: d for e, d in small_graph.walk()}
        assert depths["s"] == 0
        assert depths["s/T/a"] == 2

    def test_find_by_name(self, small_graph):
        assert [e.element_id for e in small_graph.find_by_name("a")] == ["s/T/a"]

    def test_elements_of_kind(self, small_graph):
        tables = small_graph.elements_of_kind(ElementKind.TABLE)
        assert [t.element_id for t in tables] == ["s/T"]

    def test_unknown_element_raises(self, small_graph):
        with pytest.raises(UnknownElementError):
            small_graph.element("nope")
        assert small_graph.get("nope") is None


class TestMutation:
    def test_remove_element_removes_edges(self, small_graph):
        small_graph.remove_element("s/T/a")
        assert "s/T/a" not in small_graph
        assert all(e.object != "s/T/a" for e in small_graph.edges)

    def test_remove_edge(self, small_graph):
        edge = small_graph.out_edges("s/T", CONTAINS_ATTRIBUTE)[0]
        small_graph.remove_edge(edge)
        assert edge not in small_graph.edges

    def test_copy_is_deep(self, small_graph):
        clone = small_graph.copy("s2")
        clone.element("s/T").name = "renamed"
        clone.remove_element("s/T/b")
        assert small_graph.element("s/T").name == "T"
        assert "s/T/b" in small_graph

    def test_copy_preserves_structure(self, small_graph):
        clone = small_graph.copy()
        assert sorted(clone.element_ids) == sorted(small_graph.element_ids)
        assert clone.edges == small_graph.edges


class TestValidation:
    def test_valid_graph_has_no_problems(self, small_graph):
        assert small_graph.validate() == []

    def test_unreachable_element_reported(self, small_graph):
        small_graph.add_element(SchemaElement("s/orphan", "orphan"))
        problems = small_graph.validate()
        assert any("orphan" in p for p in problems)

    def test_bad_domain_edge_reported(self, small_graph):
        small_graph.add_edge("s/T/a", HAS_DOMAIN, "s/T/b")  # not a DOMAIN
        problems = small_graph.validate()
        assert any("has-domain" in p for p in problems)

    def test_multiple_containment_parents_detected(self, small_graph):
        small_graph.add_edge("s/D", CONTAINS_ATTRIBUTE, "s/T/a")
        with pytest.raises(SchemaError):
            small_graph.parent("s/T/a")

    def test_key_elements_reachable_via_has_key(self):
        graph = SchemaGraph.create("s")
        graph.add_child("s", SchemaElement("s/t", "t", ElementKind.TABLE))
        graph.add_child("s/t", SchemaElement("s/t/#pk", "pk", ElementKind.KEY),
                        label="has-key")
        assert graph.validate() == []

    def test_to_text_renders_tree(self, small_graph):
        text = small_graph.to_text()
        assert "T [table]" in text
        assert "  " in text  # indentation
