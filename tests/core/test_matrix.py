"""Tests for repro.core.matrix (the Figure 3 structure)."""

import pytest

from repro.core import MappingError, MappingMatrix


class TestAxes:
    def test_from_schemas_excludes_roots(self, purchase_order_graph, shipping_notice_graph):
        matrix = MappingMatrix.from_schemas(purchase_order_graph, shipping_notice_graph)
        assert "po" not in matrix.row_ids
        assert "sn" not in matrix.column_ids
        assert "po/purchaseOrder/shipTo" in matrix.row_ids
        assert "sn/shippingInfo/total" in matrix.column_ids

    def test_add_row_idempotent(self):
        matrix = MappingMatrix()
        header1 = matrix.add_row("a")
        header2 = matrix.add_row("a")
        assert header1 is header2
        assert matrix.row_ids == ["a"]

    def test_missing_axis_raises(self):
        matrix = MappingMatrix()
        with pytest.raises(MappingError):
            matrix.row("nope")
        with pytest.raises(MappingError):
            matrix.column("nope")

    def test_remove_row_drops_cells(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_column("x")
        matrix.set_confidence("a", "x", 0.5)
        matrix.remove_row("a")
        assert matrix.row_ids == []
        assert list(matrix.cells()) == []


class TestCells:
    def test_cell_materializes_on_demand(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_column("x")
        assert matrix.peek("a", "x") is None
        cell = matrix.cell("a", "x")
        assert cell.confidence == 0.0
        assert matrix.peek("a", "x") is cell

    def test_cell_requires_axes(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        with pytest.raises(MappingError):
            matrix.cell("a", "missing")
        with pytest.raises(MappingError):
            matrix.cell("missing", "x")

    def test_set_confidence_machine(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_column("x")
        cell = matrix.set_confidence("a", "x", 0.8)
        assert cell.confidence == 0.8
        assert not cell.is_user_defined

    def test_set_confidence_user_must_be_certain(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_column("x")
        with pytest.raises(MappingError):
            matrix.set_confidence("a", "x", 0.5, user_defined=True)

    def test_machine_never_overwrites_user(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_column("x")
        matrix.set_confidence("a", "x", 1.0, user_defined=True)
        matrix.set_confidence("a", "x", 0.2)
        assert matrix.cell("a", "x").confidence == 1.0

    def test_links_threshold(self, figure3_matrix):
        strong = figure3_matrix.links(threshold=0.5)
        pairs = {c.pair for c in strong}
        assert ("po/purchaseOrder/shipTo", "sn/shippingInfo") in pairs
        assert all(c.confidence > 0.5 for c in strong)

    def test_accepted_and_rejected(self, figure3_matrix):
        accepted = {c.pair for c in figure3_matrix.accepted()}
        assert ("po/purchaseOrder/shipTo/firstName", "sn/shippingInfo/name") in accepted
        assert ("po/purchaseOrder/shipTo/subtotal", "sn/shippingInfo/total") in accepted
        rejected = figure3_matrix.rejected()
        assert all(c.confidence == -1.0 for c in rejected)
        assert len(rejected) == 6

    def test_undecided(self, figure3_matrix):
        undecided = figure3_matrix.undecided()
        assert all(not c.is_decided for c in undecided)
        assert len(undecided) == 3  # the shipTo row's machine suggestions


class TestProgress:
    def test_empty_matrix_complete(self):
        assert MappingMatrix().progress() == 1.0

    def test_progress_counts_both_axes(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_row("b")
        matrix.add_column("x")
        matrix.add_column("y")
        assert matrix.progress() == 0.0
        matrix.mark_row_complete("a")
        matrix.mark_column_complete("x")
        assert matrix.progress() == pytest.approx(0.5)
        matrix.mark_row_complete("b")
        matrix.mark_column_complete("y")
        assert matrix.is_complete

    def test_unmark(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.mark_row_complete("a")
        matrix.mark_row_complete("a", complete=False)
        assert matrix.progress() == 0.0


class TestAnnotations:
    def test_figure3_annotations(self, figure3_matrix):
        assert figure3_matrix.row("po/purchaseOrder/shipTo").variable_name == "$shipto"
        code = figure3_matrix.column("sn/shippingInfo/name").code
        assert "concat" in code
        assert figure3_matrix.code.startswith("let $shipto")

    def test_copy_is_deep(self, figure3_matrix):
        clone = figure3_matrix.copy()
        clone.set_row_variable("po/purchaseOrder/shipTo", "$other")
        clone.cell("po/purchaseOrder/shipTo", "sn/shippingInfo").suggest(0.1)
        assert figure3_matrix.row("po/purchaseOrder/shipTo").variable_name == "$shipto"
        assert figure3_matrix.cell(
            "po/purchaseOrder/shipTo", "sn/shippingInfo"
        ).confidence == 0.8

    def test_to_text_contains_confidences(self, figure3_matrix):
        text = figure3_matrix.to_text()
        assert "+0.8m" in text
        assert "+1.0u" in text


class TestSetCells:
    def _matrix(self) -> MappingMatrix:
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_row("b")
        matrix.add_column("x")
        matrix.add_column("y")
        return matrix

    def test_bulk_write_equals_per_cell_suggest(self):
        batched = self._matrix()
        reference = self._matrix()
        entries = [("a", "x", 0.7), ("a", "y", -0.2), ("b", "x", 0.0)]
        written = batched.set_cells(entries)
        for source_id, target_id, confidence in entries:
            reference.set_confidence(source_id, target_id, confidence)
        assert written == 3
        assert {
            (c.source_id, c.target_id): (c.confidence, c.is_user_defined)
            for c in batched.cells()
        } == {
            (c.source_id, c.target_id): (c.confidence, c.is_user_defined)
            for c in reference.cells()
        }

    def test_user_decisions_survive_bulk_write(self):
        matrix = self._matrix()
        matrix.set_confidence("a", "x", 1.0, user_defined=True)
        written = matrix.set_cells([("a", "x", 0.3), ("a", "y", 0.3)])
        assert written == 1
        assert matrix.cell("a", "x").confidence == 1.0
        assert matrix.cell("a", "x").is_user_defined
        assert matrix.cell("a", "y").confidence == 0.3

    def test_unknown_axis_raises(self):
        matrix = self._matrix()
        with pytest.raises(MappingError):
            matrix.set_cells([("nope", "x", 0.5)])
        with pytest.raises(MappingError):
            matrix.set_cells([("a", "nope", 0.5)])

    def test_out_of_range_confidence_raises(self):
        matrix = self._matrix()
        with pytest.raises(MappingError):
            matrix.set_cells([("a", "x", 1.5)])

    def test_accepts_generator(self):
        matrix = self._matrix()
        written = matrix.set_cells(
            (row, col, 0.1) for row in ("a", "b") for col in ("x", "y")
        )
        assert written == 4
        assert matrix.cell_count() == 4
