"""Tests for repro.core.correspondence."""

import pytest

from repro.core import (
    Correspondence,
    MappingError,
    VoterScore,
    best_match_for,
    clamp_confidence,
    top_correspondences,
    validate_confidence,
)


class TestConfidenceHelpers:
    def test_clamp(self):
        assert clamp_confidence(2.0) == 1.0
        assert clamp_confidence(-2.0) == -1.0
        assert clamp_confidence(0.5) == 0.5

    def test_validate_accepts_range(self):
        assert validate_confidence(1.0) == 1.0
        assert validate_confidence(-1) == -1.0

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(MappingError):
            validate_confidence(1.01)
        with pytest.raises(MappingError):
            validate_confidence(-1.5)


class TestCorrespondence:
    def test_defaults(self):
        link = Correspondence("a", "b")
        assert link.confidence == 0.0
        assert not link.is_user_defined
        assert not link.is_decided

    def test_user_defined_must_be_certain(self):
        with pytest.raises(MappingError):
            Correspondence("a", "b", confidence=0.5, is_user_defined=True)

    def test_accept_pins_link(self):
        link = Correspondence("a", "b").accept()
        assert link.is_accepted and link.is_decided
        assert link.confidence == 1.0

    def test_reject_pins_link(self):
        link = Correspondence("a", "b").reject()
        assert link.is_rejected
        assert link.confidence == -1.0

    def test_suggest_respects_user_decision(self):
        """Section 4.3: the engine never modifies decided links."""
        link = Correspondence("a", "b").accept()
        link.suggest(0.2)
        assert link.confidence == 1.0
        assert link.is_user_defined

    def test_suggest_updates_undecided(self):
        link = Correspondence("a", "b")
        link.suggest(0.7)
        assert link.confidence == 0.7
        assert not link.is_user_defined

    def test_pair(self):
        assert Correspondence("a", "b").pair == ("a", "b")

    def test_copy_independent(self):
        link = Correspondence("a", "b", confidence=0.4, annotations={"k": 1})
        clone = link.copy()
        clone.accept()
        clone.annotations["k"] = 2
        assert link.confidence == 0.4
        assert link.annotations["k"] == 1


class TestVoterScore:
    def test_magnitude(self):
        assert VoterScore("v", "a", "b", -0.6).magnitude == 0.6

    def test_score_validated(self):
        with pytest.raises(MappingError):
            VoterScore("v", "a", "b", 1.2)

    def test_frozen(self):
        vote = VoterScore("v", "a", "b", 0.5)
        with pytest.raises(AttributeError):
            vote.score = 0.9


class TestSelectionHelpers:
    def _links(self):
        return [
            Correspondence("a", "x", confidence=0.9),
            Correspondence("a", "y", confidence=0.5),
            Correspondence("b", "x", confidence=0.4),
            Correspondence("b", "y", confidence=0.4),
        ]

    def test_top_correspondences_per_source(self):
        top = top_correspondences(self._links(), per_source=True)
        pairs = {c.pair for c in top}
        assert ("a", "x") in pairs and ("a", "y") not in pairs
        # ties are all retained (paper: "ties are possible")
        assert ("b", "x") in pairs and ("b", "y") in pairs

    def test_top_correspondences_per_target(self):
        top = top_correspondences(self._links(), per_source=False)
        pairs = {c.pair for c in top}
        assert ("a", "x") in pairs and ("b", "x") not in pairs

    def test_best_match_for(self):
        best = best_match_for(self._links(), "a")
        assert best.pair == ("a", "x")
        assert best_match_for(self._links(), "zzz") is None
