"""Tests for repro.core.elements."""

import pytest

from repro.core import CONTAINER_KINDS, ElementKind, SchemaElement


class TestSchemaElement:
    def test_minimal_construction(self):
        element = SchemaElement("s/a", "a")
        assert element.element_id == "s/a"
        assert element.name == "a"
        assert element.kind is ElementKind.ELEMENT
        assert element.datatype is None
        assert element.documentation == ""

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SchemaElement("", "a")

    def test_kind_coerced_from_string(self):
        element = SchemaElement("s/t", "t", "table")
        assert element.kind is ElementKind.TABLE

    def test_invalid_kind_string_rejected(self):
        with pytest.raises(ValueError):
            SchemaElement("s/t", "t", "nonsense")

    def test_container_predicate(self):
        assert SchemaElement("s/t", "t", ElementKind.TABLE).is_container
        assert SchemaElement("s/e", "e", ElementKind.ENTITY).is_container
        assert not SchemaElement("s/a", "a", ElementKind.ATTRIBUTE).is_container
        assert not SchemaElement("s/d", "d", ElementKind.DOMAIN).is_container

    def test_container_kinds_match_predicate(self):
        for kind in ElementKind:
            element = SchemaElement("x", "x", kind)
            assert element.is_container == (kind in CONTAINER_KINDS)

    def test_attribute_and_domain_predicates(self):
        assert SchemaElement("s/a", "a", ElementKind.ATTRIBUTE).is_attribute
        assert SchemaElement("s/d", "d", ElementKind.DOMAIN).is_domain

    def test_has_documentation_ignores_whitespace(self):
        assert not SchemaElement("s/a", "a", documentation="   ").has_documentation
        assert SchemaElement("s/a", "a", documentation="Real text.").has_documentation

    def test_annotations(self):
        element = SchemaElement("s/a", "a")
        assert element.annotation("nullable") is None
        assert element.annotation("nullable", True) is True
        element.annotate("nullable", False)
        assert element.annotation("nullable") is False

    def test_annotate_is_chainable(self):
        element = SchemaElement("s/a", "a").annotate("x", 1).annotate("y", 2)
        assert element.annotations == {"x": 1, "y": 2}

    def test_copy_is_independent(self):
        element = SchemaElement("s/a", "a", annotations={"k": "v"})
        clone = element.copy()
        clone.annotate("k", "changed")
        clone.name = "b"
        assert element.annotation("k") == "v"
        assert element.name == "a"

    def test_str_shows_kind_and_id(self):
        assert str(SchemaElement("s/t", "t", ElementKind.TABLE)) == "table:s/t"
