"""Tests for the synthetic registry generator and Table 1 statistics."""

import pytest

from repro.registry import (
    PAPER_TABLE_1,
    RegistryProfile,
    comparison_table,
    compute_stats,
    generate_registry,
)


@pytest.fixture(scope="module")
def registry():
    return generate_registry(seed=2006, scale=0.02)


class TestGenerator:
    def test_deterministic(self):
        a = generate_registry(seed=5, scale=0.005)
        b = generate_registry(seed=5, scale=0.005)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_registry(seed=5, scale=0.005)
        b = generate_registry(seed=6, scale=0.005)
        assert a != b

    def test_scale_controls_model_count(self):
        small = generate_registry(seed=1, scale=0.01)
        large = generate_registry(seed=1, scale=0.04)
        assert len(large["models"]) > len(small["models"])
        assert len(small["models"]) == max(1, round(265 * 0.01))

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            RegistryProfile().scaled(0)

    def test_models_are_loadable_er(self, registry):
        from repro.loaders import load_registry

        loaded = load_registry(registry)
        assert len(loaded) == len(registry["models"])

    def test_names_unique_within_scope(self, registry):
        for model in registry["models"]:
            entity_names = [e["name"] for e in model["entities"]]
            assert len(entity_names) == len(set(entity_names))
            domain_names = [d["name"] for d in model["domains"]]
            assert len(domain_names) == len(set(domain_names))
            for domain in model["domains"]:
                codes = [v["code"] for v in domain["values"]]
                assert len(codes) == len(set(codes))


class TestTable1Calibration:
    """The generated registry matches Table 1's marginals (the T1 bench)."""

    def test_definition_rates(self, registry):
        stats = compute_stats(registry)
        assert stats.element.percent_with_definition > 97.0
        assert 78.0 < stats.attribute.percent_with_definition < 88.0
        assert stats.domain.percent_with_definition > 99.0

    def test_words_per_definition(self, registry):
        stats = compute_stats(registry)
        assert stats.element.words_per_definition == pytest.approx(11.1, abs=1.2)
        assert stats.attribute.words_per_definition == pytest.approx(16.4, abs=1.2)
        assert stats.domain.words_per_definition == pytest.approx(3.68, abs=0.4)

    def test_item_ratios(self, registry):
        stats = compute_stats(registry)
        models = len(registry["models"])
        assert stats.element.item_count / models == pytest.approx(
            PAPER_TABLE_1["Element"]["count"] / 265, rel=0.25)
        assert stats.attribute.item_count / stats.element.item_count == pytest.approx(
            163_736 / 13_049, rel=0.2)
        assert stats.domain.item_count / stats.attribute.item_count == pytest.approx(
            282_331 / 163_736, rel=0.25)

    def test_table_rendering(self, registry):
        stats = compute_stats(registry)
        table = stats.to_table("Title")
        assert "Title" in table
        assert "Element" in table and "Attribute" in table and "Domain" in table
        comparison = comparison_table(stats, scale=len(registry["models"]) / 265)
        assert "words/definition" in comparison

    def test_empty_registry_stats(self):
        stats = compute_stats({"models": []})
        assert stats.element.item_count == 0
        assert stats.element.percent_with_definition == 0.0
        assert stats.element.words_per_item == 0.0
        assert stats.element.words_per_definition == 0.0


class TestTable1FullScale:
    """The full 265-model registry hits the published marginals ±2%."""

    @pytest.fixture(scope="class")
    def full_registry(self):
        from repro.registry import generate_table1_registry

        return generate_table1_registry(seed=2006)

    def test_model_count_exact(self, full_registry):
        assert len(full_registry["models"]) == 265

    def test_marginals_within_two_percent(self, full_registry):
        stats = compute_stats(full_registry)
        assert stats.element.item_count == pytest.approx(13_049, rel=0.02)
        assert stats.attribute.item_count == pytest.approx(163_736, rel=0.02)
        assert stats.domain.item_count == pytest.approx(282_331, rel=0.02)

    def test_seed_determinism(self, full_registry):
        from repro.registry import generate_table1_registry

        again = generate_table1_registry(seed=2006)
        assert again == full_registry

    def test_model_size_distribution(self, full_registry):
        from repro.registry import model_size_distribution

        dist = model_size_distribution(full_registry)
        assert dist["models"] == 265
        # per-model entity counts are Poisson(elements_per_model):
        # the mean tracks Table 1's ratio and dispersion stays near 1
        assert dist["mean"] == pytest.approx(13_049 / 265, rel=0.05)
        assert dist["min"] >= 1
        assert 0.7 < dist["dispersion"] < 1.3


class TestCompactProfile:
    """The many-small-models shape the N-way benches run on."""

    def test_model_count_and_size(self):
        from repro.registry import model_size_distribution

        profile = RegistryProfile.compact(50)
        registry = generate_registry(seed=7, scale=1.0, profile=profile)
        assert len(registry["models"]) == 50
        dist = model_size_distribution(registry)
        assert dist["mean"] == pytest.approx(2.0, abs=1.0)

    def test_definition_rates_preserved(self):
        profile = RegistryProfile.compact(80)
        registry = generate_registry(seed=7, scale=1.0, profile=profile)
        stats = compute_stats(registry)
        assert stats.element.percent_with_definition > 95.0
        assert 70.0 < stats.attribute.percent_with_definition < 95.0

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            RegistryProfile.compact(0)
