"""Tests for the XSD loader."""

import pytest

from repro.core import ElementKind, LoaderError
from repro.loaders import load_xsd


def _schema(body: str) -> str:
    return (
        '<?xml version="1.0"?>\n'
        '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">\n'
        f"{body}\n</xs:schema>"
    )


class TestBasics:
    def test_nested_structure(self, notice_graph):
        assert "notice/shippingNotice" in notice_graph
        assert "notice/shippingNotice/recipientName/firstName" in notice_graph
        assert notice_graph.depth("notice/shippingNotice/recipientName/firstName") == 3

    def test_simple_leaves_are_attributes(self, notice_graph):
        element = notice_graph.element("notice/shippingNotice/total")
        assert element.kind is ElementKind.ATTRIBUTE
        assert element.datatype == "decimal"

    def test_documentation_extracted(self, notice_graph):
        assert "order ships" in notice_graph.element("notice/shippingNotice").documentation
        assert "Given name" in notice_graph.element(
            "notice/shippingNotice/recipientName/firstName"
        ).documentation

    def test_graph_validates(self, notice_graph):
        assert notice_graph.validate() == []

    def test_malformed_xml_rejected(self):
        with pytest.raises(LoaderError):
            load_xsd("<not-closed", "x")

    def test_wrong_root_rejected(self):
        with pytest.raises(LoaderError):
            load_xsd("<html/>", "x")

    def test_empty_schema_rejected(self):
        with pytest.raises(LoaderError):
            load_xsd(_schema(""), "x")


class TestTypes:
    def test_named_complex_type(self):
        text = _schema("""
        <xs:complexType name="AddressType">
          <xs:sequence>
            <xs:element name="city" type="xs:string"/>
          </xs:sequence>
        </xs:complexType>
        <xs:element name="shipTo" type="AddressType"/>
        """)
        graph = load_xsd(text, "s")
        assert "s/shipTo/city" in graph

    def test_recursive_type_guarded(self):
        text = _schema("""
        <xs:complexType name="Node">
          <xs:sequence>
            <xs:element name="child" type="Node" minOccurs="0"/>
            <xs:element name="label" type="xs:string"/>
          </xs:sequence>
        </xs:complexType>
        <xs:element name="root" type="Node"/>
        """)
        graph = load_xsd(text, "s")
        assert "s/root/label" in graph  # expands once, then stops

    def test_element_ref(self):
        text = _schema("""
        <xs:element name="item" type="xs:string"/>
        <xs:element name="order">
          <xs:complexType><xs:sequence>
            <xs:element ref="item"/>
          </xs:sequence></xs:complexType>
        </xs:element>
        """)
        graph = load_xsd(text, "s")
        assert "s/order/item" in graph

    def test_unresolved_ref_rejected(self):
        text = _schema("""
        <xs:element name="order">
          <xs:complexType><xs:sequence>
            <xs:element ref="ghost"/>
          </xs:sequence></xs:complexType>
        </xs:element>
        """)
        with pytest.raises(LoaderError):
            load_xsd(text, "s")

    def test_xml_attributes_loaded(self):
        text = _schema("""
        <xs:element name="order">
          <xs:complexType>
            <xs:sequence><xs:element name="total" type="xs:decimal"/></xs:sequence>
            <xs:attribute name="orderDate" type="xs:date" use="required"/>
          </xs:complexType>
        </xs:element>
        """)
        graph = load_xsd(text, "s")
        attr = graph.element("s/order/@orderDate")
        assert attr.kind is ElementKind.ATTRIBUTE
        assert attr.datatype == "date"
        assert attr.annotation("nullable") is None  # required

    def test_optional_element_nullable(self):
        text = _schema("""
        <xs:element name="order">
          <xs:complexType><xs:sequence>
            <xs:element name="note" type="xs:string" minOccurs="0"/>
          </xs:sequence></xs:complexType>
        </xs:element>
        """)
        graph = load_xsd(text, "s")
        assert graph.element("s/order/note").annotation("nullable") is True


class TestDomains:
    ENUM_SCHEMA = _schema("""
    <xs:simpleType name="StatusCode">
      <xs:annotation><xs:documentation>Order status codes.</xs:documentation></xs:annotation>
      <xs:restriction base="xs:string">
        <xs:enumeration value="OPEN"><xs:annotation><xs:documentation>Still open</xs:documentation></xs:annotation></xs:enumeration>
        <xs:enumeration value="SHIP"/>
      </xs:restriction>
    </xs:simpleType>
    <xs:element name="order">
      <xs:complexType><xs:sequence>
        <xs:element name="status" type="StatusCode"/>
        <xs:element name="backup" type="StatusCode"/>
      </xs:sequence></xs:complexType>
    </xs:element>
    """)

    def test_enumerated_type_becomes_domain(self):
        graph = load_xsd(self.ENUM_SCHEMA, "s")
        domain = graph.element("s/domain:StatusCode")
        assert domain.kind is ElementKind.DOMAIN
        values = {v.name for v in graph.children("s/domain:StatusCode")}
        assert values == {"OPEN", "SHIP"}

    def test_domain_shared_between_uses(self):
        graph = load_xsd(self.ENUM_SCHEMA, "s")
        assert graph.domain_of("s/order/status").element_id == "s/domain:StatusCode"
        assert graph.domain_of("s/order/backup").element_id == "s/domain:StatusCode"

    def test_value_documentation(self):
        graph = load_xsd(self.ENUM_SCHEMA, "s")
        assert graph.element("s/domain:StatusCode/OPEN").documentation == "Still open"

    def test_inline_enumeration(self):
        text = _schema("""
        <xs:element name="order">
          <xs:complexType><xs:sequence>
            <xs:element name="priority">
              <xs:simpleType>
                <xs:restriction base="xs:string">
                  <xs:enumeration value="HIGH"/><xs:enumeration value="LOW"/>
                </xs:restriction>
              </xs:simpleType>
            </xs:element>
          </xs:sequence></xs:complexType>
        </xs:element>
        """)
        graph = load_xsd(text, "s")
        domain = graph.domain_of("s/order/priority")
        assert domain is not None
        assert {v.name for v in graph.children(domain.element_id)} == {"HIGH", "LOW"}
