"""Tests for data-dictionary enrichment and the type system."""

import pytest

from repro.core import ElementKind, LoaderError
from repro.loaders import (
    CANONICAL_TYPES,
    apply_dictionary,
    define_domain,
    enrich_from_text,
    load_sql,
    normalize_type,
    parse_dictionary,
    types_compatible,
)


class TestTypeNormalization:
    @pytest.mark.parametrize(
        "native,expected",
        [
            ("VARCHAR(30)", "string"),
            ("varchar2(64)", "string"),
            ("INT", "integer"),
            ("NUMERIC(10, 2)", "decimal"),
            ("xs:decimal", "decimal"),
            ("xsd:dateTime", "datetime"),
            ("xs:nonNegativeInteger", "integer"),
            ("TIMESTAMP", "datetime"),
            ("DOUBLE PRECISION", "float"),
            ("bytea", "binary"),
            ("uuid", "identifier"),
            ("boolean", "boolean"),
        ],
    )
    def test_known_types(self, native, expected):
        assert normalize_type(native) == expected

    def test_unknown_type_passes_through(self):
        assert normalize_type("GEOMETRY") == "geometry"

    def test_none(self):
        assert normalize_type(None) is None

    def test_canonical_types_are_fixed_point(self):
        for name in CANONICAL_TYPES:
            assert normalize_type(name) == name


class TestTypeCompatibility:
    def test_same_type(self):
        assert types_compatible("string", "string")

    def test_numeric_family(self):
        assert types_compatible("integer", "decimal")
        assert types_compatible("float", "integer")

    def test_temporal_family(self):
        assert types_compatible("date", "datetime")
        assert not types_compatible("date", "time")

    def test_incompatible(self):
        assert not types_compatible("binary", "date")

    def test_unknown_always_compatible(self):
        assert types_compatible(None, "string")
        assert types_compatible("geometry", "string") is False or True  # passthrough types
        assert types_compatible("string", None)


class TestDictionaryParsing:
    def test_parse_lines(self):
        entries = parse_dictionary(
            "# comment\nEmployee,A person employed.\nEmployee.salary,Annual pay.\n"
        )
        assert entries == {
            "Employee": "A person employed.",
            "Employee.salary": "Annual pay.",
        }

    def test_definition_may_contain_commas(self):
        entries = parse_dictionary("E,First, second, third.")
        assert entries["E"] == "First, second, third."

    def test_missing_comma_rejected(self):
        with pytest.raises(LoaderError):
            parse_dictionary("just a line without separator")

    def test_empty_path_rejected(self):
        with pytest.raises(LoaderError):
            parse_dictionary(",definition only")


class TestEnrichment:
    DDL = """
    CREATE TABLE employee (emp_id INT PRIMARY KEY, salary DECIMAL(8,2));
    """

    def test_apply_by_name(self):
        graph = load_sql(self.DDL, "hr")
        report = apply_dictionary(graph, {"employee": "A person employed by the org."})
        assert "hr/employee" in report.documented
        assert graph.element("hr/employee").documentation.startswith("A person")

    def test_apply_by_dotted_path(self):
        graph = load_sql(self.DDL, "hr")
        report = apply_dictionary(graph, {"employee.salary": "Annual gross pay."})
        assert graph.element("hr/employee/salary").documentation == "Annual gross pay."
        assert not report.unmatched

    def test_existing_docs_preserved_by_default(self):
        graph = load_sql(self.DDL, "hr")
        graph.element("hr/employee").documentation = "Original."
        apply_dictionary(graph, {"employee": "Replacement."})
        assert graph.element("hr/employee").documentation == "Original."

    def test_overwrite_flag(self):
        graph = load_sql(self.DDL, "hr")
        graph.element("hr/employee").documentation = "Original."
        apply_dictionary(graph, {"employee": "Replacement."}, overwrite=True)
        assert graph.element("hr/employee").documentation == "Replacement."

    def test_unmatched_reported(self):
        graph = load_sql(self.DDL, "hr")
        report = apply_dictionary(graph, {"ghost.attr": "Nothing."})
        assert report.unmatched == ["ghost.attr"]
        assert report.applied == 0

    def test_enrich_from_text(self):
        graph = load_sql(self.DDL, "hr")
        report = enrich_from_text(graph, "employee.emp_id,The employee number.")
        assert report.applied == 1


class TestDefineDomain:
    DDL = "CREATE TABLE t (status VARCHAR(4), other INT);"

    def test_domain_created_and_attached(self):
        graph = load_sql(self.DDL, "s")
        domain_id = define_domain(
            graph, "Status", [("OPEN", "Still open"), ("DONE", "Finished")],
            attach_to=["s/t/status"],
        )
        assert graph.element(domain_id).kind is ElementKind.DOMAIN
        assert graph.domain_of("s/t/status").element_id == domain_id
        codes = {v.name for v in graph.children(domain_id)}
        assert codes == {"OPEN", "DONE"}
        assert graph.validate() == []

    def test_duplicate_domain_rejected(self):
        graph = load_sql(self.DDL, "s")
        define_domain(graph, "Status", [("A", "")])
        with pytest.raises(LoaderError):
            define_domain(graph, "Status", [("B", "")])

    def test_attach_to_non_attribute_rejected(self):
        graph = load_sql(self.DDL, "s")
        with pytest.raises(LoaderError):
            define_domain(graph, "X", [("A", "")], attach_to=["s/t"])
