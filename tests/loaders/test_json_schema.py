"""Tests for the JSON Schema loader."""

import pytest

from repro.core import ElementKind, LoaderError
from repro.loaders import load_json_schema


SCHEMA = {
    "title": "order",
    "type": "object",
    "description": "A purchase order document.",
    "required": ["orderNumber"],
    "properties": {
        "orderNumber": {"type": "integer", "description": "Unique order number."},
        "shipTo": {
            "type": "object",
            "properties": {
                "city": {"type": "string"},
                "state": {"type": "string", "enum": ["VA", "MD"]},
            },
        },
        "lines": {
            "type": "array",
            "items": {
                "type": "object",
                "properties": {"qty": {"type": "integer"}},
            },
        },
        "total": {"type": "number"},
    },
}


class TestStructure:
    def test_nested_objects(self):
        graph = load_json_schema(SCHEMA, "js")
        assert "js/order/shipTo/city" in graph
        assert graph.element("js/order/shipTo").kind is ElementKind.ELEMENT

    def test_scalars_are_attributes(self):
        graph = load_json_schema(SCHEMA, "js")
        element = graph.element("js/order/orderNumber")
        assert element.kind is ElementKind.ATTRIBUTE
        assert element.datatype == "integer"

    def test_number_maps_to_float(self):
        graph = load_json_schema(SCHEMA, "js")
        assert graph.element("js/order/total").datatype == "float"

    def test_required_controls_nullability(self):
        graph = load_json_schema(SCHEMA, "js")
        assert graph.element("js/order/orderNumber").annotation("nullable") is None
        assert graph.element("js/order/total").annotation("nullable") is True

    def test_arrays_marked_repeating(self):
        graph = load_json_schema(SCHEMA, "js")
        lines = graph.element("js/order/lines")
        assert lines.annotation("repeating") is True
        assert "js/order/lines/item/qty" in graph

    def test_enum_becomes_domain(self):
        graph = load_json_schema(SCHEMA, "js")
        domain = graph.domain_of("js/order/shipTo/state")
        assert domain is not None
        assert {v.name for v in graph.children(domain.element_id)} == {"VA", "MD"}

    def test_validates(self):
        assert load_json_schema(SCHEMA, "js").validate() == []


class TestRefs:
    def test_local_ref_resolved(self):
        schema = {
            "title": "doc",
            "type": "object",
            "properties": {"addr": {"$ref": "#/definitions/Address"}},
            "definitions": {
                "Address": {
                    "type": "object",
                    "properties": {"city": {"type": "string"}},
                }
            },
        }
        graph = load_json_schema(schema, "js")
        assert "js/doc/addr/city" in graph

    def test_unresolved_ref_rejected(self):
        schema = {
            "title": "doc",
            "type": "object",
            "properties": {"x": {"$ref": "#/definitions/Ghost"}},
        }
        with pytest.raises(LoaderError):
            load_json_schema(schema, "js")

    def test_remote_ref_rejected(self):
        schema = {
            "title": "doc",
            "type": "object",
            "properties": {"x": {"$ref": "http://elsewhere/schema.json"}},
        }
        with pytest.raises(LoaderError):
            load_json_schema(schema, "js")


class TestErrors:
    def test_malformed_json(self):
        with pytest.raises(LoaderError):
            load_json_schema("{oops")

    def test_nullable_union_type(self):
        schema = {
            "title": "doc",
            "type": "object",
            "properties": {"x": {"type": ["string", "null"]}},
        }
        graph = load_json_schema(schema, "js")
        assert graph.element("js/doc/x").datatype == "string"
