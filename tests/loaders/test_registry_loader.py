"""Tests for the metadata-registry loader."""

import pytest

from repro.core import LoaderError
from repro.loaders import load_registry
from repro.registry import generate_registry


class TestRegistryLoader:
    def test_loads_generated_registry(self):
        registry = load_registry(generate_registry(seed=1, scale=0.005))
        assert len(registry) >= 1
        for graph in registry:
            assert graph.validate() == []

    def test_schema_lookup(self):
        registry = load_registry(generate_registry(seed=1, scale=0.005))
        name = registry.schema_names[0]
        assert registry.schema(name).name == name
        with pytest.raises(LoaderError):
            registry.schema("ghost")

    def test_duplicate_model_names_disambiguated(self):
        data = {
            "name": "r",
            "models": [
                {"name": "m", "entities": [{"name": "A", "attributes": []}]},
                {"name": "m", "entities": [{"name": "B", "attributes": []}]},
            ],
        }
        registry = load_registry(data)
        assert registry.schema_names == ["m", "m#2"]

    def test_missing_models_rejected(self):
        with pytest.raises(LoaderError):
            load_registry({"name": "r"})

    def test_non_object_model_rejected(self):
        with pytest.raises(LoaderError):
            load_registry({"name": "r", "models": ["oops"]})

    def test_json_text_accepted(self):
        import json

        data = json.dumps(
            {"name": "r", "models": [{"name": "m", "entities": [{"name": "A", "attributes": []}]}]}
        )
        assert load_registry(data).schema_names == ["m"]
