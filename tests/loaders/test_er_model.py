"""Tests for the ER model loader."""

import json

import pytest

from repro.core import ElementKind, LoaderError
from repro.eval import air_traffic_model, commerce_model
from repro.loaders import load_er


class TestBasics:
    def test_entities_and_attributes(self):
        graph = load_er(commerce_model())
        assert graph.element("commerce/Customer").kind is ElementKind.ENTITY
        assert graph.element("commerce/Customer/firstName").kind is ElementKind.ATTRIBUTE
        assert graph.element("commerce/Customer/firstName").datatype == "string"

    def test_documentation_loaded(self):
        graph = load_er(commerce_model())
        assert "purchase order" in graph.element("commerce/PurchaseOrder").documentation.lower()

    def test_json_text_accepted(self):
        graph = load_er(json.dumps(commerce_model()))
        assert "commerce/Customer" in graph

    def test_validates(self):
        assert load_er(commerce_model()).validate() == []
        assert load_er(air_traffic_model()).validate() == []

    def test_name_required(self):
        with pytest.raises(LoaderError):
            load_er({"entities": [{"name": "X", "attributes": []}]})

    def test_empty_model_rejected(self):
        with pytest.raises(LoaderError):
            load_er({"name": "empty"})

    def test_malformed_json_rejected(self):
        with pytest.raises(LoaderError):
            load_er("{not json")


class TestKeysAndDomains:
    def test_key_attributes(self):
        graph = load_er(commerce_model())
        keys = graph.out_edges("commerce/Customer", "has-key")
        assert len(keys) == 1
        key_attrs = [e.object for e in graph.out_edges(keys[0].object, "key-attribute")]
        assert key_attrs == ["commerce/Customer/customerNumber"]

    def test_domains_and_values(self):
        graph = load_er(commerce_model())
        domain = graph.element("commerce/domain:OrderStatus")
        assert domain.kind is ElementKind.DOMAIN
        codes = {v.name for v in graph.children("commerce/domain:OrderStatus")}
        assert codes == {"OPEN", "SHIP", "CANC", "HOLD"}

    def test_attribute_links_to_domain(self):
        graph = load_er(commerce_model())
        domain = graph.domain_of("commerce/PurchaseOrder/status")
        assert domain.element_id == "commerce/domain:OrderStatus"

    def test_unknown_domain_rejected(self):
        model = {
            "name": "m",
            "entities": [{"name": "E", "attributes": [{"name": "a", "domain": "Ghost"}]}],
        }
        with pytest.raises(LoaderError):
            load_er(model)

    def test_string_values_accepted(self):
        model = {
            "name": "m",
            "entities": [{"name": "E", "attributes": [{"name": "a"}]}],
            "domains": [{"name": "D", "values": ["X", "Y"]}],
        }
        graph = load_er(model)
        assert {v.name for v in graph.children("m/domain:D")} == {"X", "Y"}


class TestRelationships:
    def test_relationship_references_entities(self):
        model = {
            "name": "m",
            "entities": [
                {"name": "Carrier", "attributes": [{"name": "code", "key": True}]},
                {"name": "Flight", "attributes": [{"name": "number", "key": True}]},
            ],
            "relationships": [
                {"name": "operates", "from": "Carrier", "to": "Flight",
                 "documentation": "A carrier operates flights.",
                 "attributes": [{"name": "since", "type": "date"}]},
            ],
        }
        graph = load_er(model)
        rel = graph.element("m/operates")
        assert rel.kind is ElementKind.RELATIONSHIP
        refs = {e.object for e in graph.out_edges("m/operates", "references")}
        assert refs == {"m/Carrier", "m/Flight"}
        assert "m/operates/since" in graph

    def test_unknown_endpoint_rejected(self):
        model = {
            "name": "m",
            "entities": [{"name": "A", "attributes": []}],
            "relationships": [{"name": "r", "from": "A", "to": "Ghost"}],
        }
        with pytest.raises(LoaderError):
            load_er(model)


class TestAnnotations:
    def test_units_and_instances(self):
        graph = load_er(air_traffic_model())
        elevation = graph.element("air_traffic/Airport/elevation")
        assert elevation.annotation("units") == "feet"

    def test_instance_values_annotation(self):
        model = {
            "name": "m",
            "entities": [{"name": "E", "attributes": [
                {"name": "a", "instance_values": ["x", "y"]}]}],
        }
        graph = load_er(model)
        assert graph.element("m/E/a").annotation("instance_values") == ["x", "y"]
