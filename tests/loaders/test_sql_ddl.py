"""Tests for the SQL DDL loader."""

import pytest

from repro.core import ElementKind, LoaderError
from repro.loaders import load_sql, tokenize_sql


class TestTokenizer:
    def test_basic_tokens(self):
        tokens, comments = tokenize_sql("CREATE TABLE t (a INT);")
        kinds = [t.kind for t in tokens]
        assert kinds == ["ident", "ident", "ident", "punct", "ident", "ident", "punct", "punct"]

    def test_comments_collected_with_lines(self):
        tokens, comments = tokenize_sql("-- first\nCREATE TABLE t (a INT); /* block */")
        assert (1, "first") in comments
        assert any("block" in c for _, c in comments)

    def test_string_literals(self):
        tokens, _ = tokenize_sql("COMMENT ON TABLE t IS 'it''s quoted';")
        strings = [t.value for t in tokens if t.kind == "string"]
        assert strings == ["it's quoted"]

    def test_quoted_identifiers(self):
        tokens, _ = tokenize_sql('CREATE TABLE "My Table" (x INT);')
        assert any(t.value == "My Table" for t in tokens)

    def test_unexpected_character(self):
        with pytest.raises(LoaderError):
            tokenize_sql("CREATE TABLE t (a INT) €;")


class TestBasicParsing:
    def test_tables_and_columns(self, orders_graph):
        tables = {t.name for t in orders_graph.elements_of_kind(ElementKind.TABLE)}
        assert tables == {"purchase_order", "customer"}
        columns = {c.name for c in orders_graph.children("orders/customer")}
        assert columns == {"cust_id", "first_name", "last_name"}

    def test_types_normalized(self, orders_graph):
        assert orders_graph.element("orders/purchase_order/po_id").datatype == "integer"
        assert orders_graph.element("orders/purchase_order/subtotal").datatype == "decimal"
        assert orders_graph.element("orders/purchase_order/status").datatype == "string"
        assert orders_graph.element("orders/purchase_order/order_date").datatype == "date"

    def test_native_type_preserved(self, orders_graph):
        element = orders_graph.element("orders/purchase_order/subtotal")
        assert element.annotation("native_type") == "decimal(10,2)"

    def test_nullability(self, orders_graph):
        assert orders_graph.element("orders/purchase_order/cust_id").annotation("nullable") is False
        assert orders_graph.element("orders/purchase_order/status").annotation("nullable") is True

    def test_comments_become_documentation(self, orders_graph):
        assert "Given name" in orders_graph.element("orders/customer/first_name").documentation
        assert "Orders placed" in orders_graph.element("orders/purchase_order").documentation

    def test_no_tables_rejected(self):
        with pytest.raises(LoaderError):
            load_sql("SELECT 1;")

    def test_graph_validates(self, orders_graph):
        assert orders_graph.validate() == []


class TestKeysAndReferences:
    def test_inline_primary_key(self, orders_graph):
        keys = orders_graph.out_edges("orders/purchase_order", "has-key")
        assert len(keys) == 1
        key_attrs = orders_graph.out_edges(keys[0].object, "key-attribute")
        assert [e.object for e in key_attrs] == ["orders/purchase_order/po_id"]

    def test_inline_references(self, orders_graph):
        refs = orders_graph.out_edges("orders/purchase_order/cust_id", "references")
        assert [e.object for e in refs] == ["orders/customer/cust_id"]

    def test_table_level_constraints(self):
        ddl = """
        CREATE TABLE child (
            a INT, b INT, t_id INT,
            PRIMARY KEY (a, b),
            UNIQUE (b),
            FOREIGN KEY (t_id) REFERENCES parent (id) ON DELETE CASCADE,
            CHECK (a > 0)
        );
        CREATE TABLE parent (id INT PRIMARY KEY);
        """
        graph = load_sql(ddl, "s")
        key = graph.out_edges("s/child", "has-key")[0]
        key_attrs = {e.object for e in graph.out_edges(key.object, "key-attribute")}
        assert key_attrs == {"s/child/a", "s/child/b"}
        refs = graph.out_edges("s/child/t_id", "references")
        assert [e.object for e in refs] == ["s/parent/id"]

    def test_forward_reference_resolved(self):
        """FK can reference a table defined later in the script."""
        ddl = """
        CREATE TABLE a (x INT REFERENCES b(y));
        CREATE TABLE b (y INT PRIMARY KEY);
        """
        graph = load_sql(ddl, "s")
        assert graph.out_edges("s/a/x", "references")[0].object == "s/b/y"

    def test_named_constraint(self):
        ddl = "CREATE TABLE t (a INT, CONSTRAINT pk_t PRIMARY KEY (a));"
        graph = load_sql(ddl, "s")
        assert graph.out_edges("s/t", "has-key")


class TestCommentOnStatements:
    def test_comment_on_overrides_inline(self):
        ddl = """
        CREATE TABLE t (
            a INT -- inline doc
        );
        COMMENT ON COLUMN t.a IS 'Authoritative definition.';
        COMMENT ON TABLE t IS 'The t table.';
        """
        graph = load_sql(ddl, "s")
        assert graph.element("s/t/a").documentation == "Authoritative definition."
        assert graph.element("s/t").documentation == "The t table."

    def test_comment_on_unknown_table_ignored(self):
        ddl = """
        CREATE TABLE t (a INT);
        COMMENT ON TABLE ghost IS 'nothing';
        """
        graph = load_sql(ddl, "s")
        assert "s/t" in graph


class TestDialectTolerance:
    def test_if_not_exists(self):
        graph = load_sql("CREATE TABLE IF NOT EXISTS t (a INT);", "s")
        assert "s/t" in graph

    def test_defaults_and_checks(self):
        ddl = "CREATE TABLE t (a INT DEFAULT 5, b VARCHAR(8) DEFAULT 'x' CHECK (b <> ''));"
        graph = load_sql(ddl, "s")
        assert graph.element("s/t/a").annotation("default") == "5"

    def test_unsupported_statements_skipped(self):
        ddl = """
        DROP TABLE IF EXISTS old;
        CREATE INDEX idx ON t (a);
        CREATE TABLE t (a INT);
        """
        graph = load_sql(ddl, "s")
        assert "s/t" in graph

    def test_schema_qualified_names(self):
        graph = load_sql("CREATE TABLE myschema.t (a INT);", "s")
        assert "s/t" in graph

    def test_inline_column_comment_keyword(self):
        graph = load_sql("CREATE TABLE t (a INT COMMENT 'col doc');", "s")
        assert graph.element("s/t/a").documentation == "col doc"
