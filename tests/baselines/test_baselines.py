"""Tests for the baseline matchers and the common matcher interface."""

import pytest

from repro.baselines import (
    AGGREGATE_AVERAGE,
    AGGREGATE_MAX,
    ComaStyleMatcher,
    CupidStyleMatcher,
    FloodingOnlyMatcher,
    HarmonyMatcher,
    NameEqualityMatcher,
)
from repro.eval import evaluate_matrix, generate_scenario, commerce_model, ScenarioConfig


ALL_MATCHERS = [
    NameEqualityMatcher(),
    FloodingOnlyMatcher(),
    ComaStyleMatcher(),
    CupidStyleMatcher(),
]


class TestInterface:
    @pytest.mark.parametrize("matcher", ALL_MATCHERS, ids=lambda m: m.name)
    def test_produces_legal_matrix(self, matcher, orders_graph, notice_graph):
        matrix = matcher.match(orders_graph, notice_graph)
        for cell in matrix.cells():
            assert -0.99 <= cell.confidence <= 0.99
            assert not cell.is_user_defined

    @pytest.mark.parametrize("matcher", ALL_MATCHERS, ids=lambda m: m.name)
    def test_roots_never_matched(self, matcher, orders_graph, notice_graph):
        matrix = matcher.match(orders_graph, notice_graph)
        for cell in matrix.cells():
            assert cell.source_id != "orders"
            assert cell.target_id != "notice"


class TestNameEquality:
    def test_exact_and_token_matches(self, orders_graph, notice_graph):
        matrix = NameEqualityMatcher().match(orders_graph, notice_graph)
        # first_name (snake) vs firstName (camel): token-set equality
        cell = matrix.peek("orders/customer/first_name",
                           "notice/shippingNotice/recipientName/firstName")
        assert cell is not None and cell.confidence == pytest.approx(0.85)

    def test_kind_compatibility_respected(self, orders_graph, notice_graph):
        matrix = NameEqualityMatcher().match(orders_graph, notice_graph)
        for cell in matrix.cells():
            source_el = orders_graph.element(cell.source_id)
            target_el = notice_graph.element(cell.target_id)
            assert source_el.is_container == target_el.is_container


class TestComaStyle:
    def test_aggregation_strategies_differ(self, orders_graph, notice_graph):
        max_matrix = ComaStyleMatcher(AGGREGATE_MAX).match(orders_graph, notice_graph)
        avg_matrix = ComaStyleMatcher(AGGREGATE_AVERAGE).match(orders_graph, notice_graph)
        pair = ("orders/customer/first_name",
                "notice/shippingNotice/recipientName/firstName")
        assert max_matrix.cell(*pair).confidence >= avg_matrix.cell(*pair).confidence

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(ValueError):
            ComaStyleMatcher("mode")


class TestCupidStyle:
    def test_structure_weight_validated(self):
        with pytest.raises(ValueError):
            CupidStyleMatcher(structure_weight=1.5)

    def test_synonyms_matched(self):
        """Cupid's linguistic layer uses the thesaurus."""
        from repro.loaders import load_er

        source = load_er({"name": "s", "entities": [
            {"name": "Vendor", "attributes": [{"name": "name"}]}]})
        target = load_er({"name": "t", "entities": [
            {"name": "Supplier", "attributes": [{"name": "title"}]}]})
        matrix = CupidStyleMatcher().match(source, target)
        assert matrix.cell("s/Vendor", "t/Supplier").confidence > 0.4


class TestRelativeQuality:
    """The A6 shape: Harmony's ensemble beats each single-strategy baseline."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return generate_scenario(commerce_model(), ScenarioConfig(seed=11))

    def test_harmony_beats_name_equality(self, scenario):
        harmony = evaluate_matrix(
            HarmonyMatcher().match(scenario.source, scenario.target), scenario.alignment)
        trivial = evaluate_matrix(
            NameEqualityMatcher().match(scenario.source, scenario.target), scenario.alignment)
        assert harmony.f1 > trivial.f1

    def test_harmony_beats_sf_only(self, scenario):
        harmony = evaluate_matrix(
            HarmonyMatcher().match(scenario.source, scenario.target), scenario.alignment)
        flooding = evaluate_matrix(
            FloodingOnlyMatcher().match(scenario.source, scenario.target), scenario.alignment)
        assert harmony.f1 > flooding.f1

    def test_every_matcher_beats_nothing(self, scenario):
        for matcher in ALL_MATCHERS:
            quality = evaluate_matrix(
                matcher.match(scenario.source, scenario.target), scenario.alignment)
            assert quality.recall > 0.0
