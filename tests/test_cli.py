"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def schema_files(tmp_path, orders_ddl_text, notice_xsd_text):
    sql_path = tmp_path / "orders.sql"
    sql_path.write_text(orders_ddl_text)
    xsd_path = tmp_path / "notice.xsd"
    xsd_path.write_text(notice_xsd_text)
    return str(sql_path), str(xsd_path)


class TestLoadCommand:
    def test_load_sql(self, schema_files, capsys):
        sql_path, _ = schema_files
        assert main(["load", sql_path]) == 0
        out = capsys.readouterr().out
        assert "purchase_order [table]" in out
        assert "documented" in out

    def test_load_with_name(self, schema_files, capsys):
        sql_path, _ = schema_files
        main(["load", sql_path, "--name", "orders"])
        assert "orders [schema]" in capsys.readouterr().out

    def test_format_inference_failure(self, tmp_path, capsys):
        path = tmp_path / "mystery.dat"
        path.write_text("CREATE TABLE t (a INT);")
        assert main(["load", str(path)]) == 2
        assert "cannot infer" in capsys.readouterr().err

    def test_explicit_format(self, tmp_path, capsys):
        path = tmp_path / "mystery.dat"
        path.write_text("CREATE TABLE t (a INT);")
        assert main(["load", str(path), "--format", "sql"]) == 0

    def test_missing_file(self, capsys):
        assert main(["load", "/nonexistent/file.sql"]) == 2

    def test_malformed_schema(self, tmp_path, capsys):
        path = tmp_path / "broken.sql"
        path.write_text("this is not sql at all")
        assert main(["load", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestMatchCommand:
    def test_match_prints_links(self, schema_files, capsys):
        sql_path, xsd_path = schema_files
        assert main(["match", sql_path, xsd_path, "--top", "5"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "->" in l]
        assert 0 < len(lines) <= 5
        assert all(l.startswith("+") for l in lines)

    def test_verbose_shows_pipeline(self, schema_files, capsys):
        sql_path, xsd_path = schema_files
        main(["match", sql_path, xsd_path, "-v"])
        out = capsys.readouterr().out
        assert "# match voters" in out

    def test_impossible_threshold(self, schema_files, capsys):
        sql_path, xsd_path = schema_files
        assert main(["match", sql_path, xsd_path, "--threshold", "0.9999"]) == 1


class TestMapCommand:
    def test_map_emits_xquery(self, schema_files, capsys):
        sql_path, xsd_path = schema_files
        code = main(["map", sql_path, xsd_path, "--threshold", "0.4"])
        out = capsys.readouterr().out
        assert "for $row in" in out
        assert code in (0, 2)  # verification may flag unmapped attributes

    def test_map_threshold_too_high_fails_cleanly(self, schema_files, capsys):
        sql_path, xsd_path = schema_files
        assert main(["map", sql_path, xsd_path, "--threshold", "0.99"]) == 1
        assert "no entity-level correspondences" in capsys.readouterr().err

    def test_map_emits_sql(self, schema_files, capsys):
        sql_path, xsd_path = schema_files
        main(["map", sql_path, xsd_path, "--threshold", "0.4",
              "--language", "sql"])
        out = capsys.readouterr().out
        assert "INSERT INTO" in out or "-- no SQL" in out


class TestTable1Command:
    def test_table1_prints_stats(self, capsys):
        assert main(["table1", "--scale", "0.005", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "Element" in out and "words/definition" in out

    def test_table1_writes_registry(self, tmp_path, capsys):
        out_path = tmp_path / "registry.json"
        main(["table1", "--scale", "0.005", "--seed", "5", "--out", str(out_path)])
        registry = json.loads(out_path.read_text())
        assert registry["models"]


class TestCoverageCommand:
    def test_coverage_table(self, capsys):
        assert main(["coverage"]) == 0
        out = capsys.readouterr().out
        assert "Harmony" in out
        assert "Workbench suite" in out
        assert "100%" in out
