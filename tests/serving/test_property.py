"""Property: under any interleaving of jobs across sessions, each
session's final blackboard state equals applying that session's jobs
serially, in submission order, on a private workbench.

The fair scheduler may interleave sessions arbitrarily, but it never
reorders jobs *within* a session — so serial-per-session is the spec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import to_ntriples
from repro.serving import ServingConfig, WorkbenchServer
from repro.workbench import WorkbenchManager

SESSIONS = ("red", "green", "blue")

op_strategy = st.tuples(
    st.integers(min_value=0, max_value=len(SESSIONS) - 1),
    st.sampled_from(["orders/customer", "orders/po_number",
                     "orders/ship_date", "orders/total"]),
    st.sampled_from(["notice/recipientName", "notice/poNo",
                     "notice/arrivalDate"]),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
              allow_infinity=False),
    st.booleans(),
)


def _lines(store) -> list:
    return sorted(to_ntriples(store).splitlines())


@settings(max_examples=20, deadline=None)
@given(ops=st.lists(op_strategy, min_size=1, max_size=40))
def test_random_interleavings_match_serial_per_session(ops):
    server = WorkbenchServer(ServingConfig(workers=3, queue_limit=256))
    try:
        handles = [
            server.update_cell(
                SESSIONS[index], "m", source_id, target_id, confidence,
                user_defined=user_defined)
            for index, source_id, target_id, confidence, user_defined in ops
        ]
        for handle in handles:
            handle.result(30)

        for session_index, name in enumerate(SESSIONS):
            reference = WorkbenchManager()
            for index, source_id, target_id, confidence, user_defined in ops:
                if index == session_index:
                    reference.blackboard.update_cell(
                        "m", source_id, target_id, confidence,
                        user_defined=user_defined)
            served = server.sessions.get_or_create(name)
            assert (_lines(served.manager.blackboard.store)
                    == _lines(reference.blackboard.store))
            reference.close()
    finally:
        server.close(drain=False)
