"""The transport seam: the JSON gateway, and the TCP framing around it."""

import pytest

from repro.serving import (
    TcpWorkbenchClient,
    handle_request,
    serve_tcp,
)


class TestGateway:
    """handle_request: one JSON-able dict in, one out, errors inline."""

    def test_session_lifecycle(self, make_server):
        server = make_server()
        created = handle_request(server, {"op": "create_session",
                                          "session": "alice"})
        assert created == {"ok": True, "session": "alice"}
        assert handle_request(server, {"op": "close_session",
                                       "session": "alice"}) == {"ok": True}

    def test_submit_poll_result(self, make_server, orders_ddl_text,
                                notice_xsd_text):
        server = make_server()
        for text, format_name, name in (
            (orders_ddl_text, "sql", "orders"),
            (notice_xsd_text, "xsd", "notice"),
        ):
            response = handle_request(server, {
                "op": "submit", "session": "s", "kind": "load_schema",
                "params": {"text": text, "format": format_name,
                           "schema_name": name}})
            assert response["ok"]
            done = handle_request(server, {
                "op": "result", "job_id": response["job_id"],
                "timeout": 30})
            assert done["ok"] and done["status"] == "done"
        submitted = handle_request(server, {
            "op": "submit", "session": "s", "kind": "match",
            "params": {"source_schema": "orders",
                       "target_schema": "notice"}})
        job_id = submitted["job_id"]
        result = handle_request(server, {"op": "result", "job_id": job_id,
                                         "timeout": 60})
        assert result["ok"]
        assert result["result"]["matrix"] == "orders->notice"
        assert result["result"]["cells"] > 0
        # a fetched result is forgotten: polling again is an error
        again = handle_request(server, {"op": "result", "job_id": job_id})
        assert not again["ok"]

    def test_non_wire_kind_rejected(self, make_server):
        server = make_server()
        response = handle_request(server, {
            "op": "submit", "session": "s", "kind": "put_schema",
            "params": {}})
        assert not response["ok"]
        assert "not wire-transportable" in response["message"]

    def test_unknown_op_is_an_error_response(self, make_server):
        server = make_server()
        response = handle_request(server, {"op": "divide_by_zero"})
        assert not response["ok"]
        assert response["error"] == "ServingError"

    def test_queue_full_carries_retry_hint(self, make_server):
        server = make_server(workers=1, queue_limit=1, retry_after_s=0.2)
        first = handle_request(server, {
            "op": "submit", "session": "s", "kind": "ping",
            "params": {"delay_s": 0.3}})
        assert first["ok"]
        # flood until the bounded queue rejects
        rejected = None
        for _ in range(20):
            response = handle_request(server, {
                "op": "submit", "session": "s", "kind": "ping",
                "params": {}})
            if not response["ok"]:
                rejected = response
                break
        assert rejected is not None
        assert rejected["error"] == "QueueFullError"
        assert rejected["retry_after_s"] == 0.2

    def test_cancel_and_stats(self, make_server):
        server = make_server(workers=1)
        blocker = handle_request(server, {
            "op": "submit", "session": "s", "kind": "ping",
            "params": {"delay_s": 0.3}})
        victim = handle_request(server, {
            "op": "submit", "session": "s", "kind": "ping", "params": {}})
        cancelled = handle_request(server, {"op": "cancel",
                                            "job_id": victim["job_id"]})
        assert cancelled == {"ok": True, "cancelled": True}
        outcome = handle_request(server, {"op": "result",
                                          "job_id": victim["job_id"],
                                          "timeout": 5})
        assert not outcome["ok"]
        assert outcome["error"] == "JobCancelledError"
        done = handle_request(server, {"op": "result",
                                       "job_id": blocker["job_id"],
                                       "timeout": 5})
        assert done["ok"] and done["result"] == "pong"
        stats = handle_request(server, {"op": "stats"})
        assert stats["ok"]
        assert stats["stats"]["cancelled"] == 1


class TestTcp:
    """Length-prefixed frames over a real socket."""

    def test_round_trip_match(self, make_server, orders_ddl_text,
                              notice_xsd_text):
        server = make_server()
        tcp = serve_tcp(server)
        try:
            host, port = tcp.address
            with TcpWorkbenchClient(host, port) as client:
                assert client.create_session("wire")["ok"]
                for text, format_name, name in (
                    (orders_ddl_text, "sql", "orders"),
                    (notice_xsd_text, "xsd", "notice"),
                ):
                    submitted = client.submit(
                        "wire", "load_schema", text=text,
                        format=format_name, schema_name=name)
                    assert client.result(submitted["job_id"])["ok"]
                submitted = client.submit(
                    "wire", "match", source_schema="orders",
                    target_schema="notice")
                result = client.result(submitted["job_id"], timeout=60)
                assert result["ok"]
                assert result["result"]["matrix"] == "orders->notice"
                assert result["result"]["cells"] > 0
                stats = client.stats()
                assert stats["stats"]["failed"] == 0
        finally:
            tcp.close()

    def test_errors_cross_the_wire_as_responses(self, make_server):
        server = make_server()
        tcp = serve_tcp(server)
        try:
            host, port = tcp.address
            with TcpWorkbenchClient(host, port) as client:
                response = client.request({"op": "nonsense"})
                assert not response["ok"]
                assert response["error"] == "ServingError"
                # the connection survives an error response
                assert client.stats()["ok"]
        finally:
            tcp.close()

    def test_multiple_clients_share_one_server(self, make_server):
        server = make_server()
        tcp = serve_tcp(server)
        try:
            host, port = tcp.address
            with TcpWorkbenchClient(host, port) as one, \
                    TcpWorkbenchClient(host, port) as two:
                assert one.create_session("a")["ok"]
                assert two.create_session("b")["ok"]
                names = one.stats()["stats"]["sessions"]
                assert set(names) >= {"a", "b"}
        finally:
            tcp.close()
