"""The serving determinism contract: concurrency must not change a
single bit of any result.

N sessions, each with its own perturbed schema pair, matched through
the server with 4 workers running concurrently, must produce matrices
bit-identical to N serial runs on fresh, private engines — in both
executor modes."""

import pytest

from repro.core.matrix import MappingMatrix
from repro.harmony import HarmonyEngine
from repro.loaders import load_sql, load_xsd
from repro.serving import ServingConfig, WorkbenchClient


N_SESSIONS = 6


def _perturbed_pair(orders_ddl_text, notice_xsd_text, index):
    """A per-session variant of the Figure-3 pair: an extra table whose
    name and columns depend on the session index, so no two sessions
    share inputs and any cross-session leak changes some matrix."""
    ddl = orders_ddl_text + (
        f"\nCREATE TABLE audit_{index} ("
        f"  entry_id INT PRIMARY KEY,"
        f"  note_{index} VARCHAR(40),"
        f"  stamp_{index} DATE"
        f");\n"
    )
    return ddl, notice_xsd_text


def _serial_reference(orders_ddl_text, notice_xsd_text):
    """One fresh engine per session, strictly sequential."""
    config = ServingConfig()
    expected = {}
    for index in range(N_SESSIONS):
        ddl, xsd = _perturbed_pair(orders_ddl_text, notice_xsd_text, index)
        source = load_sql(ddl, "orders")
        target = load_xsd(xsd, "notice")
        matrix = MappingMatrix.from_schemas(source, target)
        engine = HarmonyEngine(config=config.resolved_engine_config())
        engine.match(source, target, matrix=matrix)
        expected[f"s{index}"] = {
            (c.source_id, c.target_id): c.confidence
            for c in matrix.cells()
        }
    return expected


def _served_concurrent(make_server, orders_ddl_text, notice_xsd_text,
                       executor):
    server = make_server(workers=4, executor=executor, queue_limit=256)
    client = WorkbenchClient(server)
    for index in range(N_SESSIONS):
        ddl, xsd = _perturbed_pair(orders_ddl_text, notice_xsd_text, index)
        client.load_schema(f"s{index}", ddl, "sql", "orders")
        client.load_schema(f"s{index}", xsd, "xsd", "notice")
    # submit every match before collecting any result, so the sessions
    # genuinely overlap on the worker pool
    handles = {
        f"s{index}": server.match(f"s{index}", "orders", "notice")
        for index in range(N_SESSIONS)
    }
    matrices = {name: handle.result(300) for name, handle in handles.items()}
    got = {
        name: {(c.source_id, c.target_id): c.confidence
               for c in matrix.cells()}
        for name, matrix in matrices.items()
    }
    server.close()
    return got


def test_concurrent_thread_mode_is_bit_identical_to_serial(
        make_server, orders_ddl_text, notice_xsd_text):
    expected = _serial_reference(orders_ddl_text, notice_xsd_text)
    got = _served_concurrent(
        make_server, orders_ddl_text, notice_xsd_text, "thread")
    assert got == expected  # dict equality on floats == bit-identical

    # the perturbation did its job: no two sessions agree
    maps = list(expected.values())
    assert all(maps[i] != maps[j]
               for i in range(len(maps)) for j in range(i + 1, len(maps)))


def test_concurrent_process_mode_is_bit_identical_to_serial(
        make_server, orders_ddl_text, notice_xsd_text):
    expected = _serial_reference(orders_ddl_text, notice_xsd_text)
    got = _served_concurrent(
        make_server, orders_ddl_text, notice_xsd_text, "process")
    assert got == expected


def test_repeat_match_on_warm_engine_is_stable(make_server, load_pair):
    """The same session matched twice on its warm engine: same bits."""
    server = make_server(workers=1)
    load_pair(server, "s")
    first = server.match("s", "orders", "notice").result(60)
    second = server.match("s", "orders", "notice").result(60)
    cells = lambda m: {(c.source_id, c.target_id): c.confidence
                       for c in m.cells()}
    assert cells(first) == cells(second)
