"""The workbench server: sessions, queue semantics, cancellation,
backpressure, shutdown, and the smoke load CI runs."""

import threading
import time

import pytest

from repro.core import ToolError
from repro.serving import (
    JobCancelledError,
    JobQueue,
    JobStatus,
    QueueFullError,
    ServerClosedError,
    ServingConfig,
    ServingError,
    WorkbenchClient,
)
from repro.serving.jobs import Job


def wait_running(handle, timeout=5.0):
    """Spin until the worker has actually picked the job up."""
    deadline = time.monotonic() + timeout
    while handle.status is JobStatus.QUEUED:
        if time.monotonic() > deadline:
            raise AssertionError(f"{handle.job_id} never started")
        time.sleep(0.002)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ToolError):
            ServingConfig(workers=0)
        with pytest.raises(ToolError):
            ServingConfig(executor="fiber")
        with pytest.raises(ToolError):
            ServingConfig(queue_limit=0)
        with pytest.raises(ToolError):
            ServingConfig(retry_after_s=-1.0)
        with pytest.raises(ToolError):
            ServingConfig(max_sessions=0)
        with pytest.raises(ToolError):
            ServingConfig(fsync="sometimes")
        with pytest.raises(ToolError):
            ServingConfig(drain_timeout_s=-1.0)

    def test_defaults_resolve_fast_engine(self):
        config = ServingConfig()
        assert config.resolved_engine_config() is not None


class TestQueue:
    def _job(self, session, priority=0, seq=0):
        return Job(session=session, kind="ping", params={},
                   priority=priority, seq=seq)

    def test_priority_within_session(self):
        queue = JobQueue(limit=10)
        low = self._job("a", priority=5, seq=0)
        high = self._job("a", priority=-5, seq=1)
        mid = self._job("a", priority=0, seq=2)
        for job in (low, high, mid):
            queue.push(job)
        assert [queue.pop(0.1) for _ in range(3)] == [high, mid, low]

    def test_arrival_order_breaks_priority_ties(self):
        queue = JobQueue(limit=10)
        jobs = [self._job("a", seq=i) for i in range(4)]
        for job in jobs:
            queue.push(job)
        assert [queue.pop(0.1) for _ in range(4)] == jobs

    def test_fair_round_robin_across_sessions(self):
        queue = JobQueue(limit=32, fair=True)
        # session "a" floods first; "b" and "c" each queue one job
        flood = [self._job("a", seq=i) for i in range(6)]
        b = self._job("b", seq=6)
        c = self._job("c", seq=7)
        for job in flood + [b, c]:
            queue.push(job)
        order = [queue.pop(0.1).session for _ in range(8)]
        # b and c each get a turn within the first rotation, despite
        # a's six earlier arrivals
        assert set(order[:3]) == {"a", "b", "c"}

    def test_unfair_mode_is_global_order(self):
        queue = JobQueue(limit=32, fair=False)
        flood = [self._job("a", seq=i) for i in range(3)]
        late = self._job("b", seq=3)
        urgent = self._job("c", priority=-1, seq=4)
        for job in flood + [late, urgent]:
            queue.push(job)
        order = [queue.pop(0.1) for _ in range(5)]
        assert order == [urgent] + flood + [late]

    def test_backpressure_raises_with_retry_hint(self):
        queue = JobQueue(limit=2, retry_after_s=0.25)
        queue.push(self._job("a", seq=0))
        queue.push(self._job("a", seq=1))
        with pytest.raises(QueueFullError) as info:
            queue.push(self._job("a", seq=2))
        assert info.value.retry_after_s == 0.25

    def test_cancelled_entries_are_discarded(self):
        queue = JobQueue(limit=10)
        first = self._job("a", seq=0)
        second = self._job("a", seq=1)
        queue.push(first)
        queue.push(second)
        assert first.cancel()
        assert queue.pop(0.1) is second
        assert queue.pop(0.05) is None

    def test_closed_queue_rejects_push_and_drains(self):
        queue = JobQueue(limit=10)
        job = self._job("a")
        queue.push(job)
        queue.close()
        with pytest.raises(ServerClosedError):
            queue.push(self._job("a", seq=1))
        assert queue.pop(0.1) is job
        assert queue.pop(0.1) is None  # drained + closed


class TestSessions:
    def test_sessions_are_isolated(self, make_server, load_pair,
                                   orders_ddl_text):
        server = make_server()
        load_pair(server, "alice")
        client = WorkbenchClient(server)
        client.load_schema("bob", orders_ddl_text, "sql", "different")
        alice_board = server.sessions.get("alice").manager.blackboard
        assert alice_board.has_schema("orders")
        bob_board = server.sessions.get("bob").manager.blackboard
        assert bob_board.has_schema("different")
        assert not bob_board.has_schema("orders")

    def test_invalid_session_name_rejected(self, make_server):
        server = make_server()
        with pytest.raises(ServingError):
            server.ping("../escape")

    def test_max_sessions_enforced(self, make_server):
        server = make_server(max_sessions=2)
        server.ping("one").result(5)
        server.ping("two").result(5)
        with pytest.raises(ServingError):
            server.ping("three")
        server.sessions.close_session("one")
        server.ping("four").result(5)

    def test_durable_sessions_recover(self, make_server, load_pair,
                                      tmp_path):
        root = str(tmp_path / "sessions")
        server = make_server(durable_root=root)
        client = load_pair(server, "alice")
        matrix = client.match("alice", "orders", "notice")
        want = {(c.source_id, c.target_id): c.confidence
                for c in matrix.cells()}
        assert want
        server.close()

        reopened = make_server(durable_root=root)
        board = reopened.sessions.get_or_create("alice").manager.blackboard
        assert board.has_schema("orders")
        assert board.has_schema("notice")
        got = {(c.source_id, c.target_id): c.confidence
               for c in board.get_matrix("orders->notice").cells()}
        assert got == want


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, make_server):
        server = make_server(workers=1)
        blocker = server.ping("s", delay_s=0.3)
        victim = server.ping("s")
        assert victim.cancel()
        with pytest.raises(JobCancelledError):
            victim.result(5)
        assert blocker.result(5) == "pong"
        assert server.stats()["cancelled"] == 1

    def test_cancel_mid_flight_discards_effects(self, make_server,
                                                load_pair):
        """A match cancelled while RUNNING writes nothing to the board."""
        server = make_server(workers=1)
        load_pair(server, "s")
        session = server.sessions.get("s")

        started = threading.Event()
        release = threading.Event()

        class GatedEngine:
            def match(self, source, target, matrix=None):
                started.set()
                release.wait(5)

        session._engine = GatedEngine()
        handle = server.match("s", "orders", "notice")
        assert started.wait(5)
        assert handle.status is JobStatus.RUNNING
        assert handle.cancel()
        release.set()
        with pytest.raises(JobCancelledError):
            handle.result(5)
        assert not session.manager.blackboard.has_matrix("orders->notice")

    def test_cancel_terminal_job_is_noop(self, make_server):
        server = make_server()
        handle = server.ping("s")
        assert handle.result(5) == "pong"
        assert not handle.cancel()


class TestBackpressure:
    def test_full_queue_rejects_submit(self, make_server):
        server = make_server(workers=1, queue_limit=3, retry_after_s=0.01)
        blocker = server.ping("s", delay_s=0.4)
        wait_running(blocker)  # queue is now empty, worker occupied
        handles = [server.ping("s") for _ in range(3)]
        with pytest.raises(QueueFullError) as info:
            server.ping("s")
        assert info.value.retry_after_s == 0.01
        assert server.stats()["rejected"] == 1
        # the rejected submit lost nothing that was accepted
        assert blocker.result(5) == "pong"
        assert all(h.result(5) == "pong" for h in handles)

    def test_submit_with_retry_rides_out_backpressure(self, make_server):
        server = make_server(workers=2, queue_limit=2, retry_after_s=0.01)
        client = WorkbenchClient(server)
        handles = [
            client.submit_with_retry("s", "ping", attempts=50,
                                     delay_s=0.01)
            for _ in range(20)
        ]
        assert all(h.result(10) == "pong" for h in handles)


class TestShutdown:
    def test_drain_finishes_queued_jobs(self, make_server):
        server = make_server(workers=1)
        handles = [server.ping("s", delay_s=0.02) for _ in range(5)]
        server.close(drain=True)
        assert all(h.result(1) == "pong" for h in handles)
        assert server.stats()["completed"] == len(handles)

    def test_no_drain_cancels_queued_jobs(self, make_server):
        server = make_server(workers=1)
        blocker = server.ping("s", delay_s=0.2)
        wait_running(blocker)
        queued = [server.ping("s") for _ in range(4)]
        server.close(drain=False)
        assert blocker.result(5) == "pong"  # in-flight always finishes
        for handle in queued:
            with pytest.raises(JobCancelledError):
                handle.result(1)

    def test_close_is_idempotent_and_final(self, make_server):
        server = make_server()
        server.ping("s").result(5)
        server.close()
        server.close()
        with pytest.raises(ServerClosedError):
            server.ping("s")

    def test_every_job_resolves_exactly_once(self, make_server):
        server = make_server(workers=1)
        blocker = server.ping("s", delay_s=0.1)
        queued = [server.ping("s") for _ in range(6)]
        queued[2].cancel()
        server.close(drain=True)
        for handle in [blocker] + queued:
            assert handle.future.done()
        stats = server.stats()
        assert (stats["submitted"]
                == stats["completed"] + stats["failed"]
                + stats["cancelled"])
        assert stats["pending"] == 0


class TestFailures:
    def test_failed_job_reraises_and_counts(self, make_server):
        server = make_server()
        handle = server.match("s", "ghost-source", "ghost-target")
        with pytest.raises(ServingError):
            handle.result(5)
        assert server.stats()["failed"] == 1

    def test_unknown_kind_rejected_at_submit(self, make_server):
        server = make_server()
        with pytest.raises(ServingError):
            server.submit("s", "transmogrify")


class TestSmokeLoad:
    """The CI smoke: 100 mixed requests, zero lost or duplicated."""

    def test_hundred_mixed_requests_conserved(self, make_server,
                                              load_pair):
        server = make_server(workers=4, queue_limit=256)
        sessions = [f"s{i}" for i in range(5)]
        for name in sessions:
            load_pair(server, name)
        handles = []
        for i in range(100):
            name = sessions[i % len(sessions)]
            kind = i % 4
            if kind == 0:
                handles.append(server.match(name, "orders", "notice"))
            elif kind == 1:
                handles.append(server.query(
                    name, "matrix_progress",
                    matrix_name="orders->notice"))
            elif kind == 2:
                handles.append(server.update_cell(
                    name, "orders->notice", "orders/customer",
                    "notice/shippingNotice/recipientName", 1.0,
                    user_defined=True))
            else:
                handles.append(server.ping(name))
        results = [h.result(120) for h in handles]
        assert len(results) == 100
        # exactly-once: every future resolved, and the counters obey the
        # conservation law with nothing pending
        stats = server.stats()
        assert stats["submitted"] == 100 + 2 * len(sessions)
        assert stats["failed"] == 0
        assert stats["cancelled"] == 0
        assert stats["pending"] == 0
        assert stats["completed"] == stats["submitted"]
