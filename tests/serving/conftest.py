"""Shared fixtures for the serving suite."""

import pytest

from repro.serving import ServingConfig, WorkbenchClient, WorkbenchServer


@pytest.fixture()
def make_server():
    """A server factory that closes everything it built at teardown."""
    created = []

    def factory(**overrides) -> WorkbenchServer:
        defaults = dict(workers=2, queue_limit=64)
        defaults.update(overrides)
        server = WorkbenchServer(ServingConfig(**defaults))
        created.append(server)
        return server

    yield factory
    for server in created:
        server.close(drain=False)


@pytest.fixture()
def load_pair(orders_ddl_text, notice_xsd_text):
    """Load the Figure-3 schema pair into a session; returns a client."""

    def loader(server: WorkbenchServer, session: str) -> WorkbenchClient:
        client = WorkbenchClient(server)
        client.load_schema(session, orders_ddl_text, "sql", "orders")
        client.load_schema(session, notice_xsd_text, "xsd", "notice")
        return client

    return loader
