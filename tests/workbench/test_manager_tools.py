"""Tests for the workbench manager and the four tool kinds (5.2)."""

import pytest

from repro.core import ToolError
from repro.mapper import ScalarTransform
from repro.loaders import SqlDdlLoader, XsdLoader
from repro.workbench import (
    CodeGenTool,
    LoaderTool,
    MapperTool,
    MappingCellEvent,
    MappingMatrixEvent,
    MappingVectorEvent,
    MatcherTool,
    SchemaGraphEvent,
    Tool,
    WorkbenchManager,
)

@pytest.fixture
def manager(orders_ddl_text, notice_xsd_text) -> WorkbenchManager:
    mgr = WorkbenchManager()
    mgr.register(LoaderTool(SqlDdlLoader()))
    mgr.register(LoaderTool(XsdLoader()))
    mgr.register(MatcherTool())
    mgr.register(MapperTool())
    mgr.register(CodeGenTool())
    mgr.orders_ddl = orders_ddl_text
    mgr.notice_xsd = notice_xsd_text
    return mgr


class TestRegistry:
    def test_tool_names(self, manager):
        assert manager.tool_names == ["codegen", "harmony", "load-sql", "load-xsd", "mapper"]

    def test_duplicate_name_rejected(self, manager):
        with pytest.raises(ToolError):
            manager.register(MatcherTool())

    def test_unknown_tool_rejected(self, manager):
        with pytest.raises(ToolError):
            manager.invoke("ghost")

    def test_initialize_called_on_register(self):
        class Probe(Tool):
            name = "probe"
            initialized_with = None

            def initialize(self, mgr):
                Probe.initialized_with = mgr

            def invoke(self, mgr, **kwargs):
                return "ok"

        mgr = WorkbenchManager()
        mgr.register(Probe())
        assert Probe.initialized_with is mgr
        assert mgr.invoke("probe") == "ok"


class TestLoaderTool:
    def test_loads_and_publishes(self, manager):
        events = []
        manager.events.subscribe(SchemaGraphEvent, events.append)
        graph = manager.invoke("load-sql", text=manager.orders_ddl, schema_name="orders")
        assert graph.name == "orders"
        assert manager.blackboard.has_schema("orders")
        assert len(events) == 1
        assert events[0].schema_name == "orders"

    def test_empty_text_rejected(self, manager):
        with pytest.raises(ToolError):
            manager.invoke("load-sql", text="")

    def test_failed_load_leaves_blackboard_clean(self, manager):
        from repro.core import LoaderError

        with pytest.raises(LoaderError):
            manager.invoke("load-sql", text="NOT SQL AT ALL;")
        assert manager.blackboard.schema_names() == []


class TestMatcherTool:
    def test_match_publishes_cell_events_after_commit(self, manager):
        manager.invoke("load-sql", text=manager.orders_ddl, schema_name="orders")
        manager.invoke("load-xsd", text=manager.notice_xsd, schema_name="notice")
        cell_events = []
        manager.events.subscribe(MappingCellEvent, cell_events.append)
        matrix = manager.invoke("harmony", source_schema="orders", target_schema="notice")
        assert manager.blackboard.has_matrix(matrix.name)
        assert len(cell_events) == len(list(matrix.cells()))

    def test_rerun_only_publishes_changes(self, manager):
        manager.invoke("load-sql", text=manager.orders_ddl, schema_name="orders")
        manager.invoke("load-xsd", text=manager.notice_xsd, schema_name="notice")
        manager.invoke("harmony", source_schema="orders", target_schema="notice")
        cell_events = []
        manager.events.subscribe(MappingCellEvent, cell_events.append)
        manager.invoke("harmony", source_schema="orders", target_schema="notice")
        # second run produces (nearly) identical scores -> few or no events
        assert len(cell_events) <= 3

    def test_user_decisions_survive_tool_rerun(self, manager):
        manager.invoke("load-sql", text=manager.orders_ddl, schema_name="orders")
        manager.invoke("load-xsd", text=manager.notice_xsd, schema_name="notice")
        matrix = manager.invoke("harmony", source_schema="orders", target_schema="notice")
        manager.blackboard.update_cell(
            matrix.name, "orders/customer", "notice/shippingNotice",
            1.0, user_defined=True)
        rerun = manager.invoke(
            "harmony", source_schema="orders", target_schema="notice",
            matrix_name=matrix.name)
        cell = rerun.cell("orders/customer", "notice/shippingNotice")
        assert cell.confidence == 1.0 and cell.is_user_defined


class TestCaseStudyPipeline:
    """Section 5.3: loader → Harmony → mapper → code generator."""

    def _run_pipeline(self, manager):
        manager.invoke("load-sql", text=manager.orders_ddl, schema_name="orders")
        manager.invoke("load-xsd", text=manager.notice_xsd, schema_name="notice")
        matrix = manager.invoke("harmony", source_schema="orders", target_schema="notice")
        for source, target in [
            ("orders/purchase_order", "notice/shippingNotice"),
            ("orders/purchase_order/po_id", "notice/shippingNotice/orderNumber"),
        ]:
            loaded = manager.blackboard.get_matrix(matrix.name)
            loaded.set_confidence(source, target, 1.0, user_defined=True)
            manager.blackboard.put_matrix(loaded)
        core = manager.invoke(
            "mapper", source_schema="orders", target_schema="notice",
            matrix_name=matrix.name,
            variables={"orders/purchase_order/po_id": "poId",
                       "orders/purchase_order/subtotal": "subtotal"},
            transforms={"notice/shippingNotice": {
                "notice/shippingNotice/total": ScalarTransform("$subtotal * 1.05"),
                "notice/shippingNotice/recipientName/firstName": ScalarTransform('"n/a"'),
                "notice/shippingNotice/recipientName/lastName": ScalarTransform('"n/a"'),
            }})
        assembled = manager.invoke("codegen", mapper=manager.tool("mapper"))
        return matrix, core, assembled

    def test_full_pipeline(self, manager):
        matrix, core, assembled = self._run_pipeline(manager)
        assert assembled.ok, assembled.verification.to_text()
        result = assembled.run({"orders/purchase_order": [
            {"po_id": 1, "subtotal": 100.0},
        ]})
        document = result.rows("notice/shippingNotice")[0]
        assert document["total"] == pytest.approx(105.0)

    def test_mapper_publishes_vector_events(self, manager):
        vector_events = []
        manager.events.subscribe(MappingVectorEvent, vector_events.append)
        self._run_pipeline(manager)
        assert len(vector_events) >= 3
        assert all(e.axis == "column" for e in vector_events)

    def test_codegen_publishes_matrix_event(self, manager):
        matrix_events = []
        manager.events.subscribe(MappingMatrixEvent, matrix_events.append)
        self._run_pipeline(manager)
        assert len(matrix_events) == 1
        assert "for $row" in matrix_events[0].code

    def test_matcher_hears_downstream_vector_events(self, manager):
        """Tools listen both directions (Section 5.2.2)."""
        self._run_pipeline(manager)
        harmony = manager.tool("harmony")
        assert len(harmony.received) >= 3

    def test_mapper_proposes_on_user_cells(self, manager):
        """A mapping tool listens for mapping-cell events 'to propose a
        candidate transformation'."""
        manager.invoke("load-sql", text=manager.orders_ddl, schema_name="orders")
        manager.invoke("load-xsd", text=manager.notice_xsd, schema_name="notice")
        matrix = manager.invoke("harmony", source_schema="orders", target_schema="notice")
        manager.events.publish(MappingCellEvent(
            source_tool="gui", matrix_name=matrix.name,
            source_id="orders/purchase_order/po_id",
            target_id="notice/shippingNotice/orderNumber",
            confidence=1.0, user_defined=True))
        mapper = manager.tool("mapper")
        assert any("po_id" in p for p in mapper.proposals)

    def test_codegen_requires_mapper_run(self, manager):
        with pytest.raises(ToolError):
            manager.invoke("codegen", mapper=manager.tool("mapper"))

    def test_final_mapping_lands_on_blackboard(self, manager):
        matrix, core, assembled = self._run_pipeline(manager)
        stored = manager.blackboard.get_matrix(core.matrix.name)
        assert stored.code == assembled.xquery


class TestQueries:
    def test_manager_query_service(self, manager, purchase_order_graph):
        from repro.rdf import Query, Variable
        from repro.rdf import vocabulary as V

        manager.blackboard.put_schema(purchase_order_graph)
        schema_var = Variable("s")
        rows = manager.query(Query().where(schema_var, V.RDF_TYPE, V.SCHEMA_CLASS))
        assert len(rows) == 1
