"""Tests for schema-evolution re-matching (§3.1, §5.1.3)."""

import pytest

from repro.core import ElementKind, MappingError, SchemaElement, SchemaGraph
from repro.core.matrix import MappingMatrix
from repro.workbench import (
    LoaderTool,
    MatcherTool,
    RematchReport,
    WorkbenchManager,
    apply_evolution,
    diff_schemas,
    evolve_and_rematch,
)
from repro.workbench.versioning import SchemaDiff


def _graph_v1() -> SchemaGraph:
    graph = SchemaGraph.create("s")
    graph.add_child("s", SchemaElement("s/T", "T", ElementKind.TABLE),
                    label="contains-element")
    for name in ("a", "b", "c"):
        graph.add_child("s/T", SchemaElement(
            f"s/T/{name}", name, ElementKind.ATTRIBUTE, datatype="string",
            documentation=f"Attribute {name}."))
    return graph


def _graph_v2() -> SchemaGraph:
    graph = _graph_v1()
    graph.remove_element("s/T/c")                       # removed
    graph.element("s/T/a").documentation = "Changed."   # redocumented
    graph.add_child("s/T", SchemaElement(
        "s/T/d", "d", ElementKind.ATTRIBUTE, datatype="string"))  # added
    return graph


def _matrix() -> MappingMatrix:
    matrix = MappingMatrix("m")
    for element_id in ("s/T", "s/T/a", "s/T/b", "s/T/c"):
        matrix.add_row(element_id, schema_name="s")
    for element_id in ("t/X", "t/X/p", "t/X/q"):
        matrix.add_column(element_id, schema_name="t")
    matrix.set_confidence("s/T/a", "t/X/p", 0.7)                       # machine
    matrix.set_confidence("s/T/b", "t/X/q", 1.0, user_defined=True)    # decided
    matrix.set_confidence("s/T/c", "t/X/p", 1.0, user_defined=True)    # decided, element dies
    matrix.mark_row_complete("s/T/a")
    return matrix


class TestApplyEvolution:
    def test_removed_elements_drop_axes_and_report_lost_decisions(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source", schema_name="s")
        assert "s/T/c" in report.axes_removed
        assert ("s/T/c", "t/X/p") in report.decisions_lost
        assert "s/T/c" not in matrix.row_ids

    def test_added_elements_gain_axes(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source", schema_name="s")
        assert "s/T/d" in report.axes_added
        assert "s/T/d" in matrix.row_ids

    def test_changed_elements_reset_machine_scores_only(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source", schema_name="s")
        # a's machine suggestion reset; b's user decision kept
        assert matrix.cell("s/T/a", "t/X/p").confidence == 0.0
        assert ("s/T/a", "t/X/p") in report.suggestions_reset
        assert matrix.cell("s/T/b", "t/X/q").confidence == 1.0

    def test_completion_reopened_for_changed_elements(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        apply_evolution(matrix, diff, side="source", schema_name="s")
        assert not matrix.row("s/T/a").is_complete

    def test_target_side_evolution(self):
        matrix = _matrix()
        diff = SchemaDiff(removed=["t/X/q"], added=["t/X/r"])
        report = apply_evolution(matrix, diff, side="target", schema_name="t")
        assert "t/X/q" not in matrix.column_ids
        assert "t/X/r" in matrix.column_ids
        assert ("s/T/b", "t/X/q") in report.decisions_lost

    def test_empty_diff_is_noop(self):
        matrix = _matrix()
        before = matrix.to_text()
        report = apply_evolution(matrix, SchemaDiff(), side="source")
        assert not report.needs_rematch
        assert matrix.to_text() == before

    def test_invalid_side(self):
        with pytest.raises(MappingError):
            apply_evolution(_matrix(), SchemaDiff(), side="up")

    def test_report_text(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source")
        text = report.to_text()
        assert "axes removed: 1" in text
        # "kept" counts decisions on *changed* elements; s/T/b's decision
        # survives but b itself did not change, so it is not listed
        assert "user decisions kept: 0" in text
        assert "decisions lost with removed elements: 1" in text


class TestEvolveAndRematch:
    def test_workbench_roundtrip(self, orders_ddl_text, notice_xsd_text):
        from repro.loaders import SqlDdlLoader, XsdLoader, load_sql

        manager = WorkbenchManager()
        manager.register(LoaderTool(SqlDdlLoader()))
        manager.register(LoaderTool(XsdLoader()))
        manager.register(MatcherTool())
        manager.invoke("load-sql", text=orders_ddl_text, schema_name="orders")
        manager.invoke("load-xsd", text=notice_xsd_text, schema_name="notice")
        matrix = manager.invoke("harmony", source_schema="orders",
                                target_schema="notice")
        # pin a decision that must survive evolution
        pinned = manager.blackboard.get_matrix(matrix.name)
        pinned.set_confidence("orders/customer/first_name",
                              "notice/shippingNotice/recipientName/firstName",
                              1.0, user_defined=True)
        manager.blackboard.put_matrix(pinned)

        old_graph = manager.blackboard.get_schema("orders")
        new_ddl = orders_ddl_text.replace(
            "status VARCHAR(10)",
            "status VARCHAR(10),\n    priority INTEGER  -- Order priority level.")
        new_graph = load_sql(new_ddl, "orders")
        report = evolve_and_rematch(
            manager, matrix.name, old_graph, new_graph,
            side="source", other_schema="notice")

        assert "orders/purchase_order/priority" in report.axes_added
        refreshed = manager.blackboard.get_matrix(matrix.name)
        assert "orders/purchase_order/priority" in refreshed.row_ids
        # the re-match scored the new attribute against the target
        new_cells = [
            c for c in refreshed.cells()
            if c.source_id == "orders/purchase_order/priority"
            and c.confidence != 0.0
        ]
        assert new_cells
        # the pinned decision survived
        kept = refreshed.cell("orders/customer/first_name",
                              "notice/shippingNotice/recipientName/firstName")
        assert kept.confidence == 1.0 and kept.is_user_defined
        # the new schema version is on the blackboard
        assert "priority" in [
            e.name for e in manager.blackboard.get_schema("orders")
        ]
