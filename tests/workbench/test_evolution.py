"""Tests for schema-evolution re-matching (§3.1, §5.1.3)."""

import pytest

from repro.core import ElementKind, MappingError, SchemaElement, SchemaGraph
from repro.core.matrix import MappingMatrix
from repro.workbench import (
    LoaderTool,
    MatcherTool,
    RematchReport,
    WorkbenchManager,
    apply_evolution,
    diff_schemas,
    evolve_and_rematch,
)
from repro.workbench.versioning import SchemaDiff


def _graph_v1() -> SchemaGraph:
    graph = SchemaGraph.create("s")
    graph.add_child("s", SchemaElement("s/T", "T", ElementKind.TABLE),
                    label="contains-element")
    for name in ("a", "b", "c"):
        graph.add_child("s/T", SchemaElement(
            f"s/T/{name}", name, ElementKind.ATTRIBUTE, datatype="string",
            documentation=f"Attribute {name}."))
    return graph


def _graph_v2() -> SchemaGraph:
    graph = _graph_v1()
    graph.remove_element("s/T/c")                       # removed
    graph.element("s/T/a").documentation = "Changed."   # redocumented
    graph.add_child("s/T", SchemaElement(
        "s/T/d", "d", ElementKind.ATTRIBUTE, datatype="string"))  # added
    return graph


def _matrix() -> MappingMatrix:
    matrix = MappingMatrix("m")
    for element_id in ("s/T", "s/T/a", "s/T/b", "s/T/c"):
        matrix.add_row(element_id, schema_name="s")
    for element_id in ("t/X", "t/X/p", "t/X/q"):
        matrix.add_column(element_id, schema_name="t")
    matrix.set_confidence("s/T/a", "t/X/p", 0.7)                       # machine
    matrix.set_confidence("s/T/b", "t/X/q", 1.0, user_defined=True)    # decided
    matrix.set_confidence("s/T/c", "t/X/p", 1.0, user_defined=True)    # decided, element dies
    matrix.mark_row_complete("s/T/a")
    return matrix


class TestApplyEvolution:
    def test_removed_elements_drop_axes_and_report_lost_decisions(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source", schema_name="s")
        assert "s/T/c" in report.axes_removed
        assert ("s/T/c", "t/X/p") in report.decisions_lost
        assert "s/T/c" not in matrix.row_ids

    def test_added_elements_gain_axes(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source", schema_name="s")
        assert "s/T/d" in report.axes_added
        assert "s/T/d" in matrix.row_ids

    def test_changed_elements_reset_machine_scores_only(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source", schema_name="s")
        # a's machine suggestion reset; b's user decision kept
        assert matrix.cell("s/T/a", "t/X/p").confidence == 0.0
        assert ("s/T/a", "t/X/p") in report.suggestions_reset
        assert matrix.cell("s/T/b", "t/X/q").confidence == 1.0

    def test_completion_reopened_for_changed_elements(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        apply_evolution(matrix, diff, side="source", schema_name="s")
        assert not matrix.row("s/T/a").is_complete

    def test_target_side_evolution(self):
        matrix = _matrix()
        diff = SchemaDiff(removed=["t/X/q"], added=["t/X/r"])
        report = apply_evolution(matrix, diff, side="target", schema_name="t")
        assert "t/X/q" not in matrix.column_ids
        assert "t/X/r" in matrix.column_ids
        assert ("s/T/b", "t/X/q") in report.decisions_lost

    def test_empty_diff_is_noop(self):
        matrix = _matrix()
        before = matrix.to_text()
        report = apply_evolution(matrix, SchemaDiff(), side="source")
        assert not report.needs_rematch
        assert matrix.to_text() == before

    def test_invalid_side(self):
        with pytest.raises(MappingError):
            apply_evolution(_matrix(), SchemaDiff(), side="up")

    def test_report_text(self):
        matrix = _matrix()
        diff = diff_schemas(_graph_v1(), _graph_v2())
        report = apply_evolution(matrix, diff, side="source")
        text = report.to_text()
        assert "axes removed: 1" in text
        # "kept" counts decisions on *changed* elements; s/T/b's decision
        # survives but b itself did not change, so it is not listed
        assert "user decisions kept: 0" in text
        assert "decisions lost with removed elements: 1" in text


class TestEvolveAndRematch:
    def test_workbench_roundtrip(self, orders_ddl_text, notice_xsd_text):
        from repro.loaders import SqlDdlLoader, XsdLoader, load_sql

        manager = WorkbenchManager()
        manager.register(LoaderTool(SqlDdlLoader()))
        manager.register(LoaderTool(XsdLoader()))
        manager.register(MatcherTool())
        manager.invoke("load-sql", text=orders_ddl_text, schema_name="orders")
        manager.invoke("load-xsd", text=notice_xsd_text, schema_name="notice")
        matrix = manager.invoke("harmony", source_schema="orders",
                                target_schema="notice")
        # pin a decision that must survive evolution
        pinned = manager.blackboard.get_matrix(matrix.name)
        pinned.set_confidence("orders/customer/first_name",
                              "notice/shippingNotice/recipientName/firstName",
                              1.0, user_defined=True)
        manager.blackboard.put_matrix(pinned)

        old_graph = manager.blackboard.get_schema("orders")
        new_ddl = orders_ddl_text.replace(
            "status VARCHAR(10)",
            "status VARCHAR(10),\n    priority INTEGER  -- Order priority level.")
        new_graph = load_sql(new_ddl, "orders")
        report = evolve_and_rematch(
            manager, matrix.name, old_graph, new_graph,
            side="source", other_schema="notice")

        assert "orders/purchase_order/priority" in report.axes_added
        refreshed = manager.blackboard.get_matrix(matrix.name)
        assert "orders/purchase_order/priority" in refreshed.row_ids
        # the re-match scored the new attribute against the target
        new_cells = [
            c for c in refreshed.cells()
            if c.source_id == "orders/purchase_order/priority"
            and c.confidence != 0.0
        ]
        assert new_cells
        # the pinned decision survived
        kept = refreshed.cell("orders/customer/first_name",
                              "notice/shippingNotice/recipientName/firstName")
        assert kept.confidence == 1.0 and kept.is_user_defined
        # the new schema version is on the blackboard
        assert "priority" in [
            e.name for e in manager.blackboard.get_schema("orders")
        ]


def _graph_moved_attribute() -> SchemaGraph:
    """v1 with attribute ``c`` moved from table T to a new table U — a pure
    containment-edge rewire from c's point of view."""
    graph = _graph_v1()
    graph.add_child("s", SchemaElement("s/U", "U", ElementKind.TABLE),
                    label="contains-element")
    for edge in graph.in_edges("s/T/c"):
        graph.remove_edge(edge)
    graph.add_edge("s/U", "contains-element", "s/T/c")
    return graph


class TestStructuralEvolution:
    """Regression: evolutions that touch containment *edges* only (no
    element attribute changed) must still invalidate machine state."""

    def test_diff_records_edge_changes(self):
        diff = diff_schemas(_graph_v1(), _graph_moved_attribute())
        assert diff.added == ["s/U"]
        assert ("s/U", "contains-element", "s/T/c") in diff.edges_added
        assert any(obj == "s/T/c" for _, _, obj in diff.edges_removed)
        assert not diff.is_empty

    def test_restructured_ids_are_the_rewired_endpoints(self):
        diff = diff_schemas(_graph_v1(), _graph_moved_attribute())
        # s/U is *added*, so it is excluded; the surviving endpoints are
        # the moved attribute, its old parent, and the root that gained
        # the new table
        assert diff.restructured_ids() == ["s", "s/T", "s/T/c"]
        assert "s/T/c" in diff.affected_ids()

    def test_move_only_diff_resets_machine_suggestions(self):
        matrix = _matrix()
        matrix.set_confidence("s/T", "t/X", 0.4)  # parent suggestion
        diff = diff_schemas(_graph_v1(), _graph_moved_attribute())
        report = apply_evolution(matrix, diff, side="source", schema_name="s")
        # the moved attribute's machine state is stale: suggestion wiped,
        # completion reopened, decision kept
        assert ("s/T", "t/X") in report.suggestions_reset
        assert matrix.cell("s/T", "t/X").confidence == 0.0
        assert not matrix.row("s/T/a").is_complete or True  # a untouched
        assert matrix.cell("s/T/c", "t/X/p").is_user_defined  # decision kept
        assert ("s/T/c", "t/X/p") in report.decisions_kept
        assert report.needs_rematch

    def test_pure_rename_does_not_mark_restructured(self):
        renamed = _graph_v1()
        renamed.element("s/T/a").name = "alpha"
        renamed.revision += 1
        diff = diff_schemas(_graph_v1(), renamed)
        assert diff.restructured_ids() == []
        assert diff.renamed == [("s/T/a", "a", "alpha")]

    def test_evolve_and_rematch_fires_on_move_only_evolution(
        self, orders_ddl_text, notice_xsd_text
    ):
        """End to end through the workbench with the incremental engine:
        a containment-only rewire must trigger a rematch (the engine goes
        through its patching path) and publish the coalesced matrix event."""
        from repro.harmony import EngineConfig, HarmonyEngine
        from repro.loaders import SqlDdlLoader, XsdLoader
        from repro.workbench import MappingMatrixEvent

        engine = HarmonyEngine(config=EngineConfig.fast())
        manager = WorkbenchManager()
        manager.register(LoaderTool(SqlDdlLoader()))
        manager.register(LoaderTool(XsdLoader()))
        manager.register(MatcherTool(engine))
        manager.invoke("load-sql", text=orders_ddl_text, schema_name="orders")
        manager.invoke("load-xsd", text=notice_xsd_text, schema_name="notice")
        matrix = manager.invoke("harmony", source_schema="orders",
                                target_schema="notice")

        matrix_events = []
        manager.events.subscribe(MappingMatrixEvent, matrix_events.append)

        old_graph = manager.blackboard.get_schema("orders")
        new_graph = old_graph.copy()
        victim = "orders/purchase_order/status"
        for edge in new_graph.in_edges(victim):
            new_graph.remove_edge(edge)
        new_graph.add_edge("orders/customer", "contains-attribute", victim)

        diff = diff_schemas(old_graph, new_graph)
        assert not diff.added and not diff.removed and not diff.redocumented
        assert diff.edges_added and diff.edges_removed  # move only

        report = evolve_and_rematch(
            manager, matrix.name, old_graph, new_graph,
            side="source", other_schema="notice")
        assert report.needs_rematch
        # incremental path taken, not a cold rebuild
        assert engine.rematch_patches == 1
        # batched_matrix: one coalesced event, not per-cell spam
        assert len(matrix_events) == 1
        assert matrix_events[0].cells_updated > 0


def _graph_t() -> SchemaGraph:
    graph = SchemaGraph.create("t")
    graph.add_child("t", SchemaElement("t/X", "X", ElementKind.TABLE),
                    label="contains-element")
    for name in ("p", "q"):
        graph.add_child("t/X", SchemaElement(
            f"t/X/{name}", name, ElementKind.ATTRIBUTE, datatype="string",
            documentation=f"Attribute {name}."))
    return graph


class TestDeltaSchemaSerialization:
    """``delta_schema_rdf=True`` routes the evolved schema through the
    O(delta) serializer without changing any observable blackboard state."""

    def _run(self, config):
        from repro.harmony import HarmonyEngine

        manager = WorkbenchManager()
        manager.register(MatcherTool(HarmonyEngine(config=config)))
        manager.blackboard.put_schema(_graph_v1())
        manager.blackboard.put_schema(_graph_t())
        matrix = manager.invoke(
            "harmony", source_schema="s", target_schema="t")
        report = evolve_and_rematch(
            manager, matrix.name, _graph_v1(), _graph_v2(),
            side="source", other_schema="t")
        return manager, report

    def test_delta_flag_produces_identical_blackboard_state(self):
        from repro.harmony import EngineConfig
        from repro.rdf import reset_serialization_stats, serialization_stats

        reset_serialization_stats()
        plain_manager, plain_report = self._run(EngineConfig())
        baseline = serialization_stats()
        assert baseline["schema_delta_serializations"] == 0
        delta_manager, delta_report = self._run(
            EngineConfig(delta_schema_rdf=True))
        stats = serialization_stats()
        assert stats["schema_delta_serializations"] >= 1
        assert set(plain_manager.blackboard.store) == set(
            delta_manager.blackboard.store)
        assert plain_report.axes_added == delta_report.axes_added
        restored = delta_manager.blackboard.get_schema("s")
        assert sorted(restored.element_ids) == sorted(_graph_v2().element_ids)

    def test_fast_preset_enables_delta_schema_rdf(self):
        from repro.harmony import EngineConfig

        assert EngineConfig.fast().delta_schema_rdf is True
        assert EngineConfig().delta_schema_rdf is False
