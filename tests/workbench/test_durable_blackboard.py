"""The durable blackboard end to end: sessions survive restarts.

``IntegrationBlackboard(durable=...)`` (and the ``WorkbenchManager``
pass-through) puts a :class:`~repro.rdf.durability.DurableStore` under
the usual typed facade.  These tests exercise the whole stack on the
real filesystem: put schemas and matrices, crash or close, reopen, and
find the session exactly as it was — including after checkpoint
compaction and around transaction rollbacks.
"""

import pytest

from repro.core.errors import StoreError, ToolError
from repro.rdf import TripleStore
from repro.workbench import IntegrationBlackboard, WorkbenchManager


class TestDurableBlackboard:
    def test_session_survives_restart(self, tmp_path, purchase_order_graph,
                                      shipping_notice_graph, figure3_matrix):
        directory = str(tmp_path / "ib")
        board = IntegrationBlackboard(durable=directory)
        board.put_schema(purchase_order_graph)
        board.put_schema(shipping_notice_graph)
        board.put_matrix(figure3_matrix)
        board.set_focus("po/purchaseOrder/shipTo")
        triples = board.store.snapshot()
        board.close()

        reopened = IntegrationBlackboard(durable=directory)
        assert reopened.schema_names() == ["po", "sn"]
        assert reopened.matrix_names() == [figure3_matrix.name]
        assert reopened.get_focus() == "po/purchaseOrder/shipTo"
        assert reopened.store.snapshot() == triples

        # the recovered session is live: typed round-trips still work
        schema = reopened.get_schema("po")
        assert schema.name == purchase_order_graph.name
        assert len(schema) == len(purchase_order_graph)
        matrix = reopened.get_matrix(figure3_matrix.name)
        assert set(matrix.row_ids) == set(figure3_matrix.row_ids)
        assert set(matrix.column_ids) == set(figure3_matrix.column_ids)
        assert {
            (c.source_id, c.target_id, c.confidence)
            for c in matrix.cells()
        } == {
            (c.source_id, c.target_id, c.confidence)
            for c in figure3_matrix.cells()
        }
        reopened.close()

    def test_unclosed_session_recovers_from_wal(self, tmp_path,
                                                purchase_order_graph):
        """No clean close() — recovery must come purely from the WAL."""
        directory = str(tmp_path / "ib")
        board = IntegrationBlackboard(durable=directory, fsync="always")
        board.put_schema(purchase_order_graph)
        board.set_focus("po/purchaseOrder")
        triples = board.store.snapshot()
        del board  # simulated crash: no flush, no checkpoint

        recovered = IntegrationBlackboard(durable=directory)
        assert recovered.store.snapshot() == triples
        assert recovered.get_focus() == "po/purchaseOrder"
        recovered.close()

    def test_checkpoint_compacts_wal(self, tmp_path, purchase_order_graph,
                                     shipping_notice_graph, figure3_matrix):
        directory = str(tmp_path / "ib")
        board = IntegrationBlackboard(durable=directory)
        board.put_schema(purchase_order_graph)
        board.put_schema(shipping_notice_graph)
        # churn: rewrite the matrix a few times so the WAL outgrows state
        for _ in range(5):
            board.put_matrix(figure3_matrix)
        wal_before = board.durability.wal_size
        board.checkpoint()
        assert board.durability.wal_size < wal_before
        state = board.store.snapshot()
        board.close()

        reopened = IntegrationBlackboard(durable=directory)
        assert reopened.store.snapshot() == state
        # recovery came from the snapshot, not a replayed log
        assert reopened.durability.stats["recovered_frames"] == 0
        reopened.close()

    def test_cell_updates_are_durable(self, tmp_path, figure3_matrix):
        directory = str(tmp_path / "ib")
        board = IntegrationBlackboard(durable=directory)
        board.put_matrix(figure3_matrix)
        board.update_cell(figure3_matrix.name, "po/purchaseOrder/shipTo",
                          "sn/shippingInfo", 0.93)
        board.close()

        reopened = IntegrationBlackboard(durable=directory)
        assert reopened.cell_confidence(
            figure3_matrix.name, "po/purchaseOrder/shipTo",
            "sn/shippingInfo") == (0.93, False)
        reopened.close()

    def test_store_and_durable_are_exclusive(self, tmp_path):
        with pytest.raises(StoreError):
            IntegrationBlackboard(store=TripleStore(),
                                  durable=str(tmp_path / "ib"))

    def test_checkpoint_requires_durable(self):
        board = IntegrationBlackboard()
        with pytest.raises(StoreError):
            board.checkpoint()
        board.close()  # no-op for the in-memory board

    def test_auto_checkpoint_passthrough(self, tmp_path,
                                         purchase_order_graph):
        directory = str(tmp_path / "ib")
        board = IntegrationBlackboard(durable=directory,
                                      auto_checkpoint_bytes=256)
        for _ in range(8):
            board.put_schema(purchase_order_graph)
        assert board.durability.stats["checkpoints"] >= 1
        board.close()


class TestDurableWorkbenchManager:
    def test_manager_durable_session(self, tmp_path, purchase_order_graph,
                                     figure3_matrix):
        directory = str(tmp_path / "wb")
        manager = WorkbenchManager(durable=directory)
        manager.blackboard.put_schema(purchase_order_graph)
        manager.blackboard.put_matrix(figure3_matrix)
        manager.close()

        reopened = WorkbenchManager(durable=directory)
        assert reopened.blackboard.schema_names() == ["po"]
        assert reopened.blackboard.has_matrix(figure3_matrix.name)
        reopened.close()

    def test_blackboard_and_durable_are_exclusive(self, tmp_path):
        with pytest.raises(ToolError):
            WorkbenchManager(blackboard=IntegrationBlackboard(),
                             durable=str(tmp_path / "wb"))

    def test_rolled_back_transaction_stays_rolled_back(
            self, tmp_path, purchase_order_graph, shipping_notice_graph):
        """A rollback's compensating mutations are WAL frames too: the
        recovered store must not resurrect the aborted work."""
        directory = str(tmp_path / "wb")
        manager = WorkbenchManager(durable=directory, fsync="always")
        manager.blackboard.put_schema(purchase_order_graph)
        committed = manager.blackboard.store.snapshot()

        txn = manager.transaction()
        manager.blackboard.put_schema(shipping_notice_graph)
        txn.rollback()
        assert manager.blackboard.store.snapshot() == committed
        del manager  # crash without close

        recovered = WorkbenchManager(durable=directory)
        assert recovered.blackboard.schema_names() == ["po"]
        assert recovered.blackboard.store.snapshot() == committed
        recovered.close()

    def test_close_rolls_back_mid_flight_transaction_and_releases_wal(
            self, tmp_path, purchase_order_graph, shipping_notice_graph):
        """A job cancelled mid-flight leaves its transaction window open
        with partial writes already in the WAL.  close() must roll the
        window back *before* detaching the durable layer, release the
        WAL file handle, and be idempotent — so a reopen finds the last
        committed state with no torn half-job writes."""
        directory = str(tmp_path / "ib")
        manager = WorkbenchManager(durable=directory)
        manager.blackboard.put_schema(purchase_order_graph)
        committed = manager.blackboard.store.snapshot()

        window = manager.transaction()  # never commits: job was cancelled
        manager.blackboard.put_schema(shipping_notice_graph)
        assert window.is_open

        manager.close()
        assert not window.is_open  # rolled back, not abandoned
        durability = manager.blackboard.durability
        assert durability is not None
        assert durability._closed  # WAL handle released
        assert durability._wal_file is None
        manager.close()  # double close is a no-op

        reopened = WorkbenchManager(durable=directory)
        assert reopened.blackboard.schema_names() == ["po"]
        assert reopened.blackboard.store.snapshot() == committed
        reopened.close()

    def test_committed_transaction_is_durable(self, tmp_path,
                                              purchase_order_graph):
        directory = str(tmp_path / "wb")
        manager = WorkbenchManager(durable=directory, fsync="always")
        txn = manager.transaction()
        manager.blackboard.put_schema(purchase_order_graph)
        txn.commit()
        del manager

        recovered = WorkbenchManager(durable=directory)
        assert recovered.blackboard.schema_names() == ["po"]
        recovered.close()
