"""Tests for the event service (5.2.2) and transactions (5.2)."""

import pytest

from repro.core import TransactionError
from repro.rdf import IRI, TripleStore, literal
from repro.workbench import (
    EventBus,
    MappingCellEvent,
    MappingMatrixEvent,
    MappingVectorEvent,
    SchemaGraphEvent,
    Transaction,
)

A = IRI("http://x/a")
P = IRI("http://x/p")


class TestEventBus:
    def test_typed_subscription(self):
        bus = EventBus()
        schema_events, cell_events = [], []
        bus.subscribe(SchemaGraphEvent, schema_events.append)
        bus.subscribe(MappingCellEvent, cell_events.append)
        bus.publish(SchemaGraphEvent(source_tool="loader", schema_name="s"))
        bus.publish(MappingCellEvent(source_tool="harmony"))
        assert len(schema_events) == 1
        assert len(cell_events) == 1

    def test_subscribe_all(self):
        bus = EventBus()
        everything = []
        bus.subscribe_all(everything.append)
        bus.publish(SchemaGraphEvent(source_tool="t"))
        bus.publish(MappingVectorEvent(source_tool="t"))
        bus.publish(MappingMatrixEvent(source_tool="t"))
        assert len(everything) == 3

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(SchemaGraphEvent, seen.append)
        unsubscribe()
        bus.publish(SchemaGraphEvent(source_tool="t"))
        assert seen == []

    def test_deferral_queues_until_release(self):
        """'no events are generated until the mapping matrix has been
        updated' — events inside a transaction arrive only at commit."""
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.defer()
        bus.publish(SchemaGraphEvent(source_tool="t"))
        assert seen == [] and bus.pending == 1
        bus.release()
        assert len(seen) == 1 and bus.pending == 0

    def test_discard_on_abort(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.defer()
        bus.publish(SchemaGraphEvent(source_tool="t"))
        bus.release(discard=True)
        assert seen == []

    def test_nested_deferral(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.defer()
        bus.defer()
        bus.publish(SchemaGraphEvent(source_tool="t"))
        bus.release()
        assert seen == []  # still inside the outer window
        bus.release()
        assert len(seen) == 1

    def test_release_without_defer_is_noop(self):
        assert EventBus().release() == 0

    def test_delivered_count(self):
        bus = EventBus()
        bus.publish(SchemaGraphEvent(source_tool="t"))
        bus.publish(SchemaGraphEvent(source_tool="t"))
        assert bus.delivered_count == 2


class TestTransactions:
    def test_commit_keeps_changes(self):
        store = TripleStore()
        txn = Transaction(store)
        store.add(A, P, literal("v"))
        changed = txn.commit()
        assert changed == 1
        assert len(store) == 1

    def test_rollback_undoes_adds_and_removes(self):
        store = TripleStore()
        store.add(A, P, literal("keep"))
        txn = Transaction(store)
        store.add(A, P, literal("new"))
        store.remove(A, P, literal("keep"))
        txn.rollback()
        assert store.objects(A, P) == [literal("keep")]

    def test_rollback_restores_exact_state(self):
        store = TripleStore()
        for i in range(5):
            store.add(A, P, literal(i))
        before = store.snapshot()
        txn = Transaction(store)
        store.remove_matching(subject=A)
        store.add(A, P, literal("replacement"))
        txn.rollback()
        assert store.snapshot() == before

    def test_double_finish_rejected(self):
        store = TripleStore()
        txn = Transaction(store)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_context_manager_commits_on_success(self):
        store = TripleStore()
        with Transaction(store):
            store.add(A, P, literal("v"))
        assert len(store) == 1

    def test_context_manager_rolls_back_on_error(self):
        store = TripleStore()
        with pytest.raises(RuntimeError):
            with Transaction(store):
                store.add(A, P, literal("v"))
                raise RuntimeError("boom")
        assert len(store) == 0

    def test_events_deferred_until_commit(self):
        store = TripleStore()
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        txn = Transaction(store, bus=bus)
        bus.publish(SchemaGraphEvent(source_tool="t"))
        assert seen == []
        txn.commit()
        assert len(seen) == 1

    def test_events_discarded_on_rollback(self):
        store = TripleStore()
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        txn = Transaction(store, bus=bus)
        bus.publish(SchemaGraphEvent(source_tool="t"))
        txn.rollback()
        assert seen == []

    def test_changes_outside_window_not_undone(self):
        store = TripleStore()
        txn = Transaction(store)
        store.add(A, P, literal("inside"))
        txn.commit()
        store.add(A, P, literal("after"))
        # a second transaction rolls back only its own changes
        txn2 = Transaction(store)
        store.add(A, P, literal("second"))
        txn2.rollback()
        assert literal("inside") in store.objects(A, P)
        assert literal("after") in store.objects(A, P)
        assert literal("second") not in store.objects(A, P)
