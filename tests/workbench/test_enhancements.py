"""Tests for the Section 5.1.3 enhancements: queries, provenance,
versioning, and the mapping library."""

import pytest

from repro.core import ElementKind, MappingMatrix, SchemaElement, SchemaGraph
from repro.workbench import (
    IntegrationBlackboard,
    MappingLibrary,
    ProvenanceLog,
    SchemaVersionStore,
    diff_schemas,
    elements_of_kind,
    matrix_progress,
    strong_cells,
    undocumented_elements,
    user_decided_cells,
)


class TestCannedQueries:
    def test_strong_cells(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        rows = strong_cells(blackboard.store, figure3_matrix.name, threshold=0.5)
        assert len(rows) == 4  # the 0.8 suggestion plus three accepted +1 cells
        assert rows[0][1] == 1.0  # sorted strongest first

    def test_user_decided_cells(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        decided = user_decided_cells(blackboard.store, figure3_matrix.name)
        assert len(decided) == 9

    def test_undocumented_elements(self, orders_graph):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(orders_graph)
        names = undocumented_elements(blackboard.store, "orders")
        assert "status" in names            # no comment in the DDL
        assert "first_name" not in names    # documented

    def test_elements_of_kind(self, orders_graph):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(orders_graph)
        assert elements_of_kind(blackboard.store, "orders", "table") == [
            "customer", "purchase_order",
        ]

    def test_matrix_progress_query(self, figure3_matrix):
        figure3_matrix.mark_row_complete("po/purchaseOrder/shipTo/subtotal")
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        progress = matrix_progress(blackboard.store, figure3_matrix.name)
        assert progress == pytest.approx(figure3_matrix.progress())


class TestProvenance:
    def test_matrix_history_ordered(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        log = ProvenanceLog(blackboard.store)
        log.record_matrix(figure3_matrix.name, "harmony")
        log.record_matrix(figure3_matrix.name, "mapper")
        log.record_matrix(figure3_matrix.name, "codegen")
        history = log.history(figure3_matrix.name)
        assert [tool for tool, _ in history] == ["harmony", "mapper", "codegen"]
        ticks = [tick for _, tick in history]
        assert ticks == sorted(ticks)

    def test_cell_history(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        log = ProvenanceLog(blackboard.store)
        log.record_cell(figure3_matrix.name, "po/purchaseOrder/shipTo",
                        "sn/shippingInfo", "harmony")
        log.record_cell(figure3_matrix.name, "po/purchaseOrder/shipTo",
                        "sn/shippingInfo", "engineer")
        history = log.cell_history(
            figure3_matrix.name, "po/purchaseOrder/shipTo", "sn/shippingInfo")
        assert [tool for tool, _ in history] == ["harmony", "engineer"]

    def test_derivation(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        log = ProvenanceLog(blackboard.store)
        log.record_matrix(figure3_matrix.name, "library", derived_from="old-mapping")
        assert log.derived_from(figure3_matrix.name) == ["old-mapping"]

    def test_provenance_survives_serialization(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        ProvenanceLog(blackboard.store).record_matrix(figure3_matrix.name, "harmony")
        restored = IntegrationBlackboard.loads(blackboard.dumps())
        history = ProvenanceLog(restored.store).history(figure3_matrix.name)
        assert [tool for tool, _ in history] == ["harmony"]


class TestVersioning:
    def _v1(self) -> SchemaGraph:
        graph = SchemaGraph.create("s")
        graph.add_child("s", SchemaElement("s/T", "T", ElementKind.TABLE),
                        label="contains-element")
        graph.add_child("s/T", SchemaElement("s/T/a", "a", ElementKind.ATTRIBUTE,
                                             datatype="string", documentation="Doc A."))
        graph.add_child("s/T", SchemaElement("s/T/b", "b", ElementKind.ATTRIBUTE))
        return graph

    def _v2(self) -> SchemaGraph:
        graph = self._v1()
        graph.remove_element("s/T/b")
        graph.element("s/T/a").datatype = "integer"
        graph.element("s/T/a").documentation = "Doc A, revised."
        graph.add_child("s/T", SchemaElement("s/T/c", "c", ElementKind.ATTRIBUTE))
        return graph

    def test_diff(self):
        diff = diff_schemas(self._v1(), self._v2())
        assert diff.added == ["s/T/c"]
        assert diff.removed == ["s/T/b"]
        assert diff.retyped == [("s/T/a", "string", "integer")]
        assert diff.redocumented == ["s/T/a"]
        assert "s/T/a" in diff.affected_ids()

    def test_diff_empty_for_identical(self):
        diff = diff_schemas(self._v1(), self._v1())
        assert diff.is_empty

    def test_rename_detected(self):
        v1 = self._v1()
        v2 = self._v1()
        v2.element("s/T/a").name = "alpha"
        diff = diff_schemas(v1, v2)
        assert diff.renamed == [("s/T/a", "a", "alpha")]

    def test_version_store_chain(self):
        blackboard = IntegrationBlackboard()
        store = SchemaVersionStore(blackboard)
        assert store.put_version(self._v1()) == 1
        assert store.put_version(self._v2()) == 2
        assert store.versions("s") == [1, 2]
        assert store.latest_version("s") == 2
        v1 = store.get_version("s", 1)
        assert "s/T/b" in v1
        latest = store.get_version("s")
        assert "s/T/c" in latest and latest.name == "s"

    def test_version_diff(self):
        blackboard = IntegrationBlackboard()
        store = SchemaVersionStore(blackboard)
        store.put_version(self._v1())
        store.put_version(self._v2())
        diff = store.diff("s", 1, 2)
        assert diff.added == ["s/T/c"]

    def test_missing_version_rejected(self):
        store = SchemaVersionStore(IntegrationBlackboard())
        with pytest.raises(KeyError):
            store.get_version("ghost")


class TestMappingLibrary:
    def _finished_matrix(self, name="m1") -> MappingMatrix:
        matrix = MappingMatrix(name)
        matrix.add_row("po/a")
        matrix.add_row("po/b")
        matrix.add_column("sn/x")
        matrix.add_column("sn/y")
        matrix.set_confidence("po/a", "sn/x", 1.0, user_defined=True)
        matrix.set_confidence("po/b", "sn/y", 1.0, user_defined=True)
        return matrix

    def test_add_and_find(self):
        library = MappingLibrary(IntegrationBlackboard())
        library.add(self._finished_matrix(), "po", "sn")
        assert len(library.entries()) == 1
        assert library.find(source_schema="po")[0].target_schema == "sn"
        assert library.find(source_schema="zzz") == []

    def test_warm_start_suggestions(self):
        """Past accepted links become high-confidence machine suggestions."""
        library = MappingLibrary(IntegrationBlackboard())
        library.add(self._finished_matrix(), "po", "sn")
        fresh = MappingMatrix("fresh")
        fresh.add_row("po/a")
        fresh.add_row("po/b")
        fresh.add_column("sn/x")
        fresh.add_column("sn/y")
        written = library.suggest_for("po", "sn", fresh)
        assert written == 2
        cell = fresh.cell("po/a", "sn/x")
        assert cell.confidence == pytest.approx(0.9)
        assert not cell.is_user_defined

    def test_warm_start_respects_decisions(self):
        library = MappingLibrary(IntegrationBlackboard())
        library.add(self._finished_matrix(), "po", "sn")
        fresh = MappingMatrix("fresh")
        fresh.add_row("po/a")
        fresh.add_column("sn/x")
        fresh.set_confidence("po/a", "sn/x", -1.0, user_defined=True)
        assert library.suggest_for("po", "sn", fresh) == 0
        assert fresh.cell("po/a", "sn/x").confidence == -1.0

    def test_composition(self):
        """A→B and B→C in the library compose to a candidate A→C."""
        blackboard = IntegrationBlackboard()
        library = MappingLibrary(blackboard)
        ab = MappingMatrix("ab")
        ab.add_row("a/1")
        ab.add_column("b/1")
        ab.set_confidence("a/1", "b/1", 0.9)
        bc = MappingMatrix("bc")
        bc.add_row("b/1")
        bc.add_column("c/1")
        bc.set_confidence("b/1", "c/1", 0.8)
        library.add(ab, "a", "b")
        library.add(bc, "b", "c")
        composed = library.compose("ab", "bc", name="ac")
        cell = composed.cell("a/1", "c/1")
        assert cell.confidence == pytest.approx(0.72)

    def test_composition_drops_nonpositive_links(self):
        blackboard = IntegrationBlackboard()
        library = MappingLibrary(blackboard)
        ab = MappingMatrix("ab")
        ab.add_row("a/1")
        ab.add_column("b/1")
        ab.set_confidence("a/1", "b/1", -0.5)
        bc = MappingMatrix("bc")
        bc.add_row("b/1")
        bc.add_column("c/1")
        bc.set_confidence("b/1", "c/1", 0.8)
        library.add(ab, "a", "b")
        library.add(bc, "b", "c")
        composed = library.compose("ab", "bc")
        assert list(composed.cells()) == []
