"""Tests for the integration blackboard (Section 5.1)."""

import pytest

from repro.core import MappingMatrix, StoreError
from repro.workbench import IntegrationBlackboard


class TestSchemas:
    def test_put_get_roundtrip(self, purchase_order_graph):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(purchase_order_graph)
        restored = blackboard.get_schema("po")
        assert sorted(restored.element_ids) == sorted(purchase_order_graph.element_ids)

    def test_put_replaces(self, purchase_order_graph):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(purchase_order_graph)
        modified = purchase_order_graph.copy()
        modified.element("po/purchaseOrder").documentation = "Updated."
        blackboard.put_schema(modified)
        assert blackboard.get_schema("po").element("po/purchaseOrder").documentation == "Updated."
        assert blackboard.schema_names() == ["po"]

    def test_remove_schema_clears_triples(self, purchase_order_graph):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(purchase_order_graph)
        triples_before = len(blackboard.store)
        removed = blackboard.remove_schema("po")
        assert removed == triples_before
        assert len(blackboard.store) == 0
        assert not blackboard.has_schema("po")

    def test_schema_names_sorted(self, purchase_order_graph, shipping_notice_graph):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(shipping_notice_graph)
        blackboard.put_schema(purchase_order_graph)
        assert blackboard.schema_names() == ["po", "sn"]


class TestMatrices:
    def test_put_get_roundtrip(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        restored = blackboard.get_matrix(figure3_matrix.name)
        assert len(list(restored.cells())) == len(list(figure3_matrix.cells()))

    def test_update_cell_direct(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        blackboard.update_cell(
            figure3_matrix.name, "po/purchaseOrder/shipTo", "sn/shippingInfo",
            1.0, user_defined=True)
        confidence, user = blackboard.cell_confidence(
            figure3_matrix.name, "po/purchaseOrder/shipTo", "sn/shippingInfo")
        assert confidence == 1.0 and user is True

    def test_cell_confidence_missing(self):
        blackboard = IntegrationBlackboard()
        assert blackboard.cell_confidence("m", "a", "b") is None

    def test_axis_annotations(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        blackboard.set_row_variable(figure3_matrix.name, "po/purchaseOrder/shipTo", "$s2")
        blackboard.set_column_code(figure3_matrix.name, "sn/shippingInfo/total", "$x * 2")
        blackboard.set_matrix_code(figure3_matrix.name, "full mapping")
        restored = blackboard.get_matrix(figure3_matrix.name)
        assert restored.row("po/purchaseOrder/shipTo").variable_name == "$s2"
        assert restored.column("sn/shippingInfo/total").code == "$x * 2"
        assert restored.code == "full mapping"

    def test_remove_matrix(self, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_matrix(figure3_matrix)
        blackboard.remove_matrix(figure3_matrix.name)
        assert blackboard.matrix_names() == []
        assert len(blackboard.store) == 0


class TestFocus:
    def test_focus_shared(self):
        """Section 5.1.3: focus context shared across tools."""
        blackboard = IntegrationBlackboard()
        assert blackboard.get_focus() is None
        blackboard.set_focus("po/purchaseOrder/shipTo")
        assert blackboard.get_focus() == "po/purchaseOrder/shipTo"
        blackboard.set_focus("other")
        assert blackboard.get_focus() == "other"
        blackboard.set_focus(None)
        assert blackboard.get_focus() is None


class TestDurability:
    def test_dumps_loads_roundtrip(self, purchase_order_graph, figure3_matrix):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(purchase_order_graph)
        blackboard.put_matrix(figure3_matrix)
        blackboard.set_focus("po/purchaseOrder")
        restored = IntegrationBlackboard.loads(blackboard.dumps())
        assert restored.schema_names() == ["po"]
        assert restored.matrix_names() == [figure3_matrix.name]
        assert restored.get_focus() == "po/purchaseOrder"

    def test_save_load_file(self, tmp_path, purchase_order_graph):
        blackboard = IntegrationBlackboard()
        blackboard.put_schema(purchase_order_graph)
        path = str(tmp_path / "ib.nt")
        blackboard.save(path)
        restored = IntegrationBlackboard.load(path)
        assert restored.schema_names() == ["po"]
        # shared across workbench instances: both see the same contents
        assert len(restored.store) == len(blackboard.store)
