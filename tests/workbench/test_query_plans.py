"""Golden tests for ``explain()`` over the workbench's canned queries.

The manager's query service now reports the executed cost-based plan for
any ad hoc query (Section 5.2).  These tests freeze the rendered plans
for the four canned queries against the Figure 2/3 blackboard — join
order, estimated vs. actual cardinalities, bind-join fusions and memo
statistics — so a planner regression shows up as a readable text diff.
"""

import pytest

from repro.rdf import Variable
from repro.workbench import (
    IntegrationBlackboard,
    WorkbenchManager,
    elements_of_kind,
    elements_of_kind_query,
    query_plan,
    strong_cells,
    strong_cells_query,
    undocumented_elements,
    undocumented_elements_query,
    user_decided_cells,
    user_decided_cells_query,
)


@pytest.fixture
def blackboard(purchase_order_graph, shipping_notice_graph, figure3_matrix):
    ib = IntegrationBlackboard()
    ib.put_schema(purchase_order_graph)
    ib.put_schema(shipping_notice_graph)
    ib.put_matrix(figure3_matrix)
    return ib


def rendered(ib, query):
    plan = query_plan(ib.store, query)
    # the store revision counts every insertion since creation; pin the
    # plan text without pinning that tally
    return plan.format().replace(f"store revision {ib.store.revision}",
                                 "store revision N")


GOLDEN_STRONG = """\
query plan (store revision N, 2 steps)
  1. (<http://mitre.org/iw/matrix/po-%3Esn> <http://mitre.org/integration-workbench#hasCell> ?cell)  est=12 actual=12 memo_hits=0
  2. (?cell <http://mitre.org/integration-workbench#confidence-score> ?confidence)  est=1 actual=12 memo_hits=0
  solutions=12 memo_entries=13 memo_hits=0"""

GOLDEN_USER = """\
query plan (store revision N, 1 steps)
  1. (?cell <http://mitre.org/integration-workbench#is-user-defined> "true"^^<http://www.w3.org/2001/XMLSchema#boolean>)  est=9 actual=9 memo_hits=0
     ∩ (<http://mitre.org/iw/matrix/po-%3Esn> <http://mitre.org/integration-workbench#hasCell> ?cell)  (bind-join)
  solutions=9 memo_entries=0 memo_hits=0"""

GOLDEN_UNDOCUMENTED = """\
query plan (store revision N, 2 steps)
  1. (<http://mitre.org/iw/schema/po> <http://mitre.org/integration-workbench#hasElement> ?element)  est=6 actual=6 memo_hits=0
  2. (?element <http://mitre.org/integration-workbench#name> ?name)  est=1 actual=6 memo_hits=0
  solutions=6 memo_entries=7 memo_hits=0"""

GOLDEN_KIND = """\
query plan (store revision N, 2 steps)
  1. (?element <http://mitre.org/integration-workbench#kind> "attribute")  est=5 actual=3 memo_hits=0
     ∩ (<http://mitre.org/iw/schema/po> <http://mitre.org/integration-workbench#hasElement> ?element)  (bind-join)
  2. (?element <http://mitre.org/integration-workbench#name> ?name)  est=1 actual=3 memo_hits=0
  solutions=3 memo_entries=3 memo_hits=0"""


class TestGoldenPlans:
    def test_strong_cells_plan(self, blackboard, figure3_matrix):
        query = strong_cells_query(figure3_matrix.name)
        assert rendered(blackboard, query) == GOLDEN_STRONG

    def test_user_decided_cells_plan_fuses(self, blackboard, figure3_matrix):
        """Both patterns share the single unbound ?cell — one bind-join."""
        query = user_decided_cells_query(figure3_matrix.name)
        assert rendered(blackboard, query) == GOLDEN_USER

    def test_undocumented_elements_plan(self, blackboard):
        query = undocumented_elements_query("po")
        assert rendered(blackboard, query) == GOLDEN_UNDOCUMENTED

    def test_elements_of_kind_plan_fuses_kind_filter(self, blackboard):
        query = elements_of_kind_query("po", "attribute")
        assert rendered(blackboard, query) == GOLDEN_KIND


class TestCannedQueriesStillAnswer:
    """The wrapper results under the planner, cross-checked by hand."""

    def test_strong_cells(self, blackboard, figure3_matrix):
        rows = strong_cells(blackboard.store, figure3_matrix.name, threshold=0.5)
        assert [round(conf, 3) for _, conf in rows] == [1.0, 1.0, 1.0, 0.8]

    def test_user_decided_cells(self, blackboard, figure3_matrix):
        cells = user_decided_cells(blackboard.store, figure3_matrix.name)
        assert len(cells) == 9

    def test_undocumented_elements(self, blackboard):
        # only the schema root itself lacks documentation in Figure 2
        assert undocumented_elements(blackboard.store, "po") == ["po"]

    def test_elements_of_kind(self, blackboard):
        names = elements_of_kind(blackboard.store, "po", "attribute")
        assert names == ["firstName", "lastName", "subtotal"]


class TestManagerExplain:
    def test_manager_surfaces_plans(self, blackboard, figure3_matrix):
        manager = WorkbenchManager(blackboard)
        plan = manager.explain(strong_cells_query(figure3_matrix.name))
        assert plan.solutions == 12
        assert len(plan.order) == 2
        assert plan.store_revision == blackboard.store.revision
        # explain and query agree on the answer the plan produced
        assert len(manager.query(strong_cells_query(figure3_matrix.name))) == 4

    def test_plan_reflects_store_growth(self, blackboard, figure3_matrix):
        manager = WorkbenchManager(blackboard)
        before = manager.explain(user_decided_cells_query(figure3_matrix.name))
        blackboard.update_cell(
            figure3_matrix.name, "po/purchaseOrder/shipTo", "sn/shippingInfo",
            confidence=1.0, user_defined=True,
        )
        after = manager.explain(user_decided_cells_query(figure3_matrix.name))
        assert after.solutions == before.solutions + 1
        assert after.store_revision > before.store_revision
