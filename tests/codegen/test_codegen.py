"""Tests for code generation: executable, XQuery, SQL, assembler."""

import pytest

from repro.core import TransformError
from repro.codegen import (
    assemble,
    execute,
    expression_to_sql,
    expression_to_xquery,
    generate_sql,
    generate_xquery,
    matrix_code_listing,
)
from repro.mapper import (
    AttributeMapping,
    DirectEntity,
    EntityMapping,
    JoinEntity,
    KeyIdentity,
    MappingSpec,
    MappingTool,
    ScalarTransform,
    SkolemFunction,
    UnionEntity,
)


def _simple_spec() -> MappingSpec:
    spec = MappingSpec("m", "orders", "notice")
    entity = EntityMapping(
        target_entity="notice/shippingNotice",
        entity_transform=DirectEntity("orders/purchase_order"),
        identity=KeyIdentity(["po_id"]),
    )
    entity.attributes.append(AttributeMapping(
        "notice/shippingNotice/orderNumber", ScalarTransform("$po_id")))
    entity.attributes.append(AttributeMapping(
        "notice/shippingNotice/total", ScalarTransform("$subtotal * 1.05")))
    spec.entities.append(entity)
    return spec


ROWS = [
    {"po_id": 1, "subtotal": 100.0},
    {"po_id": 2, "subtotal": 40.0},
]


class TestExecutable:
    def test_flat_execution(self):
        result = execute(_simple_spec(), {"orders/purchase_order": ROWS})
        rows = result.rows("notice/shippingNotice")
        assert rows[0] == {"orderNumber": 1, "total": 105.0, "_id": 1}
        assert result.total_rows == 2

    def test_nested_execution_follows_target_shape(self, notice_graph):
        spec = _simple_spec()
        spec.entities[0].attributes.append(AttributeMapping(
            "notice/shippingNotice/recipientName/firstName", ScalarTransform('"Peter"')))
        result = execute(spec, {"orders/purchase_order": ROWS}, target=notice_graph)
        document = result.rows("notice/shippingNotice")[0]
        assert document["recipientName"]["firstName"] == "Peter"
        assert document["orderNumber"] == 1

    def test_variable_bindings_resolve(self):
        spec = _simple_spec()
        spec.variable_bindings["num"] = "po_id"
        spec.entities[0].attributes[0] = AttributeMapping(
            "notice/shippingNotice/orderNumber", ScalarTransform("$num"))
        result = execute(spec, {"orders/purchase_order": ROWS})
        assert result.rows("notice/shippingNotice")[0]["orderNumber"] == 1

    def test_duplicate_identity_strict_raises(self):
        spec = _simple_spec()
        rows = [{"po_id": 1, "subtotal": 1.0}, {"po_id": 1, "subtotal": 2.0}]
        with pytest.raises(TransformError):
            execute(spec, {"orders/purchase_order": rows})

    def test_skip_bad_rows_policy(self):
        """Task 12's exceptional-condition policy: log and continue."""
        spec = _simple_spec()
        rows = [
            {"po_id": 1, "subtotal": 100.0},
            {"po_id": 2, "subtotal": None},     # arithmetic on null fails
            {"po_id": 3, "subtotal": 10.0},
        ]
        result = execute(spec, {"orders/purchase_order": rows}, skip_bad_rows=True)
        assert len(result.rows("notice/shippingNotice")) == 2
        assert len(result.errors) == 1

    def test_skip_bad_rows_deduplicates_ids(self):
        spec = _simple_spec()
        rows = [{"po_id": 1, "subtotal": 1.0}, {"po_id": 1, "subtotal": 2.0}]
        result = execute(spec, {"orders/purchase_order": rows}, skip_bad_rows=True)
        assert len(result.rows("notice/shippingNotice")) == 1
        assert any("duplicate" in e for e in result.errors)

    def test_lookup_tables_available(self):
        spec = _simple_spec()
        spec.lookup_tables["status"] = {"OPEN": "O"}
        spec.entities[0].attributes.append(AttributeMapping(
            "notice/shippingNotice/status", ScalarTransform('lookup_status("OPEN")')))
        result = execute(spec, {"orders/purchase_order": ROWS})
        assert result.rows("notice/shippingNotice")[0]["status"] == "O"


class TestXQuery:
    def test_expression_translation(self):
        assert expression_to_xquery('concat($a, ", ", $b)') == 'concat($a, ", ", $b)'
        assert expression_to_xquery("if($x > 1, 1, 2)") == "if ($x > 1) then 1 else 2"
        assert expression_to_xquery("$row.total") == "$row/total"
        assert "map:get" in expression_to_xquery("lookup_status($s)")
        assert expression_to_xquery("$x == 1") == "$x = 1"

    def test_generate_flwor(self, notice_graph):
        spec = _simple_spec()
        text = generate_xquery(spec, notice_graph)
        assert "for $row in $source/purchase_order" in text
        assert "<shippingNotice>" in text
        assert "<orderNumber>{ $po_id }</orderNumber>" in text
        assert "let $po_id := $row/po_id" in text

    def test_variable_bindings_in_lets(self, notice_graph):
        spec = _simple_spec()
        spec.variable_bindings["po_id"] = "purchase_order_number"
        text = generate_xquery(spec, notice_graph)
        assert "let $po_id := $row/purchase_order_number" in text

    def test_lookup_tables_declared(self, notice_graph):
        spec = _simple_spec()
        spec.lookup_tables["status"] = {"OPEN": "O"}
        text = generate_xquery(spec, notice_graph)
        assert 'let $status-table := map { "OPEN" : "O" }' in text

    def test_nested_target_elements(self, notice_graph):
        spec = _simple_spec()
        spec.entities[0].attributes.append(AttributeMapping(
            "notice/shippingNotice/recipientName/firstName", ScalarTransform("$first")))
        text = generate_xquery(spec, notice_graph)
        assert "<recipientName>" in text
        assert "<firstName>{ $first }</firstName>" in text


class TestSql:
    def test_expression_translation(self):
        assert expression_to_sql('concat($a, "-", $b)') == "(a || '-' || b)"
        assert expression_to_sql("if($x > 1, 1, 0)") == "CASE WHEN (x > 1) THEN 1 ELSE 0 END"
        assert expression_to_sql("$x != 2") == "(x <> 2)"
        assert expression_to_sql('upper($n)') == "UPPER(n)"
        assert "SELECT target_code FROM status_xref" in expression_to_sql("lookup_status($s)")

    def test_renames_applied(self):
        sql = expression_to_sql("$num + 1", renames={"num": "po_id"})
        assert sql == "(po_id + 1)"

    def test_insert_select(self):
        sql = generate_sql(_simple_spec())
        assert "INSERT INTO shippingNotice (id, orderNumber, total)" in sql
        assert "FROM purchase_order" in sql

    def test_join_from_clause(self):
        spec = _simple_spec()
        spec.entities[0].entity_transform = JoinEntity(
            "orders/purchase_order", "orders/customer", on=[("cust_id", "cust_id")])
        sql = generate_sql(spec)
        assert "JOIN customer ON purchase_order.cust_id = customer.cust_id" in sql

    def test_union_emits_one_insert_per_branch(self):
        spec = _simple_spec()
        spec.entities[0].entity_transform = UnionEntity(
            sources=["orders/a", "orders/b"], discriminator="origin")
        spec.entities[0].identity = None
        sql = generate_sql(spec)
        assert sql.count("INSERT INTO") == 2
        assert "'a'" in sql and "'b'" in sql

    def test_skolem_identity_rendered(self):
        spec = _simple_spec()
        spec.entities[0].identity = SkolemFunction("sk", ["po_id"])
        sql = generate_sql(spec)
        assert "'sk:'" in sql


class TestAssembler:
    def test_assemble_produces_all_forms(self, orders_graph, notice_graph):
        tool = MappingTool(orders_graph, notice_graph)
        tool.matrix.set_confidence(
            "orders/purchase_order", "notice/shippingNotice", 1.0, user_defined=True)
        tool.matrix.set_confidence(
            "orders/purchase_order/po_id", "notice/shippingNotice/orderNumber",
            1.0, user_defined=True)
        spec = tool.draft_from_matrix()
        assembled = assemble(spec, orders_graph, notice_graph, matrix=tool.matrix)
        assert "for $row" in assembled.xquery
        assert "INSERT INTO" in assembled.sql
        assert tool.matrix.code == assembled.xquery  # written to the blackboard layout
        result = assembled.run({"orders/purchase_order": [{"po_id": 9}]})
        assert result.rows("notice/shippingNotice")[0]["orderNumber"] == 9

    def test_matrix_code_listing(self, figure3_matrix):
        listing = matrix_code_listing(figure3_matrix)
        assert "variable $shipto" in listing
        assert "code = concat($lName" in listing
        assert "matrix code:" in listing
