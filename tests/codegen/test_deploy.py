"""Tests for deployment artifact generation (tasks 12-13)."""

import json
import subprocess
import sys

import pytest

from repro.core import TransformError
from repro.codegen import execute, generate_python_module, load_artifact
from repro.mapper import (
    AttributeMapping,
    DirectEntity,
    EntityMapping,
    InheritedIdentity,
    JoinEntity,
    KeyIdentity,
    MappingSpec,
    MetadataPushdown,
    ScalarTransform,
    SkolemFunction,
    SplitEntity,
    UnionEntity,
)

ROWS = [
    {"po_id": 1, "subtotal": 100.0, "status": "OPEN"},
    {"po_id": 2, "subtotal": 40.0, "status": "SHIP"},
]


def _spec() -> MappingSpec:
    spec = MappingSpec("m", "orders", "notice")
    spec.lookup_tables["status"] = {"OPEN": "O", "SHIP": "S"}
    entity = EntityMapping(
        "notice/shippingNotice",
        DirectEntity("orders/purchase_order"),
        identity=KeyIdentity(["po_id"]),
    )
    entity.attributes.append(AttributeMapping(
        "notice/shippingNotice/total", ScalarTransform("$subtotal * 1.05")))
    entity.attributes.append(AttributeMapping(
        "notice/shippingNotice/status", ScalarTransform("lookup_status($st)")))
    entity.attributes.append(AttributeMapping(
        "notice/shippingNotice/origin", MetadataPushdown("orders-db")))
    spec.variable_bindings["st"] = "status"
    spec.entities.append(entity)
    return spec


class TestArtifactGeneration:
    def test_artifact_is_standalone(self):
        code = generate_python_module(_spec())
        # the artifact must not import from this library
        assert "repro" not in code
        compile(code, "<artifact>", "exec")  # syntactically valid

    def test_artifact_matches_in_process_execution(self):
        spec = _spec()
        artifact = load_artifact(generate_python_module(spec))
        deployed = artifact["run"]({"orders/purchase_order": ROWS})
        native = execute(spec, {"orders/purchase_order": ROWS})
        assert deployed["notice/shippingNotice"] == native.rows("notice/shippingNotice")

    def test_lookup_tables_embedded(self):
        code = generate_python_module(_spec())
        assert "LOOKUP_STATUS" in code
        assert "'OPEN': 'O'" in code

    def test_abort_policy(self):
        artifact = load_artifact(generate_python_module(_spec(), on_error="abort"))
        bad = [{"po_id": 3, "subtotal": None, "status": "OPEN"}]
        with pytest.raises(TypeError):
            artifact["run"]({"orders/purchase_order": bad})

    def test_skip_policy(self, capsys):
        artifact = load_artifact(generate_python_module(_spec(), on_error="skip"))
        mixed = ROWS + [{"po_id": 3, "subtotal": None, "status": "OPEN"}]
        result = artifact["run"]({"orders/purchase_order": mixed})
        assert len(result["notice/shippingNotice"]) == 2

    def test_invalid_policy_rejected(self):
        with pytest.raises(TransformError):
            generate_python_module(_spec(), on_error="explode")

    def test_runs_as_subprocess(self, tmp_path):
        """Task 13 for real: the artifact works as `python mapping.py`."""
        path = tmp_path / "mapping.py"
        path.write_text(generate_python_module(_spec()))
        process = subprocess.run(
            [sys.executable, str(path)],
            input=json.dumps({"orders/purchase_order": ROWS}),
            capture_output=True, text=True, timeout=30,
        )
        assert process.returncode == 0, process.stderr
        output = json.loads(process.stdout)
        assert output["notice/shippingNotice"][0]["total"] == 105.0


class TestEntityShapes:
    def test_split_entity(self):
        spec = MappingSpec("m", "s", "t")
        entity = EntityMapping(
            "t/big", SplitEntity("s/orders", "$row.subtotal > 50"),
            identity=KeyIdentity(["po_id"]))
        entity.attributes.append(AttributeMapping(
            "t/big/total", ScalarTransform("$subtotal")))
        spec.entities.append(entity)
        artifact = load_artifact(generate_python_module(spec))
        result = artifact["run"]({"s/orders": ROWS})
        assert [r["_id"] for r in result["t/big"]] == [1]

    def test_union_entity(self):
        spec = MappingSpec("m", "s", "t")
        entity = EntityMapping(
            "t/all", UnionEntity(sources=["s/a", "s/b"]), identity=None)
        entity.attributes.append(AttributeMapping(
            "t/all/v", ScalarTransform("$v")))
        spec.entities.append(entity)
        artifact = load_artifact(generate_python_module(spec))
        result = artifact["run"]({"s/a": [{"v": 1}], "s/b": [{"v": 2}]})
        assert [r["v"] for r in result["t/all"]] == [1, 2]

    def test_join_entity(self):
        spec = MappingSpec("m", "s", "t")
        entity = EntityMapping(
            "t/joined",
            JoinEntity("s/orders", "s/customers", on=[("cust", "cust")]),
            identity=None)
        entity.attributes.append(AttributeMapping(
            "t/joined/who", ScalarTransform("$name")))
        spec.entities.append(entity)
        artifact = load_artifact(generate_python_module(spec))
        result = artifact["run"]({
            "s/orders": [{"cust": 1}],
            "s/customers": [{"cust": 1, "name": "Mork"}],
        })
        assert result["t/joined"] == [{"who": "Mork"}]

    def test_skolem_identity_deterministic(self):
        spec = MappingSpec("m", "s", "t")
        entity = EntityMapping(
            "t/x", DirectEntity("s/rows"),
            identity=SkolemFunction("sk", ["a"]))
        entity.attributes.append(AttributeMapping("t/x/a", ScalarTransform("$a")))
        spec.entities.append(entity)
        artifact = load_artifact(generate_python_module(spec))
        first = artifact["run"]({"s/rows": [{"a": 1}]})
        second = artifact["run"]({"s/rows": [{"a": 1}]})
        assert first == second
        assert first["t/x"][0]["_id"].startswith("sk_")

    def test_inherited_identity(self):
        spec = MappingSpec("m", "s", "t")
        entity = EntityMapping(
            "t/line", DirectEntity("s/lines"),
            identity=InheritedIdentity(KeyIdentity(["po"]), "line"))
        entity.attributes.append(AttributeMapping("t/line/q", ScalarTransform("$q")))
        spec.entities.append(entity)
        artifact = load_artifact(generate_python_module(spec))
        result = artifact["run"]({"s/lines": [{"po": 7, "line": 2, "q": 5}]})
        assert result["t/line"][0]["_id"] == "7/2"
