"""Tests for repro.text.similarity."""

import pytest

from repro.text import (
    dice_similarity,
    edit_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    longest_common_substring,
    monge_elkan,
    ngram_similarity,
    substring_similarity,
)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("name", "name") == 0

    def test_empty(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("flaw", "lawn") == 2

    def test_symmetry(self):
        assert levenshtein_distance("abc", "acd") == levenshtein_distance("acd", "abc")

    def test_edit_similarity_normalized(self):
        assert edit_similarity("name", "name") == 1.0
        assert edit_similarity("a", "b") == 0.0
        assert 0.0 < edit_similarity("firstName", "first_name".replace("_", "")) <= 1.0

    def test_edit_similarity_case_insensitive(self):
        assert edit_similarity("NAME", "name") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_winkler_prefix_boost(self):
        plain = jaro_similarity("prefix", "prefab")
        boosted = jaro_winkler_similarity("prefix", "prefab")
        assert boosted > plain

    def test_winkler_known_value(self):
        assert jaro_winkler_similarity("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_case_insensitive_like_every_string_measure(self):
        assert jaro_similarity("MARTHA", "martha") == 1.0
        assert jaro_similarity("Martha", "marhta") == jaro_similarity("martha", "marhta")

    def test_empty_conventions(self):
        assert jaro_similarity("", "") == 1.0
        assert jaro_similarity("", "x") == 0.0
        assert jaro_similarity("x", "") == 0.0


class TestSetMeasures:
    def test_jaccard(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({"a"}, set()) == 0.0

    def test_dice(self):
        assert dice_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(0.5)
        assert dice_similarity(set(), set()) == 1.0

    def test_ngram_shared_roots(self):
        assert ngram_similarity("lastname", "lname") > 0.2
        assert ngram_similarity("total", "total") == 1.0


class TestMongeElkan:
    def test_reordered_tokens(self):
        a = ["first", "name"]
        b = ["name", "first"]
        assert monge_elkan(a, b) == pytest.approx(1.0)

    def test_partial_overlap(self):
        score = monge_elkan(["ship", "to"], ["ship", "from"])
        assert 0.4 < score < 1.0

    def test_empty_sides(self):
        assert monge_elkan([], []) == 1.0
        assert monge_elkan(["a"], []) == 0.0

    def test_symmetric(self):
        a, b = ["order", "date"], ["date", "placed"]
        assert monge_elkan(a, b) == pytest.approx(monge_elkan(b, a))


class TestSubstring:
    def test_lcs_length(self):
        assert longest_common_substring("purchase", "chase") == 5
        assert longest_common_substring("abc", "xyz") == 0

    def test_substring_similarity(self):
        assert substring_similarity("subtotal", "total") == 1.0
        assert substring_similarity("", "") == 1.0
        assert substring_similarity("a", "") == 0.0
