"""Tests for the Porter stemmer against known reference outputs."""

import pytest

from repro.text import stem, stem_all


class TestKnownStems:
    """Reference pairs from Porter's published vocabulary."""

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("formaliti", "formal"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_reference_stem(self, word, expected):
        assert stem(word) == expected


class TestSchemaVocabulary:
    """Stemming unifies the word forms schema matching actually meets."""

    def test_shipping_family(self):
        assert stem("shipping") == stem("shipped") == stem("ships") == "ship"

    def test_order_family(self):
        assert stem("orders") == stem("ordering") == stem("ordered")

    def test_identify_family(self):
        assert stem("identifies") == stem("identified")


class TestEdgeCases:
    def test_short_words_unchanged(self):
        assert stem("a") == "a"
        assert stem("is") == "is"
        assert stem("id") == "id"

    def test_case_folded(self):
        assert stem("Shipping") == "ship"

    def test_stem_all(self):
        assert stem_all(["orders", "shipped"]) == ["order", "ship"]
