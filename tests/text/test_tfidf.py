"""Tests for repro.text.tfidf."""

import pytest

from repro.text import TfIdfCorpus, cosine_of_counts, preprocess, remove_stop_words, is_stop_word


class TestPreprocess:
    def test_pipeline(self):
        tokens = preprocess("The codes that identify the shipping facilities.")
        assert "the" not in tokens          # stop words removed
        assert "ship" in tokens             # stemmed
        assert "code" in tokens             # plural stemmed

    def test_empty(self):
        assert preprocess("") == []


class TestStopWords:
    def test_common_words(self):
        assert is_stop_word("the")
        assert is_stop_word("of")
        assert not is_stop_word("aircraft")

    def test_remove_stop_words_drops_single_letters(self):
        assert remove_stop_words(["a", "x", "runway"]) == ["runway"]


class TestCorpus:
    def _corpus(self) -> TfIdfCorpus:
        corpus = TfIdfCorpus()
        corpus.add_document("d1", "The given name of the customer.")
        corpus.add_document("d2", "The family name of the customer.")
        corpus.add_document("d3", "The elevation of the runway in feet.")
        return corpus

    def test_len_and_contains(self):
        corpus = self._corpus()
        assert len(corpus) == 3
        assert "d1" in corpus
        assert "missing" not in corpus

    def test_similar_documents_score_higher(self):
        corpus = self._corpus()
        assert corpus.cosine("d1", "d2") > corpus.cosine("d1", "d3")

    def test_cosine_self_is_one(self):
        corpus = self._corpus()
        assert corpus.cosine("d1", "d1") == pytest.approx(1.0)

    def test_cosine_missing_document_is_zero(self):
        corpus = self._corpus()
        assert corpus.cosine("d1", "nope") == 0.0

    def test_idf_rare_terms_weigh_more(self):
        corpus = self._corpus()
        # 'customer' appears in 2 docs, 'runway' in 1
        assert corpus.idf("runwai") >= corpus.idf("custom")

    def test_replace_document_updates_frequencies(self):
        corpus = self._corpus()
        corpus.add_document("d1", "Completely different content now.")
        assert corpus.cosine("d1", "d2") < 0.2

    def test_shared_terms(self):
        corpus = self._corpus()
        shared = corpus.shared_terms("d1", "d2")
        assert "name" in shared and "custom" in shared

    def test_word_weight_adjustment_changes_similarity(self):
        corpus = self._corpus()
        base = corpus.cosine("d1", "d2")
        corpus.adjust_weight("name", 5.0)
        corpus.adjust_weight("custom", 5.0)
        boosted = corpus.cosine("d1", "d2")
        assert boosted > base

    def test_weight_clamped(self):
        corpus = self._corpus()
        for _ in range(20):
            corpus.adjust_weight("name", 10.0)
        assert corpus.weight("name") == 10.0
        for _ in range(40):
            corpus.adjust_weight("name", 0.1)
        assert corpus.weight("name") == pytest.approx(0.1)


class TestCosineOfCounts:
    def test_identical(self):
        assert cosine_of_counts({"a": 1.0}, {"a": 2.0}) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_of_counts({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert cosine_of_counts({}, {"a": 1.0}) == 0.0


class TestRemoveDocument:
    def test_remove_restores_prior_state(self):
        stable = TfIdfCorpus()
        stable.add_document("d1", "runway lights")
        stable.add_document("d2", "taxiway lights")

        mutated = TfIdfCorpus()
        mutated.add_document("d1", "runway lights")
        mutated.add_document("d2", "taxiway lights")
        mutated.add_document("d3", "runway surface codes")
        mutated.remove_document("d3")

        assert mutated._document_frequency == stable._document_frequency
        assert ("d3" in mutated) is False
        assert mutated.cosine("d1", "d2") == stable.cosine("d1", "d2")

    def test_remove_bumps_revision(self):
        corpus = TfIdfCorpus()
        corpus.add_document("d1", "runway lights")
        before = corpus.revision
        corpus.remove_document("d1")
        assert corpus.revision == before + 1

    def test_remove_unknown_is_noop(self):
        corpus = TfIdfCorpus()
        corpus.add_document("d1", "runway lights")
        before = corpus.revision
        corpus.remove_document("ghost")
        assert corpus.revision == before
        assert "d1" in corpus
