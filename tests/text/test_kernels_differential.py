"""Differential harness: the optimized kernels vs the reference oracle.

``repro.text.similarity`` is the clarity-first reference; ``repro.text.
kernels`` is the memoized / early-exit / band-limited mirror the fast
match path runs on.  This harness is what lets the engine flip between
them without a correctness argument in prose: hypothesis-driven property
tests plus a frozen golden corpus of real schema tokens (the A12-large
registry pair and the orders/shippingNotice case-study pair) assert the
two agree to within ``TOLERANCE`` on every pair, and that an engine run
with ``similarity_kernels=True`` produces the identical mapping matrix.
"""

import json
import os
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harmony import EngineConfig, HarmonyEngine
from repro.text import kernels, similarity as reference

#: the acceptance bound; in practice the kernels are bitwise identical
TOLERANCE = 1e-12

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_schema_tokens.json")

#: (name, reference function, kernel function) for the string measures
STRING_MEASURES = [
    ("edit", reference.edit_similarity, kernels.edit_similarity),
    ("jaro", reference.jaro_similarity, kernels.jaro_similarity),
    ("jaro_winkler", reference.jaro_winkler_similarity, kernels.jaro_winkler_similarity),
    ("ngram", reference.ngram_similarity, kernels.ngram_similarity),
]

# schema-identifier-looking strings, mixed case and separators included
identifiers = st.text(
    alphabet=string.ascii_letters + string.digits + "_-. ", min_size=0, max_size=24
)
short_tokens = st.text(alphabet=string.ascii_letters + string.digits, min_size=0, max_size=10)
token_lists = st.lists(short_tokens, max_size=5)


def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestHypothesisDifferential:
    @pytest.mark.parametrize("name,ref,fast", STRING_MEASURES,
                             ids=[m[0] for m in STRING_MEASURES])
    @given(identifiers, identifiers)
    def test_string_measures_agree(self, name, ref, fast, a, b):
        assert abs(ref(a, b) - fast(a, b)) <= TOLERANCE

    @given(identifiers, identifiers)
    def test_levenshtein_agrees_unbounded(self, a, b):
        assert kernels.levenshtein_distance(a, b) == reference.levenshtein_distance(a, b)

    @given(identifiers, identifiers, st.integers(min_value=0, max_value=8))
    def test_banded_levenshtein_contract(self, a, b, k):
        """Within the band the exact distance comes back; beyond it, any
        value provably greater than the band."""
        true = reference.levenshtein_distance(a, b)
        banded = kernels.levenshtein_distance(a, b, max_distance=k)
        if true <= k:
            assert banded == true
        else:
            assert banded > k

    @given(identifiers, identifiers,
           st.floats(min_value=0.05, max_value=1.0, allow_nan=False))
    def test_edit_cutoff_contract(self, a, b, cutoff):
        """At or above the cutoff the value is exact; below it, whatever
        comes back stays below the cutoff — so thresholding at the cutoff
        makes identical decisions either way."""
        true = reference.edit_similarity(a, b)
        bounded = kernels.edit_similarity(a, b, cutoff=cutoff)
        if true >= cutoff:
            assert abs(bounded - true) <= TOLERANCE
        else:
            assert bounded < cutoff

    @given(identifiers, identifiers)
    def test_jaro_winkler_upper_bound_holds(self, a, b):
        assert reference.jaro_winkler_similarity(a, b) <= (
            kernels.jaro_winkler_upper_bound(a, b) + TOLERANCE
        )

    @given(token_lists, token_lists)
    @settings(max_examples=60)
    def test_monge_elkan_agrees(self, a, b):
        assert abs(reference.monge_elkan(a, b) - kernels.monge_elkan(a, b)) <= TOLERANCE

    @given(identifiers, identifiers, token_lists, token_lists)
    @settings(max_examples=60)
    def test_blended_name_similarity_agrees(self, a, b, ta, tb):
        assert abs(
            reference.blended_name_similarity(a, b, ta, tb)
            - kernels.blended_name_similarity(a, b, ta, tb)
        ) <= TOLERANCE

    @given(identifiers, identifiers)
    def test_cached_call_stable(self, a, b):
        """The memoized value and a repeat call are the same object-level
        float — caching never drifts."""
        assert kernels.jaro_winkler_similarity(a, b) == kernels.jaro_winkler_similarity(a, b)


class TestGoldenCorpus:
    """Every measure over every pair of frozen real schema strings."""

    def test_token_pairs_all_measures(self):
        tokens = golden()["tokens"]
        assert len(tokens) >= 150, "golden corpus suspiciously small"
        for name, ref, fast in STRING_MEASURES:
            worst = 0.0
            for a in tokens:
                for b in tokens:
                    diff = abs(ref(a, b) - fast(a, b))
                    if diff > worst:
                        worst = diff
            assert worst <= TOLERANCE, f"{name}: max |fast - reference| = {worst}"

    def test_name_pairs_all_measures(self):
        names = golden()["names"]
        # full cross product of names is ~80k pairs per measure; a stride
        # sample keeps the suite fast while still covering every name
        sample = names[::3]
        for name, ref, fast in STRING_MEASURES:
            for a in sample:
                for b in sample:
                    assert abs(ref(a, b) - fast(a, b)) <= TOLERANCE, (name, a, b)

    def test_monge_elkan_token_lists(self):
        lists = golden()["token_lists"]
        assert len(lists) >= 40
        for a in lists:
            for b in lists:
                diff = abs(reference.monge_elkan(a, b) - kernels.monge_elkan(a, b))
                assert diff <= TOLERANCE, (a, b)

    def test_score_pairs_matches_singles(self):
        tokens = golden()["tokens"][:60]
        pairs = [(a, b) for a in tokens for b in tokens[:10]]
        for measure, _, fast in STRING_MEASURES:
            batch = kernels.score_pairs(pairs, measure=measure)
            assert batch == [fast(a, b) for a, b in pairs]

    def test_score_pairs_cutoff_decisions_identical(self):
        """With a cutoff, the batch path may return bounds instead of
        exact values — but accept/reject at the cutoff never changes."""
        tokens = golden()["tokens"][:80]
        pairs = [(a, b) for a in tokens for b in tokens[:12]]
        cutoff = 0.85
        bounded = kernels.score_pairs(pairs, measure="jaro_winkler", cutoff=cutoff)
        exact = [reference.jaro_winkler_similarity(a, b) for a, b in pairs]
        for (a, b), got, want in zip(pairs, bounded, exact):
            assert (got >= cutoff) == (want >= cutoff), (a, b, got, want)
            if want >= cutoff:
                assert abs(got - want) <= TOLERANCE


class TestEngineEquivalence:
    """Flipping ``similarity_kernels`` must not move a single confidence."""

    def test_kernel_run_bit_identical(self, orders_graph, notice_graph):
        plain = HarmonyEngine().match(orders_graph, notice_graph)
        kerneled = HarmonyEngine(
            config=EngineConfig(similarity_kernels=True)
        ).match(orders_graph, notice_graph)
        plain_cells = {(c.source_id, c.target_id): c.confidence
                       for c in plain.matrix.cells()}
        kernel_cells = {(c.source_id, c.target_id): c.confidence
                        for c in kerneled.matrix.cells()}
        assert plain_cells.keys() == kernel_cells.keys()
        for pair, confidence in plain_cells.items():
            assert abs(confidence - kernel_cells[pair]) <= TOLERANCE, pair

    def test_fast_preset_enables_kernels(self):
        assert EngineConfig.fast().similarity_kernels is True
        assert EngineConfig().similarity_kernels is False
        assert EngineConfig.fast(similarity_kernels=False).similarity_kernels is False
