"""Unit tests for repro.text.kernels: caches, bounds, Monge-Elkan edges."""

import pytest

from repro.harmony import MatchContext
from repro.text import kernels
from repro.text import similarity as reference


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts (and leaves) with empty process-wide caches."""
    kernels.clear_caches()
    yield
    kernels.clear_caches()


class TestMongeElkanEdgeCases:
    """Shapes the voters actually produce: single tokens, duplicates,
    lopsided lists — each checked against the reference."""

    CASES = [
        (["name"], ["name"]),                      # single-token lists
        (["name"], ["title"]),
        (["po"], ["po", "line", "number"]),        # asymmetric lengths
        (["a", "b", "c", "d", "e"], ["c"]),
        (["name", "name"], ["name"]),              # duplicate tokens
        (["ship", "ship", "to"], ["to", "ship", "ship"]),
        (["first", "name"], ["name", "first"]),
    ]

    @pytest.mark.parametrize("a,b", CASES)
    def test_matches_reference(self, a, b):
        assert kernels.monge_elkan(a, b) == pytest.approx(
            reference.monge_elkan(a, b), abs=1e-12
        )

    def test_empty_conventions(self):
        assert kernels.monge_elkan([], []) == 1.0
        assert kernels.monge_elkan(["a"], []) == 0.0
        assert kernels.monge_elkan([], ["a"]) == 0.0

    def test_duplicate_tokens_hit_row_cache(self):
        kernels.monge_elkan(["name", "name", "name"], ["title"])
        stats = kernels.cache_stats()["monge_elkan_rows"]
        # first "name" row misses, the two duplicates hit
        assert stats["misses"] >= 1
        assert stats["hits"] >= 2

    def test_custom_base_falls_back_to_reference_path(self):
        calls = []

        def base(x, y):
            calls.append((x, y))
            return 1.0 if x == y else 0.0

        score = kernels.monge_elkan(["a", "b"], ["b"], base=base)
        assert score == pytest.approx(reference.monge_elkan(["a", "b"], ["b"], base=base))
        assert calls  # the custom base really ran


class TestMongeElkanKernel:
    def test_matches_reference_with_custom_base(self):
        def base(x, y):
            return 1.0 if x[0] == y[0] else 0.25

        kernel = kernels.MongeElkanKernel(base)
        for a, b in [(["po", "line"], ["purchase", "order"]), (["x"], ["x", "y"])]:
            assert kernel.similarity(a, b) == pytest.approx(
                reference.monge_elkan(a, b, base=base), abs=1e-12
            )

    def test_memoizes_token_pairs(self):
        calls = []

        def base(x, y):
            calls.append((x, y))
            return 0.5

        kernel = kernels.MongeElkanKernel(base)
        kernel.similarity(["a", "b"], ["c"])
        first = len(calls)
        kernel.similarity(["a", "b"], ["c"])  # fully cached second time
        assert len(calls) == first
        info = kernel.cache_info()
        assert info["pairs"] >= 2 and info["hits"] >= 1

    def test_asymmetric_base_keeps_directions_apart(self):
        def base(x, y):
            return 0.9 if (x, y) == ("a", "b") else 0.1

        kernel = kernels.MongeElkanKernel(base)
        assert kernel.similarity(["a"], ["b"]) == pytest.approx(
            reference.monge_elkan(["a"], ["b"], base=base), abs=1e-12
        )

    def test_clear_resets(self):
        kernel = kernels.MongeElkanKernel(lambda x, y: 1.0)
        kernel.similarity(["a"], ["b"])
        kernel.clear()
        assert kernel.cache_info() == {"pairs": 0, "rows": 0, "hits": 0, "misses": 0}


class TestCacheStatisticsApi:
    def test_clear_zeroes_everything(self):
        kernels.jaro_winkler_similarity("order", "ordre")
        kernels.clear_caches()
        for name, stats in kernels.cache_stats().items():
            assert stats["hits"] == 0 and stats["misses"] == 0, name
            assert stats["size"] == 0, name

    def test_hits_and_misses_count(self):
        kernels.jaro_winkler_similarity("order", "ordre")   # miss
        kernels.jaro_winkler_similarity("order", "ordre")   # hit
        kernels.jaro_winkler_similarity("ordre", "order")   # hit (symmetric key)
        stats = kernels.cache_stats()["token_jw"]
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["hit_rate"] == pytest.approx(2 / 3, abs=1e-3)
        assert stats["size"] == 1

    def test_case_variants_share_one_entry(self):
        kernels.jaro_winkler_similarity("Order", "ordre")
        kernels.jaro_winkler_similarity("ORDER", "Ordre")
        assert kernels.cache_stats()["token_jw"]["size"] == 1

    def test_eviction_backstop(self, monkeypatch):
        monkeypatch.setattr(kernels, "MAX_CACHE_ENTRIES", 2)
        kernels.jaro_winkler_similarity("aa", "bb")
        kernels.jaro_winkler_similarity("cc", "dd")
        kernels.jaro_winkler_similarity("ee", "ff")  # overflows, cache resets
        stats = kernels.cache_stats()["token_jw"]
        assert stats["evictions"] >= 1
        assert stats["size"] <= 2
        # values survive an eviction unchanged
        assert kernels.jaro_winkler_similarity("aa", "bb") == pytest.approx(
            reference.jaro_winkler_similarity("aa", "bb"), abs=1e-12
        )

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError, match="unknown measure"):
            kernels.score_pairs([("a", "b")], measure="soundex")

    def test_note_cache_event_feeds_cosine_stats(self):
        kernels.note_cache_event("cosine", hit=False)
        kernels.note_cache_event("cosine", hit=True)
        stats = kernels.cache_stats()["cosine"]
        assert stats == {"hits": 1, "misses": 1, "evictions": 0,
                         "hit_rate": 0.5, "size": 0}


class TestContextCosineCache:
    def test_cosine_memoized_and_invalidated(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph, use_kernels=True)
        doc_a = context.doc_id(orders_graph, orders_graph.get("orders/customer/first_name"))
        doc_b = context.doc_id(notice_graph, notice_graph.get(
            "notice/shippingNotice/recipientName/firstName"))
        first = context.cosine(doc_a, doc_b)
        assert context.cosine(doc_a, doc_b) == first
        assert kernels.cache_stats()["cosine"]["hits"] == 1
        # word-weight learning bumps the revision: memo must drop
        context.corpus.adjust_weight("given", 2.0)
        fresh = context.cosine(doc_a, doc_b)
        assert kernels.cache_stats()["cosine"]["misses"] == 2
        assert fresh == context.corpus.cosine(doc_a, doc_b)

    def test_reference_context_bypasses_memo(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph)  # kernels off
        doc_a = context.doc_id(orders_graph, orders_graph.get("orders/customer/first_name"))
        doc_b = context.doc_id(notice_graph, notice_graph.get(
            "notice/shippingNotice/recipientName/firstName"))
        context.cosine(doc_a, doc_b)
        stats = kernels.cache_stats()["cosine"]
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_context_sim_namespace(self, orders_graph, notice_graph):
        assert MatchContext(orders_graph, notice_graph).sim is reference
        assert MatchContext(orders_graph, notice_graph, use_kernels=True).sim is kernels


class TestBoundedKernels:
    def test_jaro_winkler_upper_bound_extremes(self):
        assert kernels.jaro_winkler_upper_bound("same", "same") == 1.0
        assert kernels.jaro_winkler_upper_bound("", "x") == 0.0
        assert kernels.jaro_winkler_upper_bound("", "") == 1.0

    def test_banded_levenshtein_rejects_negative_band(self):
        with pytest.raises(ValueError):
            kernels.levenshtein_distance("a", "b", max_distance=-1)

    def test_band_zero(self):
        assert kernels.levenshtein_distance("same", "same", max_distance=0) == 0
        assert kernels.levenshtein_distance("same", "sane", max_distance=0) == 1
