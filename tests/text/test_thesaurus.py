"""Tests for repro.text.thesaurus."""

from repro.text import Thesaurus


class TestDefaults:
    def test_known_synonyms(self):
        thesaurus = Thesaurus.default()
        assert thesaurus.are_synonyms("vendor", "supplier")
        assert thesaurus.are_synonyms("employee", "worker")
        assert thesaurus.are_synonyms("airport", "aerodrome")

    def test_symmetry(self):
        thesaurus = Thesaurus.default()
        assert thesaurus.are_synonyms("customer", "client")
        assert thesaurus.are_synonyms("client", "customer")

    def test_word_is_own_synonym(self):
        thesaurus = Thesaurus.default()
        assert thesaurus.are_synonyms("widget", "widget")

    def test_non_synonyms(self):
        thesaurus = Thesaurus.default()
        assert not thesaurus.are_synonyms("airport", "salary")

    def test_abbreviation_expansion(self):
        thesaurus = Thesaurus.default()
        assert thesaurus.expand_abbreviation("qty") == "quantity"
        assert thesaurus.expand_abbreviation("dept") == "department"
        assert thesaurus.expand_abbreviation("unknownword") == "unknownword"

    def test_abbreviations_bridge_to_synonyms(self):
        thesaurus = Thesaurus.default()
        # qty → quantity, which is a synonym of count
        assert thesaurus.are_synonyms("qty", "count")


class TestCustomization:
    def test_empty_thesaurus(self):
        thesaurus = Thesaurus.empty()
        assert not thesaurus.are_synonyms("vendor", "supplier")
        assert thesaurus.synonyms("vendor") == {"vendor"}

    def test_add_synset(self):
        thesaurus = Thesaurus.empty()
        thesaurus.add_synset(["sortie", "mission"])
        assert thesaurus.are_synonyms("sortie", "mission")

    def test_overlapping_synsets_merge(self):
        thesaurus = Thesaurus.empty()
        thesaurus.add_synset(["a", "b"])
        thesaurus.add_synset(["b", "c"])
        assert thesaurus.are_synonyms("a", "c")

    def test_add_abbreviation(self):
        thesaurus = Thesaurus.empty()
        thesaurus.add_abbreviation("acft", "aircraft")
        assert thesaurus.expand_abbreviation("ACFT") == "aircraft"

    def test_case_insensitive(self):
        thesaurus = Thesaurus.default()
        assert thesaurus.are_synonyms("Vendor", "SUPPLIER")


class TestExpansion:
    def test_expand_tokens_includes_synonyms(self):
        thesaurus = Thesaurus.default()
        expanded = thesaurus.expand_tokens(["vendor"])
        assert "supplier" in expanded
        assert "vendor" in expanded

    def test_expand_tokens_order_preserving_dedup(self):
        thesaurus = Thesaurus.empty()
        thesaurus.add_synset(["x", "y"])
        expanded = thesaurus.expand_tokens(["x", "y", "x"])
        assert expanded == ["x", "y"]
