"""Tests for repro.text.tokenize."""

from repro.text import name_tokens, ngrams, sentences, split_identifier, word_tokens


class TestSplitIdentifier:
    def test_camel_case(self):
        assert split_identifier("shippingInfo") == ["shipping", "info"]

    def test_pascal_case(self):
        assert split_identifier("PurchaseOrder") == ["purchase", "order"]

    def test_snake_case(self):
        assert split_identifier("FIRST_NAME") == ["first", "name"]

    def test_kebab_and_dots(self):
        assert split_identifier("ship-to.address") == ["ship", "to", "address"]

    def test_digit_boundaries(self):
        assert split_identifier("POLine2") == ["po", "line", "2"]
        assert split_identifier("line2item") == ["line", "2", "item"]

    def test_consecutive_capitals(self):
        assert split_identifier("HTTPServer") == ["http", "server"]
        assert split_identifier("FAACode") == ["faa", "code"]

    def test_empty_and_punctuation_only(self):
        assert split_identifier("") == []
        assert split_identifier("__--__") == []

    def test_single_word(self):
        assert split_identifier("total") == ["total"]


class TestWordTokens:
    def test_basic(self):
        assert word_tokens("The quick brown fox") == ["the", "quick", "brown", "fox"]

    def test_punctuation_stripped(self):
        assert word_tokens("feet-to-meters (approx.)") == [
            "feet", "to", "meters", "approx",
        ]

    def test_numbers_kept(self):
        assert word_tokens("runway 27L") == ["runway", "27", "l"]

    def test_empty(self):
        assert word_tokens("") == []
        assert word_tokens("!!!") == []


class TestSentences:
    def test_split_on_terminators(self):
        text = "First sentence. Second one! Third?"
        assert sentences(text) == ["First sentence.", "Second one!", "Third?"]

    def test_single_sentence(self):
        assert sentences("Only one here") == ["Only one here"]

    def test_empty(self):
        assert sentences("   ") == []


class TestNameTokens:
    def test_combines_name_and_documentation(self):
        tokens = name_tokens("shipTo", "The delivery address.")
        assert tokens[:2] == ["ship", "to"]
        assert "delivery" in tokens

    def test_name_only(self):
        assert name_tokens("subtotal") == ["subtotal"]


class TestNgrams:
    def test_trigrams(self):
        assert ngrams("name", 3) == ["nam", "ame"]

    def test_short_string(self):
        assert ngrams("ab", 3) == ["ab"]

    def test_case_and_punctuation_squashed(self):
        assert ngrams("A-B-C-D", 3) == ["abc", "bcd"]

    def test_empty(self):
        assert ngrams("", 3) == []
