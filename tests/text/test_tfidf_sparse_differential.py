"""Differential harness: the sparse TF-IDF engine vs the dict reference.

``repro.text.tfidf.TfIdfCorpus`` is the clarity-first reference — one
``{term: weight}`` dict per document, cosine as a per-term dict probe.
``repro.text.tfidf_sparse.SparseTfIdf`` is the packed mirror the fast
match path runs on: interned term ids, sorted-array vectors, and a
postings index that only ever visits document pairs sharing a term.

As with the string-kernel harness next door, this file is what lets the
engine flip between the two without a correctness argument in prose:
hypothesis-generated corpora plus the frozen golden schema corpus assert
agreement to within ``TOLERANCE`` on every pair, the postings-driven
``all_pairs`` / ``top_k_similar`` contracts hold exactly, and an engine
run with ``sparse_tfidf=True`` produces the identical mapping matrix.
"""

import json
import os
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harmony import EngineConfig, HarmonyEngine
from repro.text import SparseTfIdf, TfIdfCorpus
from repro.text import tfidf_sparse as tfidf_sparse_mod
from repro.text.tfidf_sparse import (
    ALL_PAIRS_BACKENDS,
    all_pairs_stats,
    reset_all_pairs_stats,
)

HAS_NUMPY = tfidf_sparse_mod._probe_numpy() is not None
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

#: the acceptance bound; in practice worst observed drift is ~5e-16
#: (sorted-id merge vs dict-insertion-order float summation)
TOLERANCE = 1e-12

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_schema_tokens.json")

# short lowercase words so hypothesis corpora actually share vocabulary
words = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=6)
documents = st.lists(words, min_size=0, max_size=12).map(" ".join)
corpora = st.lists(documents, min_size=2, max_size=10)


def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def build(texts):
    corpus = TfIdfCorpus()
    for i, text in enumerate(texts):
        corpus.add_document(f"doc{i}", text)
    return corpus, SparseTfIdf(corpus), [f"doc{i}" for i in range(len(texts))]


class TestHypothesisDifferential:
    @given(corpora)
    @settings(max_examples=80)
    def test_cosine_agrees_on_every_pair(self, texts):
        corpus, sparse, ids = build(texts)
        for a in ids:
            for b in ids:
                assert abs(corpus.cosine(a, b) - sparse.cosine(a, b)) <= TOLERANCE

    @given(corpora)
    @settings(max_examples=60)
    def test_all_pairs_is_total(self, texts):
        """Pairs absent from the table have reference cosine exactly 0.0;
        pairs present agree with the reference."""
        corpus, sparse, ids = build(texts)
        table = sparse.all_pairs()
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                want = corpus.cosine(a, b)
                if (a, b) in table:
                    assert abs(table[(a, b)] - want) <= TOLERANCE
                else:
                    assert want == 0.0, (a, b, want)

    @given(corpora, st.integers(min_value=1, max_value=6))
    @settings(max_examples=60)
    def test_top_k_matches_brute_force(self, texts, k):
        corpus, sparse, ids = build(texts)
        for a in ids:
            got = sparse.top_k_similar(a, k)
            brute = sorted(
                ((corpus.cosine(a, b), b) for b in ids if b != a),
                key=lambda item: (-item[0], item[1]),
            )
            brute = [(doc, sim) for sim, doc in brute if sim > 0.0][:k]
            assert len(got) <= k
            assert [doc for doc, _ in got] == [doc for doc, _ in brute] or all(
                abs(gs - bs) <= TOLERANCE for (_, gs), (_, bs) in zip(got, brute)
            )
            for (gd, gs), (bd, bs) in zip(got, brute):
                assert abs(gs - bs) <= TOLERANCE, (a, gd, bd)

    @given(corpora, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=40)
    def test_all_pairs_min_sim_threshold(self, texts, min_sim):
        corpus, sparse, ids = build(texts)
        table = sparse.all_pairs(min_sim=min_sim)
        for pair, sim in table.items():
            assert sim >= min_sim
        # nothing at or above the threshold is missing
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                want = corpus.cosine(a, b)
                if want > min_sim + TOLERANCE:
                    assert (a, b) in table, (a, b, want)

    @given(corpora)
    @settings(max_examples=40)
    def test_group_filter_skips_same_group_pairs(self, texts):
        """With a two-way partition, only cross-group pairs are scored."""
        corpus, sparse, ids = build(texts)
        evens = {doc for i, doc in enumerate(ids) if i % 2 == 0}
        table = sparse.all_pairs(group_of=lambda doc: doc in evens)
        for (a, b), sim in table.items():
            assert (a in evens) != (b in evens)
            assert abs(sim - corpus.cosine(a, b)) <= TOLERANCE


class TestGoldenCorpus:
    """The frozen real-schema corpus: every pair, reference vs sparse."""

    def test_golden_docs_agree_on_every_pair(self):
        data = golden()
        texts = [" ".join(tokens) for tokens in data["token_lists"]]
        texts += data["names"][::2]
        corpus, sparse, ids = build(texts)
        assert sparse.vocabulary_size > 50
        worst = 0.0
        table = sparse.all_pairs()
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                want = corpus.cosine(a, b)
                got = table.get((a, b), 0.0)
                diff = abs(got - want)
                if diff > worst:
                    worst = diff
        assert worst <= TOLERANCE, f"max |sparse - reference| = {worst}"

    def test_golden_norms_positive_for_nonempty_docs(self):
        data = golden()
        texts = [" ".join(tokens) for tokens in data["token_lists"][:40]]
        corpus, sparse, ids = build(texts)
        for doc in ids:
            if corpus.terms(doc):
                assert sparse.norm(doc) > 0.0


class TestInvalidation:
    """The two-level staleness contract the engine's caches rely on."""

    def test_adjust_weight_refreshes_weights_only(self):
        corpus, sparse, ids = build(["alpha beta", "beta gamma", "alpha gamma"])
        before = corpus.cosine(ids[0], ids[1])
        assert abs(sparse.cosine(ids[0], ids[1]) - before) <= TOLERANCE
        builds, refreshes = sparse.structure_builds, sparse.weight_refreshes
        corpus.adjust_weight("beta", 4.0)
        after = corpus.cosine(ids[0], ids[1])
        assert after != before  # the weight change really moved the score
        assert abs(sparse.cosine(ids[0], ids[1]) - after) <= TOLERANCE
        assert sparse.structure_builds == builds  # structure survived
        assert sparse.weight_refreshes == refreshes + 1

    def test_document_replace_bumps_revision_and_rebuilds(self):
        """Regression: replacing a document must invalidate cosine memos.

        ``add_document`` on an existing id previously left ``revision``
        untouched, so sparse vectors (and any revision-keyed cosine memo)
        kept serving the stale text.
        """
        corpus, sparse, ids = build(["alpha beta", "beta gamma"])
        rev = corpus.revision
        stale = sparse.cosine(ids[0], ids[1])
        assert stale > 0.0
        corpus.add_document(ids[0], "delta epsilon")  # replace, no overlap left
        assert corpus.revision == rev + 1
        assert sparse.cosine(ids[0], ids[1]) == 0.0
        assert abs(corpus.cosine(ids[0], ids[1])) <= TOLERANCE

    def test_new_document_extends_vocabulary(self):
        corpus, sparse, ids = build(["alpha beta"])
        assert sparse.vocabulary_size == 2
        corpus.add_document("doc_new", "alpha zeta")
        assert sparse.vocabulary_size == 3
        assert abs(
            sparse.cosine(ids[0], "doc_new") - corpus.cosine(ids[0], "doc_new")
        ) <= TOLERANCE

    def test_stats_shape(self):
        _, sparse, _ = build(["alpha beta", "beta gamma"])
        stats = sparse.stats()
        assert stats["documents"] == 2
        assert stats["vocabulary"] == 3
        assert stats["postings"] == 4
        assert stats["structure_builds"] == 1
        assert stats["weight_refreshes"] == 1


class TestAllPairsBackends:
    """The CSR matmul route vs the sorted-merge reference."""

    def test_selector_vocabulary(self):
        assert ALL_PAIRS_BACKENDS == ("auto", "merge", "csr")

    def test_unknown_selector_raises(self):
        corpus = TfIdfCorpus()
        with pytest.raises(ValueError, match="unknown all_pairs backend"):
            SparseTfIdf(corpus, all_pairs_backend="gpu")

    def test_csr_without_numpy_raises_actionably(self, monkeypatch):
        corpus, _, _ = build(["alpha beta", "beta gamma"])
        monkeypatch.setattr(tfidf_sparse_mod, "_probe_numpy", lambda: None)
        sparse = SparseTfIdf(corpus, all_pairs_backend="csr")
        with pytest.raises(ImportError, match=r"pip install \.\[fast\]"):
            sparse.all_pairs()

    def test_auto_without_numpy_uses_merge(self, monkeypatch):
        corpus, _, ids = build(["alpha beta", "beta gamma"])
        monkeypatch.setattr(tfidf_sparse_mod, "_probe_numpy", lambda: None)
        sparse = SparseTfIdf(corpus)
        reset_all_pairs_stats()
        table = sparse.all_pairs()
        assert table[(ids[0], ids[1])] > 0.0
        stats = all_pairs_stats()
        assert stats["allpairs_merge_sweeps"] == 1
        assert stats["allpairs_csr_sweeps"] == 0

    @needs_numpy
    def test_auto_with_numpy_uses_csr(self):
        _, sparse, ids = build(["alpha beta", "beta gamma"])
        reset_all_pairs_stats()
        table = sparse.all_pairs()
        assert table[(ids[0], ids[1])] > 0.0
        stats = all_pairs_stats()
        assert stats["allpairs_csr_sweeps"] == 1
        assert stats["allpairs_merge_sweeps"] == 0

    @needs_numpy
    def test_oversize_corpus_falls_back_to_merge(self, monkeypatch):
        corpus, _, ids = build(["alpha beta", "beta gamma", "alpha gamma"])
        monkeypatch.setattr(tfidf_sparse_mod, "_CSR_DENSE_CELL_LIMIT", 4)
        sparse = SparseTfIdf(corpus)
        reset_all_pairs_stats()
        table = sparse.all_pairs()
        assert len(table) == 3
        stats = all_pairs_stats()
        assert stats["allpairs_csr_oversize_fallbacks"] == 1
        assert stats["allpairs_merge_sweeps"] == 1
        # explicit "csr" ignores the budget
        explicit = SparseTfIdf(corpus, all_pairs_backend="csr")
        assert explicit.all_pairs().keys() == table.keys()

    @needs_numpy
    @given(corpora)
    @settings(max_examples=60)
    def test_csr_matches_merge_exactly_in_membership(self, texts):
        corpus = TfIdfCorpus()
        for i, text in enumerate(texts):
            corpus.add_document(f"doc{i}", text)
        merge = SparseTfIdf(corpus, all_pairs_backend="merge").all_pairs()
        csr = SparseTfIdf(corpus, all_pairs_backend="csr").all_pairs()
        assert csr.keys() == merge.keys()
        for pair, sim in merge.items():
            assert abs(sim - csr[pair]) <= TOLERANCE

    @needs_numpy
    @given(corpora, st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=40)
    def test_csr_min_sim_and_groups_match_merge(self, texts, min_sim):
        corpus = TfIdfCorpus()
        for i, text in enumerate(texts):
            corpus.add_document(f"doc{i}", text)
        ids = [f"doc{i}" for i in range(len(texts))]
        evens = {doc for i, doc in enumerate(ids) if i % 2 == 0}
        group_of = lambda doc: doc in evens
        merge = SparseTfIdf(corpus, all_pairs_backend="merge").all_pairs(
            min_sim=min_sim, group_of=group_of
        )
        csr = SparseTfIdf(corpus, all_pairs_backend="csr").all_pairs(
            min_sim=min_sim, group_of=group_of
        )
        assert csr.keys() == merge.keys()
        for pair, sim in merge.items():
            assert abs(sim - csr[pair]) <= TOLERANCE

    @needs_numpy
    def test_csr_values_are_plain_floats(self):
        _, sparse, _ = build(["alpha beta", "beta gamma"])
        table = SparseTfIdf(sparse.corpus, all_pairs_backend="csr").all_pairs()
        assert all(type(v) is float for v in table.values())

    @needs_numpy
    def test_golden_corpus_csr_matches_merge(self):
        data = golden()
        texts = [" ".join(tokens) for tokens in data["token_lists"]]
        corpus = TfIdfCorpus()
        for i, text in enumerate(texts):
            corpus.add_document(f"doc{i}", text)
        merge = SparseTfIdf(corpus, all_pairs_backend="merge").all_pairs()
        csr = SparseTfIdf(corpus, all_pairs_backend="csr").all_pairs()
        assert csr.keys() == merge.keys()
        worst = max(
            (abs(sim - csr[pair]) for pair, sim in merge.items()), default=0.0
        )
        assert worst <= TOLERANCE, f"max |csr - merge| = {worst}"


class TestEngineEquivalence:
    """Flipping ``sparse_tfidf`` must not move a single confidence."""

    def test_sparse_run_matrix_identical(self, orders_graph, notice_graph):
        plain = HarmonyEngine().match(orders_graph, notice_graph)
        sparse = HarmonyEngine(
            config=EngineConfig(sparse_tfidf=True)
        ).match(orders_graph, notice_graph)
        plain_cells = {(c.source_id, c.target_id): c.confidence
                       for c in plain.matrix.cells()}
        sparse_cells = {(c.source_id, c.target_id): c.confidence
                        for c in sparse.matrix.cells()}
        assert plain_cells.keys() == sparse_cells.keys()
        for pair, confidence in plain_cells.items():
            assert abs(confidence - sparse_cells[pair]) <= TOLERANCE, pair

    def test_sparse_composes_with_kernels(self, orders_graph, notice_graph):
        plain = HarmonyEngine().match(orders_graph, notice_graph)
        both = HarmonyEngine(
            config=EngineConfig(similarity_kernels=True, sparse_tfidf=True)
        ).match(orders_graph, notice_graph)
        plain_cells = {(c.source_id, c.target_id): c.confidence
                       for c in plain.matrix.cells()}
        for cell in both.matrix.cells():
            want = plain_cells[(cell.source_id, cell.target_id)]
            assert abs(cell.confidence - want) <= TOLERANCE

    def test_fast_preset_enables_sparse_tfidf(self):
        assert EngineConfig.fast().sparse_tfidf is True
        assert EngineConfig().sparse_tfidf is False
        assert EngineConfig.fast(sparse_tfidf=False).sparse_tfidf is False
