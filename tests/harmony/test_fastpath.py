"""Tests for the fast match path: blocking, caching, parallelism, sparse flooding."""

import pytest

from repro.core import ElementKind, SchemaElement
from repro.eval import evaluate_matrix, standard_suite
from repro.harmony import (
    BlockingConfig,
    BlockingIndex,
    CandidateBlocker,
    EngineConfig,
    HarmonyEngine,
    MatchContext,
    MatchSession,
    classic_flooding,
    evolution_closure,
    graph_delta,
)


def _pair_ids(pairs):
    return {(s.element_id, t.element_id) for s, t in pairs}


class TestBlocking:
    def test_ground_truth_survives_default_budget(self):
        """Recall property: blocking never drops a true correspondence
        that the exhaustive pipeline would have scored."""
        blocker = CandidateBlocker(BlockingConfig())
        for scenario in standard_suite():
            context = MatchContext(scenario.source, scenario.target)
            exhaustive = _pair_ids(context.candidate_pairs())
            blocked = _pair_ids(blocker.candidates(context).pairs)
            lost = (scenario.alignment.pairs & exhaustive) - blocked
            assert not lost, f"{scenario.name}: blocking lost {sorted(lost)}"

    def test_blocked_pairs_subset_of_exhaustive(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph)
        result = CandidateBlocker().candidates(context)
        assert _pair_ids(result.pairs) <= _pair_ids(context.candidate_pairs())
        assert result.total_pairs == len(context.candidate_pairs())

    def test_small_families_never_pruned(self, orders_graph, notice_graph):
        # every kind family in the fixtures is below the default budget,
        # so blocking must keep the full candidate set
        context = MatchContext(orders_graph, notice_graph)
        result = CandidateBlocker().candidates(context)
        assert _pair_ids(result.pairs) == _pair_ids(context.candidate_pairs())
        assert result.pruning_ratio == 0.0

    def test_budget_caps_large_families(self):
        scenario = standard_suite(seeds=(7,))[0]
        budget = 3
        context = MatchContext(scenario.source, scenario.target)
        result = CandidateBlocker(BlockingConfig(budget=budget)).candidates(context)
        per_source = {}
        for source_el, _ in result.pairs:
            per_source[source_el.element_id] = per_source.get(source_el.element_id, 0) + 1
        # the tie extension never admits more than twice the budget
        # (families smaller than the budget keep all members, hence no
        # lower bound here)
        assert all(n <= 2 * budget for n in per_source.values())
        assert result.pruning_ratio > 0.0

    def test_deterministic(self):
        scenario = standard_suite(seeds=(7,))[0]
        runs = []
        for _ in range(2):
            context = MatchContext(scenario.source, scenario.target)
            runs.append(CandidateBlocker().candidates(context).pairs)
        assert _pair_ids(runs[0]) == _pair_ids(runs[1])


class TestParallelVoters:
    def test_parallel_votes_identical_to_serial(self, orders_graph, notice_graph):
        serial = HarmonyEngine(config=EngineConfig(parallelism=1)).match(
            orders_graph, notice_graph)
        parallel = HarmonyEngine(config=EngineConfig(parallelism=4)).match(
            orders_graph, notice_graph)
        assert serial.votes == parallel.votes

    def test_parallel_matrix_identical_to_serial(self):
        scenario = standard_suite(seeds=(7,))[0]
        serial = HarmonyEngine(config=EngineConfig(parallelism=1)).match(
            scenario.source, scenario.target)
        parallel = HarmonyEngine(config=EngineConfig(parallelism=4)).match(
            scenario.source, scenario.target)
        serial_cells = {(c.source_id, c.target_id): c.confidence
                        for c in serial.matrix.cells()}
        parallel_cells = {(c.source_id, c.target_id): c.confidence
                          for c in parallel.matrix.cells()}
        assert serial_cells == parallel_cells


class TestFastEquivalence:
    @pytest.mark.parametrize("seed", [7, 42])
    def test_fast_f1_matches_default(self, seed):
        for scenario in standard_suite(seeds=(seed,)):
            default = HarmonyEngine().match(scenario.source, scenario.target)
            fast = HarmonyEngine(config=EngineConfig.fast()).match(
                scenario.source, scenario.target)
            f1_default = evaluate_matrix(default.matrix, scenario.alignment).f1
            f1_fast = evaluate_matrix(fast.matrix, scenario.alignment).f1
            assert abs(f1_default - f1_fast) <= 0.01, scenario.name

    def test_fast_run_reports_blocking(self, orders_graph, notice_graph):
        run = HarmonyEngine(config=EngineConfig.fast()).match(
            orders_graph, notice_graph)
        assert run.blocking is not None
        summary = "\n".join(run.stage_summary())
        assert "blocking" in summary


class TestContextReuse:
    def test_five_round_session_builds_context_once(self, orders_graph, notice_graph):
        engine = HarmonyEngine(config=EngineConfig(reuse_context=True))
        session = MatchSession(orders_graph, notice_graph, engine=engine)
        first = session.run_engine()
        assert not first.reused_context
        session.accept("orders/customer/first_name",
                       "notice/shippingNotice/recipientName/firstName")
        session.reject("orders/purchase_order/po_id",
                       "notice/shippingNotice/total")
        for _ in range(4):
            run = session.run_engine()
            assert run.reused_context
        assert len(session.runs) == 5
        assert engine.context_builds == 1

    def test_default_config_rebuilds_every_run(self, orders_graph, notice_graph):
        engine = HarmonyEngine()
        session = MatchSession(orders_graph, notice_graph, engine=engine)
        for _ in range(3):
            assert not session.run_engine().reused_context
        assert engine.context_builds == 3

    def test_graph_mutation_invalidates_context(self, orders_graph, notice_graph):
        from repro.core import ElementKind, SchemaElement

        engine = HarmonyEngine(config=EngineConfig(reuse_context=True))
        engine.match(orders_graph, notice_graph)
        orders_graph.add_child(
            "orders/customer",
            SchemaElement(element_id="orders/customer/fax", name="fax",
                          kind=ElementKind.ATTRIBUTE),
        )
        run = engine.match(orders_graph, notice_graph)
        assert not run.reused_context
        assert engine.context_builds == 2

    def test_reused_run_matches_fresh_engine(self, orders_graph, notice_graph):
        """Cached scores must reproduce what a cold engine computes when
        no feedback intervened."""
        engine = HarmonyEngine(config=EngineConfig(reuse_context=True))
        engine.match(orders_graph, notice_graph)
        warm = engine.match(orders_graph, notice_graph)
        cold = HarmonyEngine().match(orders_graph, notice_graph)
        warm_cells = {(c.source_id, c.target_id): c.confidence
                      for c in warm.matrix.cells()}
        cold_cells = {(c.source_id, c.target_id): c.confidence
                      for c in cold.matrix.cells()}
        assert warm_cells == pytest.approx(cold_cells)

    def test_learning_still_applies_with_reuse(self, orders_graph, notice_graph):
        """Word-weight learning mutates the corpus; cached documentation
        scores must be invalidated, not replayed."""
        engine = HarmonyEngine(config=EngineConfig(reuse_context=True))
        session = MatchSession(orders_graph, notice_graph, engine=engine)
        session.run_engine()
        session.accept("orders/customer/first_name",
                       "notice/shippingNotice/recipientName/firstName")
        rev_before = engine._last_context.corpus.weights_revision
        run = session.run_engine()
        assert run.reused_context
        assert engine._last_context.corpus.weights_revision > rev_before


class TestSparseFlooding:
    def test_full_restriction_equals_dense(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph)
        initial = {
            (s.element_id, t.element_id): 0.5
            for s, t in context.candidate_pairs()
        }
        everything = {
            (s.element_id, t.element_id)
            for s in orders_graph for t in notice_graph
        }
        dense = classic_flooding(orders_graph, notice_graph, initial)
        sparse = classic_flooding(orders_graph, notice_graph, initial,
                                  restrict_to=everything)
        assert sparse == pytest.approx(dense)

    def test_sparse_restriction_keeps_active_pairs(self, orders_graph, notice_graph):
        initial = {("orders/customer/first_name",
                    "notice/shippingNotice/recipientName/firstName"): 0.9}
        result = classic_flooding(orders_graph, notice_graph, initial,
                                  restrict_to=set(initial))
        assert set(initial) <= set(result)


class TestMatrixCellCount:
    def test_cell_count_matches_cells(self, orders_graph, notice_graph):
        run = HarmonyEngine().match(orders_graph, notice_graph)
        assert run.matrix.cell_count() == len(list(run.matrix.cells()))
        assert len(run.matrix) == run.matrix.cell_count()


def _ordered_pairs(result):
    return [(s.element_id, t.element_id) for s, t in result.pairs]


def _evolve(graph):
    """A deterministic mix of the evolutions blocking keys depend on:
    rename, re-documentation, add, leaf removal and a containment move."""
    from repro.core.graph import CONTAINMENT_LABELS, CONTAINS_ELEMENT

    evolved = graph.copy()
    ids = [e.element_id for e in evolved if e.element_id != evolved.root.element_id]
    renamed = ids[0]
    evolved.element(renamed).name += "_renamed"
    evolved.revision += 1
    redocumented = ids[1]
    evolved.element(redocumented).documentation = "completely fresh words here"
    evolved.revision += 1
    evolved.add_child(
        renamed, SchemaElement(f"{graph.name}/brand_new", "brandNew", ElementKind.ATTRIBUTE)
    )
    leaf = next(i for i in reversed(ids) if not evolved.children(i))
    evolved.remove_element(leaf)
    movable = next(
        (
            i for i in ids[2:]
            if i in evolved and not evolved.children(i)
            and evolved.parent(i) is not None
            and evolved.parent(i).element_id not in (renamed, evolved.root.element_id)
        ),
        None,
    )
    if movable is not None:
        for edge in list(evolved.in_edges(movable)):
            if edge.label in CONTAINMENT_LABELS:
                evolved.remove_edge(edge)
        evolved.add_edge(renamed, CONTAINS_ELEMENT, movable)
    return evolved


class TestBlockingIndex:
    def test_index_backed_retrieval_identical(self, orders_graph, notice_graph):
        """Cold index-backed retrieval == ad-hoc retrieval, order included."""
        blocker = CandidateBlocker(BlockingConfig())
        context = MatchContext(orders_graph, notice_graph)
        index = BlockingIndex()
        indexed = blocker.candidates(context, index)
        adhoc = blocker.candidates(context)
        assert _ordered_pairs(indexed) == _ordered_pairs(adhoc)
        assert indexed.total_pairs == adhoc.total_pairs
        assert index.builds == 1 and index.patches == 0

    def test_epoch_hit_skips_rebuild(self, orders_graph, notice_graph):
        blocker = CandidateBlocker(BlockingConfig())
        context = MatchContext(orders_graph, notice_graph)
        index = BlockingIndex()
        first = blocker.candidates(context, index)
        second = blocker.candidates(context, index)
        assert _ordered_pairs(first) == _ordered_pairs(second)
        assert index.builds == 1 and index.hits == 1 and index.patches == 0

    def test_patched_index_identical_to_cold_build(self, orders_graph, notice_graph):
        """After an evolution, the patched index retrieves exactly what a
        from-scratch build on the evolved graphs retrieves."""
        blocker = CandidateBlocker(BlockingConfig())
        index = BlockingIndex()
        blocker.candidates(MatchContext(orders_graph, notice_graph), index)

        evolved = _evolve(orders_graph)
        delta = graph_delta(orders_graph, evolved)
        closure = evolution_closure(orders_graph, evolved, delta)
        index.note_evolution(closure | delta.removed, set())

        evolved_context = MatchContext(evolved, notice_graph)
        warm = blocker.candidates(evolved_context, index)
        cold = blocker.candidates(evolved_context)
        assert _ordered_pairs(warm) == _ordered_pairs(cold)
        assert index.builds == 1 and index.patches == 1

    def test_target_side_evolution_patches(self, orders_graph, notice_graph):
        blocker = CandidateBlocker(BlockingConfig())
        index = BlockingIndex()
        blocker.candidates(MatchContext(orders_graph, notice_graph), index)

        evolved = _evolve(notice_graph)
        delta = graph_delta(notice_graph, evolved)
        closure = evolution_closure(notice_graph, evolved, delta)
        index.note_evolution(set(), closure | delta.removed)

        evolved_context = MatchContext(orders_graph, evolved)
        warm = blocker.candidates(evolved_context, index)
        cold = blocker.candidates(evolved_context)
        assert _ordered_pairs(warm) == _ordered_pairs(cold)
        assert index.patches == 1

    def test_unannounced_revision_change_rebuilds(self, orders_graph, notice_graph):
        """A revision bump without note_evolution must rebuild cold, never
        serve stale keys."""
        blocker = CandidateBlocker(BlockingConfig())
        index = BlockingIndex()
        blocker.candidates(MatchContext(orders_graph, notice_graph), index)
        evolved = _evolve(orders_graph)
        evolved_context = MatchContext(evolved, notice_graph)
        warm = blocker.candidates(evolved_context, index)
        cold = blocker.candidates(evolved_context)
        assert _ordered_pairs(warm) == _ordered_pairs(cold)
        assert index.builds == 2 and index.patches == 0

    def test_key_config_change_rebuilds(self, orders_graph, notice_graph):
        index = BlockingIndex()
        context = MatchContext(orders_graph, notice_graph)
        CandidateBlocker(BlockingConfig()).candidates(context, index)
        reconfigured = CandidateBlocker(BlockingConfig(ngram=4))
        result = reconfigured.candidates(context, index)
        assert index.builds == 2  # ngram feeds the keys: full rebuild
        assert _ordered_pairs(result) == _ordered_pairs(
            reconfigured.candidates(context)
        )

    def test_budget_change_reuses_index(self, orders_graph, notice_graph):
        """The recall budget is retrieval-time only — no re-keying."""
        index = BlockingIndex()
        context = MatchContext(orders_graph, notice_graph)
        CandidateBlocker(BlockingConfig()).candidates(context, index)
        wider = CandidateBlocker(BlockingConfig(budget=20))
        result = wider.candidates(context, index)
        assert index.builds == 1 and index.hits == 1
        assert _ordered_pairs(result) == _ordered_pairs(wider.candidates(context))

    def test_engine_patches_blocking_on_rematch(self, orders_graph, notice_graph):
        engine = HarmonyEngine(config=EngineConfig.fast())
        engine.match(orders_graph, notice_graph)
        evolved = _evolve(orders_graph)
        engine.rematch(evolved, notice_graph)
        stats = engine.fastpath_stats()
        assert stats["blocking_builds"] == 1
        assert stats["blocking_patches"] == 1
        assert stats["rematch_patches"] == 1
