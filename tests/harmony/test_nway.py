"""Registry-scale N-way matching: fan-out, sharding, pruning.

The load-bearing property is *determinism*: the process-pool path must
be bit-identical to the serial loop, and clustering must not depend on
the order pair matrices arrive in — otherwise ``parallelism`` would be a
semantics knob, not a performance knob.
"""

import pytest

from repro.core.errors import SchemaError
from repro.eval import ScenarioConfig, commerce_model, generate_scenario
from repro.harmony import (
    MultiSourceResult,
    PairSelection,
    cluster_elements,
    cluster_pair_f1,
    integrate_sources,
    match_all_pairs,
    select_pairs,
    snapshot_corpus,
)
from repro.harmony.engine import EngineConfig
from repro.harmony.multisource import _resolve_pair_list, _UnionFind


@pytest.fixture(scope="module")
def sources():
    """Four variants of one base model — four 'source systems'."""
    base = commerce_model()
    out = []
    for seed in (101, 202, 303, 404):
        scenario = generate_scenario(
            base, ScenarioConfig(seed=seed, drop_rate=0.0, noise_attributes=0.0)
        )
        out.append(scenario.target.copy(name=f"sys{seed}"))
    return out


def _cells(matrix):
    return {(c.source_id, c.target_id): c.confidence for c in matrix.cells()}


@pytest.fixture(scope="module")
def serial_matrices(sources):
    return match_all_pairs(sources, engine_config=EngineConfig.fast())


class TestParallelFanOut:
    def test_parallel_bit_identical_to_serial(self, sources, serial_matrices):
        parallel = match_all_pairs(
            sources, engine_config=EngineConfig.fast(), parallelism=2
        )
        # same pairs, in the same canonical enumeration order
        assert list(parallel) == list(serial_matrices)
        for key in serial_matrices:
            left, right = _cells(serial_matrices[key]), _cells(parallel[key])
            assert left.keys() == right.keys()
            assert all(abs(left[k] - right[k]) <= 1e-12 for k in left)

    def test_parallel_clusters_and_target_identical(self, sources):
        config = EngineConfig.fast()
        serial = integrate_sources(sources, engine_config=config)
        parallel = integrate_sources(sources, engine_config=config, parallelism=2)
        assert serial.clusters == parallel.clusters
        assert cluster_pair_f1(parallel.clusters, serial.clusters) == 1.0
        serial_ids = sorted(e.element_id for e in serial.target)
        parallel_ids = sorted(e.element_id for e in parallel.target)
        assert serial_ids == parallel_ids

    def test_chunk_size_does_not_change_results(self, sources, serial_matrices):
        chunked = match_all_pairs(
            sources, engine_config=EngineConfig.fast(), parallelism=2,
            chunk_size=1,
        )
        for key in serial_matrices:
            assert _cells(serial_matrices[key]) == _cells(chunked[key])


class TestCorpusSharding:
    def test_snapshot_covers_documented_elements(self, sources):
        snapshot = snapshot_corpus(sources)
        documented = sum(
            1 for g in sources for e in g if e.documentation
        )
        assert len(snapshot) == documented
        graph = sources[0]
        element = next(e for e in graph if e.documentation)
        assert f"{graph.name}::{element.element_id}" in snapshot

    def test_shared_corpus_bit_identical_to_rebuilt(self, sources, serial_matrices):
        rebuilt = match_all_pairs(
            sources, engine_config=EngineConfig.fast(), share_corpus=False
        )
        for key in serial_matrices:
            left, right = _cells(serial_matrices[key]), _cells(rebuilt[key])
            assert left.keys() == right.keys()
            assert all(abs(left[k] - right[k]) <= 1e-12 for k in left)


class TestPairSelection:
    def test_hubs_pair_with_every_schema(self, sources):
        selection = select_pairs(sources, hub_count=1, partners_per_schema=0)
        assert len(selection.hubs) == 1
        hub = selection.hubs[0]
        expected = {
            (min(i, hub), max(i, hub))
            for i in range(len(sources)) if i != hub
        }
        assert set(selection.pairs) == expected

    def test_budget_is_a_floor_not_a_cap(self, sources):
        guaranteed = select_pairs(sources, hub_count=2, partners_per_schema=3)
        budgeted = select_pairs(
            sources, pair_budget=1, hub_count=2, partners_per_schema=3
        )
        # hub/partner guarantees survive a budget smaller than them
        assert set(budgeted.pairs) >= set(guaranteed.pairs)

    def test_budget_fills_with_strongest_pairs(self, sources):
        total = len(sources) * (len(sources) - 1) // 2
        selection = select_pairs(
            sources, pair_budget=total, hub_count=0, partners_per_schema=0
        )
        assert selection.kept_pairs == total
        assert selection.pruning_ratio == 0.0

    def test_selection_is_deterministic(self, sources):
        one = select_pairs(sources, pair_budget=4)
        two = select_pairs(sources, pair_budget=4)
        assert one.pairs == two.pairs
        assert one.hubs == two.hubs
        assert one.similarity == two.similarity

    def test_snapshot_does_not_change_selection(self, sources):
        plain = select_pairs(sources, pair_budget=4)
        shared = select_pairs(
            sources, pair_budget=4, snapshot=snapshot_corpus(sources)
        )
        assert plain.pairs == shared.pairs

    def test_match_all_pairs_honors_selection(self, sources):
        selection = select_pairs(sources, hub_count=1, partners_per_schema=0)
        matrices = match_all_pairs(
            sources, engine_config=EngineConfig.fast(), selection=selection
        )
        expected = [
            (sources[i].name, sources[j].name) for i, j in selection.pairs
        ]
        assert list(matrices) == expected

    def test_raw_index_pairs_accepted(self, sources):
        matrices = match_all_pairs(
            sources, engine_config=EngineConfig.fast(), selection=[(1, 0)]
        )
        assert list(matrices) == [(sources[0].name, sources[1].name)]

    def test_invalid_pair_rejected(self, sources):
        with pytest.raises(SchemaError):
            _resolve_pair_list(sources, [(0, 99)])
        with pytest.raises(SchemaError):
            _resolve_pair_list(sources, [(2, 2)])

    def test_pruned_clusters_track_exhaustive(self, sources, serial_matrices):
        exhaustive = cluster_elements(sources, serial_matrices)
        selection = select_pairs(sources, hub_count=2, partners_per_schema=2)
        pruned_matrices = {
            key: serial_matrices[key]
            for key in (
                (sources[i].name, sources[j].name) for i, j in selection.pairs
            )
        }
        pruned = cluster_elements(sources, pruned_matrices)
        # variants of one base: hub transitivity keeps the concepts together
        assert cluster_pair_f1(pruned, exhaustive) >= 0.98

    def test_integrate_sources_pair_budget(self, sources):
        result = integrate_sources(
            sources, engine_config=EngineConfig.fast(), pair_budget=4
        )
        assert isinstance(result.selection, PairSelection)
        assert set(result.matrices) == {
            (sources[i].name, sources[j].name)
            for i, j in result.selection.pairs
        }


class TestClusterPairF1:
    def test_identical_clusterings(self):
        clusters = [[("a", "1"), ("b", "1")], [("a", "2")]]
        assert cluster_pair_f1(clusters, clusters) == 1.0

    def test_all_singletons(self):
        singles = [[("a", "1")], [("b", "1")]]
        assert cluster_pair_f1(singles, singles) == 1.0

    def test_disjoint_pairings(self):
        left = [[("a", "1"), ("b", "1")], [("a", "2"), ("b", "2")]]
        right = [[("a", "1"), ("b", "2")], [("a", "2"), ("b", "1")]]
        assert cluster_pair_f1(left, right) == 0.0

    def test_partial_overlap(self):
        reference = [[("a", "1"), ("b", "1"), ("c", "1")]]  # 3 pairs
        predicted = [[("a", "1"), ("b", "1")], [("c", "1")]]  # 1 pair, a hit
        f1 = cluster_pair_f1(predicted, reference)
        assert f1 == pytest.approx(2 * 1.0 * (1 / 3) / (1.0 + 1 / 3))


class TestOrderIndependence:
    def test_cluster_elements_ignores_matrix_dict_order(self, sources, serial_matrices):
        forward = cluster_elements(sources, serial_matrices)
        reversed_dict = dict(reversed(list(serial_matrices.items())))
        assert list(reversed_dict) != list(serial_matrices)
        assert cluster_elements(sources, reversed_dict) == forward


class TestUnionFindMemoization:
    def test_members_cached_until_mutation(self):
        uf = _UnionFind()
        uf.union(("a", "1"), ("b", "1"))
        first = uf.members()
        assert uf.members() is first  # cache hit, no rebuild
        uf.find(("c", "1"))  # new ref invalidates
        second = uf.members()
        assert second is not first
        assert ("c", "1") in second
        uf.union(("c", "1"), ("a", "1"))  # merge invalidates
        third = uf.members()
        assert third is not second
        assert sorted(third[("a", "1")]) == [("a", "1"), ("b", "1"), ("c", "1")]

    def test_noop_union_keeps_cache(self):
        uf = _UnionFind()
        uf.union(("a", "1"), ("b", "1"))
        first = uf.members()
        uf.union(("a", "1"), ("b", "1"))  # already joined: no mutation
        assert uf.members() is first


class TestClusterOfIndex:
    def test_lookup_and_miss(self):
        result = MultiSourceResult(
            clusters=[[("a", "1"), ("b", "1")], [("a", "2")]]
        )
        assert result.cluster_of("a", "1") == [("a", "1"), ("b", "1")]
        assert result.cluster_of("a", "2") == [("a", "2")]
        assert result.cluster_of("z", "9") is None

    def test_index_rebuilds_when_clusters_replaced(self):
        result = MultiSourceResult(clusters=[[("a", "1")]])
        assert result.cluster_of("a", "1") == [("a", "1")]
        result.clusters = [[("a", "1"), ("b", "7")]]
        assert result.cluster_of("b", "7") == [("a", "1"), ("b", "7")]
