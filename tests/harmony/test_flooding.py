"""Tests for similarity flooding (classic and directional)."""

import pytest

from repro.core import ElementKind, SchemaElement, SchemaGraph
from repro.harmony import (
    DirectionalConfig,
    FloodingConfig,
    classic_flooding,
    directional_flooding,
    flooded_ranking,
)


def _parallel_graphs():
    """Two isomorphic entity/attribute trees with unrelated names."""
    def build(name, entity, attrs):
        graph = SchemaGraph.create(name)
        graph.add_child(name, SchemaElement(f"{name}/{entity}", entity, ElementKind.ENTITY),
                        label="contains-element")
        for attr in attrs:
            graph.add_child(f"{name}/{entity}",
                            SchemaElement(f"{name}/{entity}/{attr}", attr, ElementKind.ATTRIBUTE))
        return graph

    source = build("s", "Person", ["alpha", "beta"])
    target = build("t", "Human", ["uno", "dos"])
    return source, target


class TestClassicFlooding:
    def test_structure_propagates_similarity(self):
        source, target = _parallel_graphs()
        # seed only the attribute pair (alpha, uno)
        initial = {("s/Person/alpha", "t/Human/uno"): 1.0}
        result = classic_flooding(source, target, initial)
        # similarity flows to the parent pair through the shared edge label
        assert result[("s/Person", "t/Human")] > 0.0

    def test_result_normalized(self):
        source, target = _parallel_graphs()
        initial = {("s/Person/alpha", "t/Human/uno"): 0.5}
        result = classic_flooding(source, target, initial)
        assert max(result.values()) == pytest.approx(1.0)
        assert all(v >= 0.0 for v in result.values())

    def test_converges_quickly_on_small_graphs(self):
        source, target = _parallel_graphs()
        config = FloodingConfig(max_iterations=500, epsilon=1e-6)
        result = classic_flooding(source, target, {("s/Person", "t/Human"): 1.0}, config)
        assert result  # no blow-up, fixpoint reached

    def test_empty_seed(self):
        source, target = _parallel_graphs()
        result = classic_flooding(source, target, {})
        assert all(v == 0.0 for v in result.values())

    def test_ranking_helper(self):
        source, target = _parallel_graphs()
        result = classic_flooding(source, target, {("s/Person", "t/Human"): 1.0})
        top = flooded_ranking(result, top=3)
        assert len(top) <= 3
        assert top[0][1] >= top[-1][1]


class TestDirectionalFlooding:
    def test_positive_propagates_up(self):
        """Matching attributes boost their parents (Section 4)."""
        source, target = _parallel_graphs()
        scores = {
            ("s/Person", "t/Human"): 0.1,
            ("s/Person/alpha", "t/Human/uno"): 0.9,
            ("s/Person/beta", "t/Human/dos"): 0.8,
        }
        adjusted = directional_flooding(source, target, scores)
        assert adjusted[("s/Person", "t/Human")] > 0.1

    def test_negative_trickles_down(self):
        """'Two attributes are unlikely to match if their parent entities
        do not match.'"""
        source, target = _parallel_graphs()
        scores = {
            ("s/Person", "t/Human"): -0.8,
            ("s/Person/alpha", "t/Human/uno"): 0.5,
        }
        adjusted = directional_flooding(source, target, scores)
        assert adjusted[("s/Person/alpha", "t/Human/uno")] < 0.5

    def test_positive_does_not_trickle_down(self):
        source, target = _parallel_graphs()
        scores = {
            ("s/Person", "t/Human"): 0.9,
            ("s/Person/alpha", "t/Human/uno"): 0.2,
        }
        adjusted = directional_flooding(source, target, scores)
        assert adjusted[("s/Person/alpha", "t/Human/uno")] == pytest.approx(0.2)

    def test_negative_does_not_propagate_up(self):
        source, target = _parallel_graphs()
        scores = {
            ("s/Person", "t/Human"): 0.3,
            ("s/Person/alpha", "t/Human/uno"): -0.9,
            ("s/Person/beta", "t/Human/dos"): -0.9,
        }
        adjusted = directional_flooding(source, target, scores)
        assert adjusted[("s/Person", "t/Human")] == pytest.approx(0.3)

    def test_pinned_pairs_untouched(self):
        """Section 4.3: the engine never modifies decided links."""
        source, target = _parallel_graphs()
        scores = {
            ("s/Person", "t/Human"): -0.8,
            ("s/Person/alpha", "t/Human/uno"): 1.0,
        }
        adjusted = directional_flooding(
            source, target, scores, pinned={("s/Person/alpha", "t/Human/uno")}
        )
        assert adjusted[("s/Person/alpha", "t/Human/uno")] == 1.0

    def test_scores_stay_in_machine_range(self):
        source, target = _parallel_graphs()
        scores = {
            ("s/Person", "t/Human"): 0.95,
            ("s/Person/alpha", "t/Human/uno"): 0.95,
            ("s/Person/beta", "t/Human/dos"): 0.95,
        }
        config = DirectionalConfig(up_rate=1.0, down_rate=1.0, iterations=5)
        adjusted = directional_flooding(source, target, scores, config=config)
        assert all(-0.99 <= v <= 0.99 for v in adjusted.values())

    def test_zero_iterations_is_identity(self):
        source, target = _parallel_graphs()
        scores = {("s/Person", "t/Human"): 0.4}
        config = DirectionalConfig(iterations=0)
        assert directional_flooding(source, target, scores, config=config) == scores
