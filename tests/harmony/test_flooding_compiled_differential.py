"""Differential harness: compiled flooding vs the reference fixpoints.

``classic_flooding`` / ``directional_flooding`` are the clarity-first
references — dict-keyed PCG nodes, per-iteration dict allocation.
``CompiledPCG`` / ``FloodingState`` / ``directional_flooding_compiled``
are the edge-array mirrors the fast path runs on (interned int ids,
parallel ``array('l')``/``array('d')`` edge arrays, preallocated
buffers).

This file is what lets the engine flip between them without a
correctness argument in prose:

* cold compiled runs are *bit-identical* to the reference — the edge
  arrays are flattened from the reference adjacency in its exact
  iteration order, so every float accumulates in the same sequence;
* a *patched* PCG (incremental rematch after schema evolution) is
  structurally identical to a fresh compile — same node set, same
  per-node/per-label successor multisets — and its fixpoint agrees with
  a cold run to ``TOLERANCE`` (drift only from edge-order float
  reassociation);
* warm-start semantics: a warm run reuses *structure only* and always
  iterates from σ⁰, so after any evolution the engine's warm rematch
  matrix equals a cold engine's matrix on the evolved schemas.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElementKind, SchemaElement, SchemaGraph
from repro.core.graph import CONTAINMENT_LABELS, CONTAINS_ELEMENT
from repro.harmony import EngineConfig, HarmonyEngine
from repro.harmony.flooding import (
    DirectionalConfig,
    FloodingConfig,
    FloodingState,
    _pcg_edges,
    classic_flooding,
    compile_pcg,
    directional_flooding,
    directional_flooding_compiled,
)

TOLERANCE = 1e-12

seeds = st.integers(min_value=0, max_value=10_000)


# -- generators ---------------------------------------------------------------


def _random_graph(name, seed, size=14):
    """A random containment tree with occasional extra (non-tree) edges."""
    rng = random.Random(seed)
    graph = SchemaGraph.create(name)
    ids = [name]
    for i in range(size):
        element_id = f"{name}/e{i}"
        kind = (
            ElementKind.ENTITY if i % 4 == 0
            else ElementKind.ATTRIBUTE if i % 4 in (1, 2)
            else ElementKind.DOMAIN
        )
        element = SchemaElement(
            element_id, f"elem{i}", kind,
            documentation=f"doc {i} alpha beta" if i % 3 == 0 else "",
        )
        graph.add_child(rng.choice(ids), element)
        ids.append(element_id)
    # a few cross edges exercise non-containment labels in the PCG
    for _ in range(3):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            graph.add_edge(a, "references", b)
    return graph, ids


def _random_initial(source_ids, target_ids, seed, n=25, signed=False):
    rng = random.Random(seed)
    low = -1.0 if signed else 0.0
    return {
        (rng.choice(source_ids), rng.choice(target_ids)): rng.uniform(low, 1.0)
        for _ in range(n)
    }


def _random_evolution(graph, ids, seed, ops=4):
    """Apply a few random mutations to a copy of *graph*.

    Covers the cases the incremental path must patch: renames (no PCG
    change), re-documentation (corpus change), element add/remove, and
    pure containment rewires (edge-only change, the regression case).
    """
    rng = random.Random(seed)
    evolved = graph.copy()
    mutable = [i for i in ids if i != graph.name]
    for k in range(ops):
        op = rng.choice(["rename", "redoc", "add", "remove", "move"])
        victim = rng.choice(mutable)
        if victim not in evolved:
            continue
        if op == "rename":
            evolved.element(victim).name += f"_v{k}"
            evolved.revision += 1
        elif op == "redoc":
            evolved.element(victim).documentation = f"new words {seed} {k}"
            evolved.revision += 1
        elif op == "add":
            new_id = f"{graph.name}/new{k}"
            if new_id not in evolved:
                evolved.add_child(
                    victim,
                    SchemaElement(new_id, f"fresh{k}", ElementKind.ATTRIBUTE),
                )
        elif op == "remove":
            # keep the graph non-trivial; never remove a subtree root with
            # many descendants, just leaves
            if not evolved.children(victim):
                evolved.remove_element(victim)
        elif op == "move":
            new_parent = rng.choice(mutable)
            if new_parent == victim or new_parent not in evolved:
                continue
            descendants = {e.element_id for e in evolved.subtree(victim)}
            if new_parent in descendants:
                continue
            for edge in evolved.in_edges(victim):
                if edge.label in CONTAINMENT_LABELS:
                    evolved.remove_edge(edge)
            evolved.add_edge(new_parent, CONTAINS_ELEMENT, victim)
    return evolved


# -- classic: compiled vs reference -------------------------------------------


class TestCompiledClassic:
    @given(seeds, seeds, seeds)
    @settings(max_examples=40, deadline=None)
    def test_cold_compiled_is_bit_identical(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        reference = classic_flooding(source, target, initial)
        compiled = compile_pcg(source, target).run(initial)
        assert compiled == reference  # exact, not approximate

    @given(seeds, seeds, seeds)
    @settings(max_examples=40, deadline=None)
    def test_sparse_restriction_matches(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        restrict = set(initial)
        reference = classic_flooding(source, target, initial, restrict_to=restrict)
        compiled = FloodingState().flood(source, target, initial, restrict_to=restrict)
        assert compiled == reference

    def test_epoch_reuse_skips_recompile(self):
        source, sids = _random_graph("s", 5)
        target, tids = _random_graph("t", 6)
        initial = _random_initial(sids, tids, 7)
        state = FloodingState()
        first = state.flood(source, target, initial, restrict_to=set(initial))
        second = state.flood(source, target, initial, restrict_to=set(initial))
        assert first == second
        assert state.compiles == 1 and state.patches == 0

    def test_empty_initial_and_disjoint_graphs(self):
        source, _ = _random_graph("s", 1)
        target, _ = _random_graph("t", 2)
        assert compile_pcg(source, target).run({}) == classic_flooding(
            source, target, {}
        )
        lone = {("s/nowhere", "t/nowhere"): 0.7}
        assert compile_pcg(source, target).run(lone) == classic_flooding(
            source, target, lone
        )

    @given(seeds, seeds, seeds, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_custom_config_matches(self, s1, s2, s3, iterations):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        config = FloodingConfig(max_iterations=iterations, epsilon=0.0)
        reference = classic_flooding(source, target, initial, config)
        compiled = compile_pcg(source, target).run(initial, config)
        assert compiled == reference


# -- directional: compiled vs reference ---------------------------------------


class TestCompiledDirectional:
    @given(seeds, seeds, seeds, st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_compiled_is_bit_identical(self, s1, s2, s3, pin_count):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        scores = _random_initial(sids, tids, s3, signed=True)
        pinned = set(list(scores)[:pin_count])
        reference = directional_flooding(source, target, scores, pinned=pinned)
        compiled = directional_flooding_compiled(source, target, scores, pinned=pinned)
        assert compiled == reference

    @given(seeds, seeds, seeds)
    @settings(max_examples=20, deadline=None)
    def test_many_iterations_match(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        scores = _random_initial(sids, tids, s3, signed=True)
        config = DirectionalConfig(up_rate=0.45, down_rate=0.2, iterations=6)
        assert directional_flooding_compiled(
            source, target, scores, config=config
        ) == directional_flooding(source, target, scores, config=config)


# -- golden graphs ------------------------------------------------------------


def _golden_pair():
    """A frozen, handcrafted pair exercising every PCG edge label class:
    containment, has-domain, contains-value and references."""
    def build(name, entity, attrs, values):
        graph = SchemaGraph.create(name)
        entity_id = f"{name}/{entity}"
        graph.add_child(name, SchemaElement(entity_id, entity, ElementKind.ENTITY),
                        label="contains-element")
        domain_id = f"{name}/dom"
        graph.add_child(name, SchemaElement(domain_id, "codes", ElementKind.DOMAIN),
                        label="contains-element")
        for value in values:
            graph.add_child(domain_id,
                            SchemaElement(f"{domain_id}/{value}", value,
                                          ElementKind.DOMAIN_VALUE))
        for i, attr in enumerate(attrs):
            attr_id = f"{entity_id}/{attr}"
            graph.add_child(entity_id,
                            SchemaElement(attr_id, attr, ElementKind.ATTRIBUTE))
            if i == 0:
                graph.add_edge(attr_id, "has-domain", domain_id)
        return graph

    source = build("gs", "Person", ["code", "age", "name"], ["a", "b"])
    target = build("gt", "Human", ["kind", "years"], ["x", "y"])
    source.add_edge("gs/Person/name", "references", "gs/Person/age")
    target.add_edge("gt/Human/kind", "references", "gt/Human/years")
    return source, target


GOLDEN_INITIAL = {
    ("gs/Person", "gt/Human"): 0.8,
    ("gs/Person/code", "gt/Human/kind"): 0.6,
    ("gs/Person/age", "gt/Human/years"): 0.55,
    ("gs/dom", "gt/dom"): 0.3,
    ("gs/dom/a", "gt/dom/x"): 0.2,
}


class TestGoldenGraphs:
    def test_classic_compiled_matches_reference(self):
        source, target = _golden_pair()
        reference = classic_flooding(source, target, GOLDEN_INITIAL)
        compiled = compile_pcg(source, target).run(GOLDEN_INITIAL)
        assert compiled == reference
        assert max(compiled.values()) == pytest.approx(1.0)

    def test_directional_compiled_matches_reference(self):
        source, target = _golden_pair()
        scores = dict(GOLDEN_INITIAL)
        scores[("gs/Person/name", "gt/Human/kind")] = -0.7
        assert directional_flooding_compiled(
            source, target, scores
        ) == directional_flooding(source, target, scores)

    def test_compiled_arrays_mirror_reference_adjacency(self):
        """The flattened edge arrays are the reference adjacency verbatim."""
        source, target = _golden_pair()
        adjacency = _pcg_edges(source, target)
        compiled = compile_pcg(source, target)
        rebuilt = {}
        for k in range(compiled.edge_count):
            node = compiled.nodes[compiled.edge_src[k]]
            neighbor = compiled.nodes[compiled.edge_dst[k]]
            rebuilt.setdefault(node, []).append((neighbor, compiled.edge_weight[k]))
        assert rebuilt == {n: list(neigh) for n, neigh in adjacency.items()}


# -- incremental patch: warm vs cold ------------------------------------------


def _structure_of(compiled):
    """Order-insensitive view of the PCG structure: node → label →
    successor multiset."""
    return {
        node: {
            label: sorted(successors)
            for label, successors in by_label.items()
        }
        for node, by_label in compiled.out_by_label.items()
    }


class TestIncrementalPatch:
    @given(seeds, seeds, seeds, seeds)
    @settings(max_examples=40, deadline=None)
    def test_patched_pcg_equals_fresh_compile(self, s1, s2, s3, s4):
        from repro.harmony import graph_delta

        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        restrict = set(initial)

        state = FloodingState()
        state.flood(source, target, initial, restrict_to=restrict)

        evolved = _random_evolution(source, sids, s4)
        delta = graph_delta(source, evolved)
        state.note_evolution(delta.structural | delta.added | delta.removed, ())
        warm = state.flood(evolved, target, initial, restrict_to=restrict)
        assert state.patches == 1 and state.compiles == 1

        fresh = compile_pcg(evolved, target, restrict_to=restrict)
        assert _structure_of(state.compiled) == _structure_of(fresh)
        assert set(state.compiled.node_index) == set(fresh.node_index)

        cold = classic_flooding(evolved, target, initial, restrict_to=restrict)
        assert set(warm) == set(cold)
        for pair, value in warm.items():
            assert abs(value - cold[pair]) <= TOLERANCE

    @given(seeds, seeds, seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_patched_full_pcg_equals_fresh_compile(self, s1, s2, s3, s4):
        """Same, without the sparse restriction (no frontier delta)."""
        from repro.harmony import graph_delta

        source, sids = _random_graph("s", s1, size=8)
        target, tids = _random_graph("t", s2, size=8)
        initial = _random_initial(sids, tids, s3, n=12)

        state = FloodingState()
        state.flood(source, target, initial)
        evolved = _random_evolution(source, sids, s4)
        delta = graph_delta(source, evolved)
        state.note_evolution(delta.structural | delta.added | delta.removed, ())
        warm = state.flood(evolved, target, initial)
        assert state.patches == 1

        fresh = compile_pcg(evolved, target)
        assert _structure_of(state.compiled) == _structure_of(fresh)
        cold = classic_flooding(evolved, target, initial)
        assert set(warm) == set(cold)
        for pair, value in warm.items():
            assert abs(value - cold[pair]) <= TOLERANCE

    def test_containment_only_rewire_is_patched(self):
        """Regression: moving an element between parents changes *edges
        only* — the flooding state must still invalidate and repatch."""
        from repro.harmony import graph_delta

        source, sids = _random_graph("s", 11)
        target, tids = _random_graph("t", 12)
        initial = _random_initial(sids, tids, 13)
        restrict = set(initial)

        state = FloodingState()
        state.flood(source, target, initial, restrict_to=restrict)

        evolved = source.copy()
        victim = next(
            i for i in sids[1:]
            if i in evolved and not evolved.children(i)
        )
        old_parent = evolved.parent(victim).element_id
        new_parent = next(
            i for i in sids
            if i in evolved and i not in (victim, old_parent)
            and evolved.element(i).kind is not ElementKind.DOMAIN_VALUE
        )
        for edge in evolved.in_edges(victim):
            if edge.label in CONTAINMENT_LABELS:
                evolved.remove_edge(edge)
        evolved.add_edge(new_parent, CONTAINS_ELEMENT, victim)

        delta = graph_delta(source, evolved)
        assert not delta.added and not delta.removed and not delta.changed
        assert delta.structural  # the whole point: edge-only evolution
        state.note_evolution(delta.structural, ())
        warm = state.flood(evolved, target, initial, restrict_to=restrict)
        assert state.patches == 1
        fresh = compile_pcg(evolved, target, restrict_to=restrict)
        assert _structure_of(state.compiled) == _structure_of(fresh)
        cold = classic_flooding(evolved, target, initial, restrict_to=restrict)
        for pair, value in warm.items():
            assert abs(value - cold[pair]) <= TOLERANCE


# -- engine level: warm rematch == cold match ---------------------------------


def _cells(matrix):
    return {
        (c.source_id, c.target_id): (c.confidence, c.is_user_defined)
        for c in matrix.cells()
    }


class TestEngineWarmVsCold:
    @given(seeds, seeds, seeds)
    @settings(max_examples=10, deadline=None)
    def test_rematch_matrix_identical_to_cold(self, s1, s2, s4):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        evolved = _random_evolution(source, sids, s4)

        warm = HarmonyEngine(config=EngineConfig.fast())
        warm.match(source, target)
        warm_run = warm.rematch(evolved, target)
        cold = HarmonyEngine(config=EngineConfig.fast())
        cold_run = cold.match(evolved, target)
        assert _cells(warm_run.matrix) == _cells(cold_run.matrix)
        assert warm.rematch_patches == 1
        assert warm_run.reused_context

    @given(seeds, seeds, seeds)
    @settings(max_examples=6, deadline=None)
    def test_rematch_identical_under_classic_flooding(self, s1, s2, s4):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        evolved = _random_evolution(source, sids, s4)
        config = dict(flooding="classic")

        warm = HarmonyEngine(config=EngineConfig.fast(**config))
        warm.match(source, target)
        warm_run = warm.rematch(evolved, target)
        cold = HarmonyEngine(config=EngineConfig.fast(**config))
        cold_run = cold.match(evolved, target)
        warm_cells = _cells(warm_run.matrix)
        cold_cells = _cells(cold_run.matrix)
        assert set(warm_cells) == set(cold_cells)
        for pair, (confidence, decided) in warm_cells.items():
            cold_conf, cold_decided = cold_cells[pair]
            assert decided == cold_decided
            assert abs(confidence - cold_conf) <= TOLERANCE

    def test_rematch_of_target_side(self):
        source, sids = _random_graph("s", 21)
        target, tids = _random_graph("t", 22)
        evolved = _random_evolution(target, tids, 23)

        warm = HarmonyEngine(config=EngineConfig.fast())
        warm.match(source, target)
        warm_run = warm.rematch(source, evolved)
        cold_run = HarmonyEngine(config=EngineConfig.fast()).match(source, evolved)
        assert _cells(warm_run.matrix) == _cells(cold_run.matrix)

    def test_rematch_falls_back_without_flag(self):
        source, sids = _random_graph("s", 31)
        target, tids = _random_graph("t", 32)
        engine = HarmonyEngine(config=EngineConfig())
        engine.match(source, target)
        evolved = _random_evolution(source, sids, 33)
        run = engine.rematch(evolved, target)
        assert engine.rematch_patches == 0
        assert not run.reused_context

    def test_rematch_with_no_change_reuses_everything(self):
        """New graph objects, identical content (the workbench tool path
        re-fetches schemas every invoke): the patch is a no-op rebind."""
        source, _ = _random_graph("s", 41)
        target, _ = _random_graph("t", 42)
        engine = HarmonyEngine(config=EngineConfig.fast())
        engine.match(source, target)
        builds = engine.context_builds
        run = engine.rematch(source.copy(), target.copy())
        assert engine.context_builds == builds  # no context rebuild
        assert run.reused_context
