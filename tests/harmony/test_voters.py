"""Tests for the match voters."""

import pytest

from repro.core import ElementKind, SchemaElement, SchemaGraph
from repro.harmony import (
    AcronymVoter,
    DatatypeVoter,
    DocumentationVoter,
    DomainValueVoter,
    InstanceVoter,
    MatchContext,
    NameVoter,
    StructureVoter,
    ThesaurusVoter,
    calibrate,
    default_voters,
    kinds_comparable,
)
from repro.harmony.voters.acronym import is_acronym_of


def _two_graphs(source_specs, target_specs):
    """Build tiny graphs: specs are (name, kind, datatype, doc, annotations)."""
    def build(name, specs):
        graph = SchemaGraph.create(name)
        graph.add_child(name, SchemaElement(f"{name}/E", "E", ElementKind.ENTITY),
                        label="contains-element")
        for spec in specs:
            element = SchemaElement(
                f"{name}/E/{spec[0]}", spec[0], spec[1],
                datatype=spec[2] if len(spec) > 2 else None,
                documentation=spec[3] if len(spec) > 3 else "",
            )
            if len(spec) > 4:
                element.annotations.update(spec[4])
            graph.add_child(f"{name}/E", element)
        return graph

    return build("src", source_specs), build("tgt", target_specs)


class TestCalibrate:
    def test_full_confidence(self):
        assert calibrate(0.99) == 1.0

    def test_zero_point(self):
        assert calibrate(0.35, zero_point=0.35) == pytest.approx(0.0)

    def test_negative_floor(self):
        assert calibrate(0.0, negative_floor=-0.5) == pytest.approx(-0.5)

    def test_monotone(self):
        values = [calibrate(x / 20) for x in range(21)]
        assert values == sorted(values)

    def test_range(self):
        for x in [0.0, 0.2, 0.5, 0.8, 1.0]:
            assert -1.0 <= calibrate(x) <= 1.0


class TestKindsComparable:
    def test_same_kind(self):
        assert kinds_comparable(ElementKind.ATTRIBUTE, ElementKind.ATTRIBUTE)

    def test_cross_container(self):
        assert kinds_comparable(ElementKind.TABLE, ElementKind.ELEMENT)
        assert kinds_comparable(ElementKind.ENTITY, ElementKind.TABLE)

    def test_attribute_vs_container(self):
        assert not kinds_comparable(ElementKind.ATTRIBUTE, ElementKind.TABLE)

    def test_domain_vs_attribute(self):
        assert not kinds_comparable(ElementKind.DOMAIN, ElementKind.ATTRIBUTE)


class TestNameVoter:
    def test_identical_names_certain(self):
        source, target = _two_graphs(
            [("total", ElementKind.ATTRIBUTE)], [("total", ElementKind.ATTRIBUTE)]
        )
        context = MatchContext(source, target)
        score = NameVoter().score(
            source.element("src/E/total"), target.element("tgt/E/total"), context
        )
        assert score == 1.0

    def test_case_insensitive(self):
        source, target = _two_graphs(
            [("Total", ElementKind.ATTRIBUTE)], [("TOTAL", ElementKind.ATTRIBUTE)]
        )
        context = MatchContext(source, target)
        assert NameVoter().score(
            source.element("src/E/Total"), target.element("tgt/E/TOTAL"), context
        ) == 1.0

    def test_token_reordering(self):
        source, target = _two_graphs(
            [("firstName", ElementKind.ATTRIBUTE)], [("name_first", ElementKind.ATTRIBUTE)]
        )
        context = MatchContext(source, target)
        score = NameVoter().score(
            source.element("src/E/firstName"), target.element("tgt/E/name_first"), context
        )
        assert score == 1.0  # same token multiset

    def test_dissimilar_names_negative(self):
        source, target = _two_graphs(
            [("elevation", ElementKind.ATTRIBUTE)], [("zzqq", ElementKind.ATTRIBUTE)]
        )
        context = MatchContext(source, target)
        score = NameVoter().score(
            source.element("src/E/elevation"), target.element("tgt/E/zzqq"), context
        )
        assert score < 0.0

    def test_abbreviation_bridged(self):
        source, target = _two_graphs(
            [("qty", ElementKind.ATTRIBUTE)], [("quantity", ElementKind.ATTRIBUTE)]
        )
        context = MatchContext(source, target)
        score = NameVoter().score(
            source.element("src/E/qty"), target.element("tgt/E/quantity"), context
        )
        assert score > 0.8


class TestDocumentationVoter:
    def test_abstains_without_docs(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, None, "Documented here.")],
            [("b", ElementKind.ATTRIBUTE)],
        )
        context = MatchContext(source, target)
        voter = DocumentationVoter()
        assert not voter.applicable(source.element("src/E/a"), target.element("tgt/E/b"))
        assert voter.score(source.element("src/E/a"), target.element("tgt/E/b"), context) == 0.0

    def test_similar_docs_positive(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, None, "The given name of the customer.")],
            [("b", ElementKind.ATTRIBUTE, None, "Given name of the purchasing customer.")],
        )
        context = MatchContext(source, target)
        score = DocumentationVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        )
        assert score > 0.3

    def test_unrelated_docs_weak_negative(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, None, "Elevation above sea level in feet.")],
            [("b", ElementKind.ATTRIBUTE, None, "Given name of the customer.")],
        )
        context = MatchContext(source, target)
        score = DocumentationVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        )
        assert -0.35 <= score < 0.0  # shallow negative floor (recall-oriented)


class TestThesaurusVoter:
    def test_synonym_names(self):
        source, target = _two_graphs(
            [("vendor", ElementKind.ATTRIBUTE)], [("supplier", ElementKind.ATTRIBUTE)]
        )
        context = MatchContext(source, target)
        score = ThesaurusVoter().score(
            source.element("src/E/vendor"), target.element("tgt/E/supplier"), context
        )
        assert score > 0.7

    def test_abstains_without_synonym_evidence(self):
        source, target = _two_graphs(
            [("elevation", ElementKind.ATTRIBUTE)], [("customer", ElementKind.ATTRIBUTE)]
        )
        context = MatchContext(source, target)
        score = ThesaurusVoter().score(
            source.element("src/E/elevation"), target.element("tgt/E/customer"), context
        )
        assert score == 0.0


class TestDatatypeVoter:
    def test_same_type_weak_positive(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, "decimal")], [("b", ElementKind.ATTRIBUTE, "decimal")]
        )
        context = MatchContext(source, target)
        score = DatatypeVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        )
        assert score == DatatypeVoter.SAME

    def test_incompatible_negative(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, "date")], [("b", ElementKind.ATTRIBUTE, "binary")]
        )
        context = MatchContext(source, target)
        score = DatatypeVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        )
        assert score == DatatypeVoter.INCOMPATIBLE

    def test_abstains_without_types(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE)], [("b", ElementKind.ATTRIBUTE, "string")]
        )
        context = MatchContext(source, target)
        assert DatatypeVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        ) == 0.0


class TestAcronymVoter:
    def test_is_acronym_of(self):
        assert is_acronym_of("pon", ["purchase", "order", "number"])
        assert is_acronym_of("ssn", ["social", "security", "number"])
        assert not is_acronym_of("x", ["single"])
        assert not is_acronym_of("abc", ["alpha", "beta"])

    def test_acronym_scores(self):
        source, target = _two_graphs(
            [("poNum", ElementKind.ATTRIBUTE)],
            [("purchaseOrderNumber", ElementKind.ATTRIBUTE)],
        )
        context = MatchContext(source, target)
        score = AcronymVoter().score(
            source.element("src/E/poNum"), target.element("tgt/E/purchaseOrderNumber"), context
        )
        assert score > 0.0


class TestInstanceVoter:
    def test_abstains_without_samples(self):
        """Section 2: matching must not assume instance data exists."""
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, "string")], [("b", ElementKind.ATTRIBUTE, "string")]
        )
        context = MatchContext(source, target)
        assert InstanceVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        ) == 0.0

    def test_overlapping_values_positive(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, "string", "", {"instance_values": ["x", "y", "z"]})],
            [("b", ElementKind.ATTRIBUTE, "string", "", {"instance_values": ["x", "y", "w"]})],
        )
        context = MatchContext(source, target)
        score = InstanceVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        )
        assert score > 0.3

    def test_same_shape_weak_positive(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, "integer", "", {"instance_values": ["1", "2"]})],
            [("b", ElementKind.ATTRIBUTE, "integer", "", {"instance_values": ["7", "9"]})],
        )
        context = MatchContext(source, target)
        score = InstanceVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        )
        assert score == pytest.approx(0.15)


class TestDomainValueVoter:
    def _coded_graphs(self, source_codes, target_codes):
        def build(name, codes):
            graph = SchemaGraph.create(name)
            graph.add_child(name, SchemaElement(f"{name}/E", "E", ElementKind.ENTITY),
                            label="contains-element")
            graph.add_child(f"{name}/E", SchemaElement(
                f"{name}/E/status", "status", ElementKind.ATTRIBUTE, datatype="string"))
            graph.add_child(name, SchemaElement(f"{name}/D", "D", ElementKind.DOMAIN),
                            label="contains-element")
            for code in codes:
                graph.add_child(f"{name}/D", SchemaElement(
                    f"{name}/D/{code}", code, ElementKind.DOMAIN_VALUE))
            graph.add_edge(f"{name}/E/status", "has-domain", f"{name}/D")
            return graph

        return build("src", source_codes), build("tgt", target_codes)

    def test_matching_schemes_strong_positive(self):
        source, target = self._coded_graphs(["A", "B", "C"], ["A", "B", "C"])
        context = MatchContext(source, target)
        score = DomainValueVoter().score(
            source.element("src/E/status"), target.element("tgt/E/status"), context
        )
        assert score > 0.8

    def test_disjoint_schemes_strong_negative(self):
        source, target = self._coded_graphs(["A", "B"], ["X", "Y"])
        context = MatchContext(source, target)
        score = DomainValueVoter().score(
            source.element("src/E/status"), target.element("tgt/E/status"), context
        )
        assert score < -0.5

    def test_domain_elements_compared_directly(self):
        source, target = self._coded_graphs(["A", "B"], ["A", "B"])
        context = MatchContext(source, target)
        score = DomainValueVoter().score(
            source.element("src/D"), target.element("tgt/D"), context
        )
        assert score > 0.8

    def test_abstains_without_domains(self):
        source, target = _two_graphs(
            [("a", ElementKind.ATTRIBUTE, "string")], [("b", ElementKind.ATTRIBUTE, "string")]
        )
        context = MatchContext(source, target)
        assert DomainValueVoter().score(
            source.element("src/E/a"), target.element("tgt/E/b"), context
        ) == 0.0


class TestStructureVoter:
    def test_same_path_positive(self, purchase_order_graph, shipping_notice_graph):
        context = MatchContext(purchase_order_graph, shipping_notice_graph)
        voter = StructureVoter()
        same_region = voter.score(
            purchase_order_graph.element("po/purchaseOrder/shipTo/firstName"),
            shipping_notice_graph.element("sn/shippingInfo/name"),
            context,
        )
        assert isinstance(same_region, float)
        assert -1.0 <= same_region <= 1.0


class TestDefaultVoters:
    def test_suite_composition(self):
        names = {v.name for v in default_voters()}
        assert names == {
            "name", "documentation", "thesaurus", "datatype",
            "domain-values", "structure", "acronym", "instance",
        }

    def test_instance_excludable(self):
        names = {v.name for v in default_voters(include_instance=False)}
        assert "instance" not in names

    def test_candidate_pairs_prune_kinds(self, purchase_order_graph, shipping_notice_graph):
        context = MatchContext(purchase_order_graph, shipping_notice_graph)
        for source_el, target_el in context.candidate_pairs():
            assert kinds_comparable(source_el.kind, target_el.kind)
            assert source_el.element_id != "po"
            assert target_el.element_id != "sn"
