"""Differential harness: pluggable sweep backends for compiled flooding.

``CompiledPCG.run`` delegates its inner fixpoint to a
:class:`SweepBackend`.  The Python backend *is* the reference loop
(bit-identical to ``classic_flooding`` on a cold compile — that is
already pinned by ``test_flooding_compiled_differential``); the NumPy
backend re-expresses each sweep as a ``np.bincount`` scatter over
zero-copy ``np.frombuffer`` views of the same edge arrays; the C backend
(``repro.harmony._csweep``, or a cffi runtime build of the same source)
runs the reference loop statement-for-statement over the flat buffers.
All accumulate in edge order, so the backends perform the same float
additions in the same sequence — this file holds them to ``TOLERANCE``
(they are bit-identical in practice), covers the directional sweep the
same way, and proves the ``auto`` selector prefers c → numpy → python
and degrades silently when accelerators cannot be imported.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElementKind, SchemaElement, SchemaGraph
from repro.harmony import EngineConfig, HarmonyEngine
from repro.harmony import flooding as flooding_mod
from repro.harmony.flooding import (
    SWEEP_BACKENDS,
    CSweepBackend,
    DirectionalConfig,
    FloodingConfig,
    NumpySweepBackend,
    PythonSweepBackend,
    classic_flooding,
    compile_pcg,
    directional_flooding,
    directional_flooding_compiled,
    reset_sweep_run_stats,
    resolve_sweep_backend,
    sweep_run_stats,
)

TOLERANCE = 1e-12

seeds = st.integers(min_value=0, max_value=10_000)

HAS_NUMPY = flooding_mod._probe_numpy() is not None
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

HAS_CSWEEP = flooding_mod._probe_csweep() is not None
needs_csweep = pytest.mark.skipif(
    not HAS_CSWEEP, reason="_csweep extension not built"
)


def _random_graph(name, seed, size=14):
    rng = random.Random(seed)
    graph = SchemaGraph.create(name)
    ids = [name]
    for i in range(size):
        element_id = f"{name}/e{i}"
        kind = (
            ElementKind.ENTITY if i % 4 == 0
            else ElementKind.ATTRIBUTE if i % 4 in (1, 2)
            else ElementKind.DOMAIN
        )
        graph.add_child(rng.choice(ids), SchemaElement(element_id, f"elem{i}", kind))
        ids.append(element_id)
    for _ in range(3):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            graph.add_edge(a, "references", b)
    return graph, ids


def _random_initial(source_ids, target_ids, seed, n=25):
    rng = random.Random(seed)
    return {
        (rng.choice(source_ids), rng.choice(target_ids)): rng.uniform(0.0, 1.0)
        for _ in range(n)
    }


def _random_scores(source_ids, target_ids, seed, n=25):
    rng = random.Random(seed)
    return {
        (rng.choice(source_ids), rng.choice(target_ids)): rng.uniform(-1.0, 1.0)
        for _ in range(n)
    }


def _cells(matrix):
    return {
        (c.source_id, c.target_id): (c.confidence, c.is_user_defined)
        for c in matrix.cells()
    }


def _no_accelerators(monkeypatch):
    monkeypatch.setattr(flooding_mod, "_probe_numpy", lambda: None)
    monkeypatch.setattr(flooding_mod, "_probe_csweep", lambda: None)


# -- selector resolution ------------------------------------------------------


class TestBackendSelection:
    def test_selector_vocabulary(self):
        assert SWEEP_BACKENDS == ("auto", "python", "numpy", "c")

    def test_python_selector_is_shared_singleton(self):
        first = resolve_sweep_backend("python")
        second = resolve_sweep_backend("python")
        assert isinstance(first, PythonSweepBackend)
        assert first is second
        assert first.name == "python"

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_sweep_backend("cuda")

    @needs_csweep
    def test_auto_prefers_c_when_available(self):
        auto = resolve_sweep_backend("auto")
        assert isinstance(auto, CSweepBackend)
        assert auto.name == "c"

    @needs_numpy
    def test_numpy_and_auto_select_numpy_without_c(self, monkeypatch):
        monkeypatch.setattr(flooding_mod, "_probe_csweep", lambda: None)
        assert isinstance(resolve_sweep_backend("numpy"), NumpySweepBackend)
        auto = resolve_sweep_backend("auto")
        assert isinstance(auto, NumpySweepBackend)
        assert auto.name == "numpy"

    def test_auto_degrades_to_python_without_accelerators(self, monkeypatch):
        _no_accelerators(monkeypatch)
        backend = resolve_sweep_backend("auto")
        assert isinstance(backend, PythonSweepBackend)

    def test_explicit_numpy_raises_actionably_without_numpy(self, monkeypatch):
        monkeypatch.setattr(flooding_mod, "_probe_numpy", lambda: None)
        with pytest.raises(ImportError, match=r"pip install \.\[fast\]"):
            resolve_sweep_backend("numpy")

    def test_explicit_c_raises_actionably_without_extension(self, monkeypatch):
        monkeypatch.setattr(flooding_mod, "_probe_csweep", lambda: None)
        monkeypatch.setattr(flooding_mod, "_cffi_csweep", lambda: None)
        with pytest.raises(ImportError, match="build_ext"):
            resolve_sweep_backend("c")

    def test_engine_auto_runs_without_accelerators(self, monkeypatch):
        """The full fast preset must work on an accelerator-free install."""
        _no_accelerators(monkeypatch)
        source, sids = _random_graph("s", 3)
        target, tids = _random_graph("t", 4)
        engine = HarmonyEngine(config=EngineConfig.fast(flooding="classic"))
        run = engine.match(source, target)
        assert run.matrix.cell_count() > 0
        assert engine.fastpath_stats()["sweep_backend"] == "python"

    @needs_numpy
    def test_engine_reports_numpy_backend(self):
        engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="numpy")
        )
        assert engine.fastpath_stats()["sweep_backend"] == "numpy"

    @needs_csweep
    def test_engine_reports_c_backend(self):
        engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="c")
        )
        assert engine.fastpath_stats()["sweep_backend"] == "c"


# -- sweep-run accounting -----------------------------------------------------


class TestSweepRunStats:
    def test_classic_runs_counted_per_backend(self):
        source, sids = _random_graph("s", 11)
        target, tids = _random_graph("t", 12)
        initial = _random_initial(sids, tids, 13)
        compiled = compile_pcg(source, target)
        reset_sweep_run_stats()
        compiled.run(initial, backend=resolve_sweep_backend("python"))
        compiled.run(initial, backend=resolve_sweep_backend("python"))
        stats = sweep_run_stats()
        assert stats["sweep_classic_runs_python"] == 2
        assert stats["sweep_directional_runs_python"] == 0

    def test_directional_runs_counted(self):
        source, sids = _random_graph("s", 14)
        target, tids = _random_graph("t", 15)
        scores = _random_scores(sids, tids, 16)
        reset_sweep_run_stats()
        directional_flooding_compiled(source, target, scores)
        stats = sweep_run_stats()
        assert stats["sweep_directional_runs_python"] == 1
        assert stats["sweep_classic_runs_python"] == 0

    def test_stats_surface_in_engine_fastpath_stats(self):
        engine = HarmonyEngine(config=EngineConfig())
        stats = engine.fastpath_stats()
        for kind in ("classic", "directional"):
            for name in ("python", "numpy", "c"):
                assert f"sweep_{kind}_runs_{name}" in stats


# -- numpy vs python vs reference --------------------------------------------


@needs_numpy
class TestNumpyDifferential:
    @given(seeds, seeds, seeds)
    @settings(max_examples=40, deadline=None)
    def test_numpy_matches_python_and_reference(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        reference = classic_flooding(source, target, initial)
        compiled = compile_pcg(source, target)
        python = compiled.run(initial, backend=resolve_sweep_backend("python"))
        vectorized = compiled.run(initial, backend=resolve_sweep_backend("numpy"))
        assert python == reference  # cold compiled stays bit-identical
        assert vectorized.keys() == python.keys()
        for pair, value in python.items():
            assert abs(value - vectorized[pair]) <= TOLERANCE

    @given(seeds, seeds, seeds, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_custom_config_matches(self, s1, s2, s3, iterations):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        config = FloodingConfig(max_iterations=iterations, epsilon=0.0)
        compiled = compile_pcg(source, target)
        python = compiled.run(initial, config, backend=resolve_sweep_backend("python"))
        vectorized = compiled.run(initial, config, backend=resolve_sweep_backend("numpy"))
        for pair, value in python.items():
            assert abs(value - vectorized[pair]) <= TOLERANCE

    def test_empty_initial_and_extra_pairs(self):
        source, _ = _random_graph("s", 1)
        target, _ = _random_graph("t", 2)
        compiled = compile_pcg(source, target)
        numpy_backend = resolve_sweep_backend("numpy")
        assert compiled.run({}, backend=numpy_backend) == compiled.run({})
        # pairs outside the structural PCG are interned past it and ride
        # through normalization on both backends
        lone = {("s/nowhere", "t/nowhere"): 0.7}
        assert compiled.run(lone, backend=numpy_backend) == compiled.run(lone)

    def test_backends_interleave_on_one_compiled_pcg(self):
        """Alternating backends on the same compiled structure (shared
        buffers, cached views) never changes results."""
        source, sids = _random_graph("s", 5)
        target, tids = _random_graph("t", 6)
        initial = _random_initial(sids, tids, 7)
        compiled = compile_pcg(source, target)
        python_backend = resolve_sweep_backend("python")
        numpy_backend = resolve_sweep_backend("numpy")
        first = compiled.run(initial, backend=python_backend)
        second = compiled.run(initial, backend=numpy_backend)
        third = compiled.run(initial, backend=python_backend)
        assert first == third
        for pair, value in first.items():
            assert abs(value - second[pair]) <= TOLERANCE

    def test_results_are_plain_floats(self):
        source, sids = _random_graph("s", 8)
        target, tids = _random_graph("t", 9)
        initial = _random_initial(sids, tids, 10)
        result = compile_pcg(source, target).run(
            initial, backend=resolve_sweep_backend("numpy")
        )
        assert all(type(value) is float for value in result.values())

    @given(seeds, seeds, seeds)
    @settings(max_examples=8, deadline=None)
    def test_engine_matrix_identical_across_backends(self, s1, s2, s3):
        source, _ = _random_graph("s", s1)
        target, _ = _random_graph("t", s2)
        python_engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="python")
        )
        numpy_engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="numpy")
        )
        python_cells = _cells(python_engine.match(source, target).matrix)
        numpy_cells = _cells(numpy_engine.match(source, target).matrix)
        assert set(python_cells) == set(numpy_cells)
        for pair, (confidence, decided) in python_cells.items():
            numpy_confidence, numpy_decided = numpy_cells[pair]
            assert decided == numpy_decided
            assert abs(confidence - numpy_confidence) <= TOLERANCE


# -- c vs python vs reference -------------------------------------------------


@needs_csweep
class TestCSweepDifferential:
    @given(seeds, seeds, seeds)
    @settings(max_examples=40, deadline=None)
    def test_c_matches_python_and_reference(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        reference = classic_flooding(source, target, initial)
        compiled = compile_pcg(source, target)
        python = compiled.run(initial, backend=resolve_sweep_backend("python"))
        native = compiled.run(initial, backend=resolve_sweep_backend("c"))
        assert python == reference
        assert native.keys() == python.keys()
        for pair, value in python.items():
            assert abs(value - native[pair]) <= TOLERANCE

    @given(seeds, seeds, seeds, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_custom_config_matches(self, s1, s2, s3, iterations):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        config = FloodingConfig(max_iterations=iterations, epsilon=0.0)
        compiled = compile_pcg(source, target)
        python = compiled.run(initial, config, backend=resolve_sweep_backend("python"))
        native = compiled.run(initial, config, backend=resolve_sweep_backend("c"))
        for pair, value in python.items():
            assert abs(value - native[pair]) <= TOLERANCE

    def test_empty_initial_and_extra_pairs(self):
        source, _ = _random_graph("s", 1)
        target, _ = _random_graph("t", 2)
        compiled = compile_pcg(source, target)
        c_backend = resolve_sweep_backend("c")
        assert compiled.run({}, backend=c_backend) == compiled.run({})
        lone = {("s/nowhere", "t/nowhere"): 0.7}
        assert compiled.run(lone, backend=c_backend) == compiled.run(lone)

    def test_results_are_plain_floats(self):
        source, sids = _random_graph("s", 8)
        target, tids = _random_graph("t", 9)
        initial = _random_initial(sids, tids, 10)
        result = compile_pcg(source, target).run(
            initial, backend=resolve_sweep_backend("c")
        )
        assert all(type(value) is float for value in result.values())

    @given(seeds, seeds, seeds)
    @settings(max_examples=8, deadline=None)
    def test_engine_matrix_identical_across_backends(self, s1, s2, s3):
        source, _ = _random_graph("s", s1)
        target, _ = _random_graph("t", s2)
        python_engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="python")
        )
        c_engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="c")
        )
        python_cells = _cells(python_engine.match(source, target).matrix)
        c_cells = _cells(c_engine.match(source, target).matrix)
        assert set(python_cells) == set(c_cells)
        for pair, (confidence, decided) in python_cells.items():
            c_confidence, c_decided = c_cells[pair]
            assert decided == c_decided
            assert abs(confidence - c_confidence) <= TOLERANCE


# -- directional sweep across backends ----------------------------------------


class TestDirectionalBackends:
    @given(seeds, seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_compiled_python_matches_reference(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        scores = _random_scores(sids, tids, s3)
        reference = directional_flooding(source, target, scores)
        compiled = directional_flooding_compiled(source, target, scores)
        assert compiled.keys() == reference.keys()
        for pair, value in reference.items():
            assert abs(value - compiled[pair]) <= TOLERANCE

    @needs_csweep
    @given(seeds, seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_c_matches_python(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        scores = _random_scores(sids, tids, s3)
        python = directional_flooding_compiled(
            source, target, scores, backend=resolve_sweep_backend("python")
        )
        native = directional_flooding_compiled(
            source, target, scores, backend=resolve_sweep_backend("c")
        )
        assert native.keys() == python.keys()
        for pair, value in python.items():
            assert abs(value - native[pair]) <= TOLERANCE

    @needs_numpy
    @given(seeds, seeds, seeds)
    @settings(max_examples=25, deadline=None)
    def test_numpy_backend_matches_python(self, s1, s2, s3):
        # NumpySweepBackend inherits the reference directional loop, so
        # routing directional sweeps through it must change nothing
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        scores = _random_scores(sids, tids, s3)
        python = directional_flooding_compiled(
            source, target, scores, backend=resolve_sweep_backend("python")
        )
        vectorized = directional_flooding_compiled(
            source, target, scores, backend=resolve_sweep_backend("numpy")
        )
        assert vectorized == python

    @needs_csweep
    def test_pinned_pairs_survive_c_sweep(self):
        source, sids = _random_graph("s", 21)
        target, tids = _random_graph("t", 22)
        scores = _random_scores(sids, tids, 23)
        pinned = set(list(scores)[:5])
        config = DirectionalConfig()
        python = directional_flooding_compiled(
            source, target, scores, config, pinned=pinned,
            backend=resolve_sweep_backend("python"),
        )
        native = directional_flooding_compiled(
            source, target, scores, config, pinned=pinned,
            backend=resolve_sweep_backend("c"),
        )
        for pair, value in python.items():
            assert abs(value - native[pair]) <= TOLERANCE

    @needs_csweep
    def test_empty_scores(self):
        source, _ = _random_graph("s", 1)
        target, _ = _random_graph("t", 2)
        assert directional_flooding_compiled(
            source, target, {}, backend=resolve_sweep_backend("c")
        ) == {}


# -- cffi fallback ------------------------------------------------------------


class TestCffiFallback:
    def test_explicit_c_uses_cffi_when_extension_absent(self, monkeypatch):
        pytest.importorskip("cffi")
        monkeypatch.setattr(flooding_mod, "_probe_csweep", lambda: None)
        try:
            backend = CSweepBackend()
        except ImportError:
            pytest.skip("no C compiler available for the cffi runtime build")
        source, sids = _random_graph("s", 31)
        target, tids = _random_graph("t", 32)
        initial = _random_initial(sids, tids, 33)
        compiled = compile_pcg(source, target)
        python = compiled.run(initial, backend=resolve_sweep_backend("python"))
        native = compiled.run(initial, backend=backend)
        for pair, value in python.items():
            assert abs(value - native[pair]) <= TOLERANCE
