"""Differential harness: pluggable sweep backends for compiled flooding.

``CompiledPCG.run`` delegates its inner fixpoint to a
:class:`SweepBackend`.  The Python backend *is* the reference loop
(bit-identical to ``classic_flooding`` on a cold compile — that is
already pinned by ``test_flooding_compiled_differential``); the NumPy
backend re-expresses each sweep as a ``np.bincount`` scatter over
zero-copy ``np.frombuffer`` views of the same edge arrays.  ``bincount``
accumulates in edge order, so the two backends perform the same float
additions in the same sequence — this file holds them to ``TOLERANCE``
(they are bit-identical in practice) and proves the ``auto`` selector
degrades silently when NumPy cannot be imported.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElementKind, SchemaElement, SchemaGraph
from repro.harmony import EngineConfig, HarmonyEngine
from repro.harmony import flooding as flooding_mod
from repro.harmony.flooding import (
    SWEEP_BACKENDS,
    FloodingConfig,
    NumpySweepBackend,
    PythonSweepBackend,
    classic_flooding,
    compile_pcg,
    resolve_sweep_backend,
)

TOLERANCE = 1e-12

seeds = st.integers(min_value=0, max_value=10_000)

HAS_NUMPY = flooding_mod._probe_numpy() is not None
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


def _random_graph(name, seed, size=14):
    rng = random.Random(seed)
    graph = SchemaGraph.create(name)
    ids = [name]
    for i in range(size):
        element_id = f"{name}/e{i}"
        kind = (
            ElementKind.ENTITY if i % 4 == 0
            else ElementKind.ATTRIBUTE if i % 4 in (1, 2)
            else ElementKind.DOMAIN
        )
        graph.add_child(rng.choice(ids), SchemaElement(element_id, f"elem{i}", kind))
        ids.append(element_id)
    for _ in range(3):
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            graph.add_edge(a, "references", b)
    return graph, ids


def _random_initial(source_ids, target_ids, seed, n=25):
    rng = random.Random(seed)
    return {
        (rng.choice(source_ids), rng.choice(target_ids)): rng.uniform(0.0, 1.0)
        for _ in range(n)
    }


def _cells(matrix):
    return {
        (c.source_id, c.target_id): (c.confidence, c.is_user_defined)
        for c in matrix.cells()
    }


# -- selector resolution ------------------------------------------------------


class TestBackendSelection:
    def test_selector_vocabulary(self):
        assert SWEEP_BACKENDS == ("auto", "python", "numpy")

    def test_python_selector_is_shared_singleton(self):
        first = resolve_sweep_backend("python")
        second = resolve_sweep_backend("python")
        assert isinstance(first, PythonSweepBackend)
        assert first is second
        assert first.name == "python"

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_sweep_backend("cuda")

    @needs_numpy
    def test_numpy_and_auto_select_numpy_when_available(self):
        assert isinstance(resolve_sweep_backend("numpy"), NumpySweepBackend)
        auto = resolve_sweep_backend("auto")
        assert isinstance(auto, NumpySweepBackend)
        assert auto.name == "numpy"

    def test_auto_degrades_to_python_without_numpy(self, monkeypatch):
        monkeypatch.setattr(flooding_mod, "_probe_numpy", lambda: None)
        backend = resolve_sweep_backend("auto")
        assert isinstance(backend, PythonSweepBackend)

    def test_explicit_numpy_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(flooding_mod, "_probe_numpy", lambda: None)
        with pytest.raises(ImportError):
            resolve_sweep_backend("numpy")

    def test_engine_auto_runs_without_numpy(self, monkeypatch):
        """The full fast preset must work on a numpy-free install."""
        monkeypatch.setattr(flooding_mod, "_probe_numpy", lambda: None)
        source, sids = _random_graph("s", 3)
        target, tids = _random_graph("t", 4)
        engine = HarmonyEngine(config=EngineConfig.fast(flooding="classic"))
        run = engine.match(source, target)
        assert run.matrix.cell_count() > 0
        assert engine.fastpath_stats()["sweep_backend"] == "python"

    @needs_numpy
    def test_engine_reports_numpy_backend(self):
        engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="numpy")
        )
        assert engine.fastpath_stats()["sweep_backend"] == "numpy"


# -- numpy vs python vs reference --------------------------------------------


@needs_numpy
class TestNumpyDifferential:
    @given(seeds, seeds, seeds)
    @settings(max_examples=40, deadline=None)
    def test_numpy_matches_python_and_reference(self, s1, s2, s3):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        reference = classic_flooding(source, target, initial)
        compiled = compile_pcg(source, target)
        python = compiled.run(initial, backend=resolve_sweep_backend("python"))
        vectorized = compiled.run(initial, backend=resolve_sweep_backend("numpy"))
        assert python == reference  # cold compiled stays bit-identical
        assert vectorized.keys() == python.keys()
        for pair, value in python.items():
            assert abs(value - vectorized[pair]) <= TOLERANCE

    @given(seeds, seeds, seeds, st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_custom_config_matches(self, s1, s2, s3, iterations):
        source, sids = _random_graph("s", s1)
        target, tids = _random_graph("t", s2)
        initial = _random_initial(sids, tids, s3)
        config = FloodingConfig(max_iterations=iterations, epsilon=0.0)
        compiled = compile_pcg(source, target)
        python = compiled.run(initial, config, backend=resolve_sweep_backend("python"))
        vectorized = compiled.run(initial, config, backend=resolve_sweep_backend("numpy"))
        for pair, value in python.items():
            assert abs(value - vectorized[pair]) <= TOLERANCE

    def test_empty_initial_and_extra_pairs(self):
        source, _ = _random_graph("s", 1)
        target, _ = _random_graph("t", 2)
        compiled = compile_pcg(source, target)
        numpy_backend = resolve_sweep_backend("numpy")
        assert compiled.run({}, backend=numpy_backend) == compiled.run({})
        # pairs outside the structural PCG are interned past it and ride
        # through normalization on both backends
        lone = {("s/nowhere", "t/nowhere"): 0.7}
        assert compiled.run(lone, backend=numpy_backend) == compiled.run(lone)

    def test_backends_interleave_on_one_compiled_pcg(self):
        """Alternating backends on the same compiled structure (shared
        buffers, cached views) never changes results."""
        source, sids = _random_graph("s", 5)
        target, tids = _random_graph("t", 6)
        initial = _random_initial(sids, tids, 7)
        compiled = compile_pcg(source, target)
        python_backend = resolve_sweep_backend("python")
        numpy_backend = resolve_sweep_backend("numpy")
        first = compiled.run(initial, backend=python_backend)
        second = compiled.run(initial, backend=numpy_backend)
        third = compiled.run(initial, backend=python_backend)
        assert first == third
        for pair, value in first.items():
            assert abs(value - second[pair]) <= TOLERANCE

    def test_results_are_plain_floats(self):
        source, sids = _random_graph("s", 8)
        target, tids = _random_graph("t", 9)
        initial = _random_initial(sids, tids, 10)
        result = compile_pcg(source, target).run(
            initial, backend=resolve_sweep_backend("numpy")
        )
        assert all(type(value) is float for value in result.values())

    @given(seeds, seeds, seeds)
    @settings(max_examples=8, deadline=None)
    def test_engine_matrix_identical_across_backends(self, s1, s2, s3):
        source, _ = _random_graph("s", s1)
        target, _ = _random_graph("t", s2)
        python_engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="python")
        )
        numpy_engine = HarmonyEngine(
            config=EngineConfig.fast(flooding="classic", sweep_backend="numpy")
        )
        python_cells = _cells(python_engine.match(source, target).matrix)
        numpy_cells = _cells(numpy_engine.match(source, target).matrix)
        assert set(python_cells) == set(numpy_cells)
        for pair, (confidence, decided) in python_cells.items():
            numpy_confidence, numpy_decided = numpy_cells[pair]
            assert decided == numpy_decided
            assert abs(confidence - numpy_confidence) <= TOLERANCE
