"""Tests for the Harmony engine, session workflow and learning loop."""

import pytest

from repro.core import VoterScore
from repro.harmony import (
    ConfidenceFilter,
    EngineConfig,
    FLOODING_CLASSIC,
    FLOODING_DIRECTIONAL,
    FLOODING_OFF,
    HarmonyEngine,
    MatchSession,
    VoteMerger,
    decisions_from_matrix,
    update_merger_weights,
    update_word_weights,
)
from repro.harmony.voters.base import MatchContext


class TestEngine:
    def test_match_populates_matrix(self, orders_graph, notice_graph):
        run = HarmonyEngine().match(orders_graph, notice_graph)
        assert len(list(run.matrix.cells())) > 0
        assert all(-0.99 <= c.confidence <= 0.99 for c in run.matrix.cells())

    def test_finds_obvious_correspondences(self, orders_graph, notice_graph):
        run = HarmonyEngine().match(orders_graph, notice_graph)
        cell = run.matrix.cell(
            "orders/customer/first_name", "notice/shippingNotice/recipientName/firstName"
        )
        assert cell.confidence > 0.5

    def test_user_decisions_never_overwritten(self, orders_graph, notice_graph):
        from repro.core import MappingMatrix

        matrix = MappingMatrix.from_schemas(orders_graph, notice_graph)
        matrix.set_confidence(
            "orders/purchase_order/po_id", "notice/shippingNotice/total",
            -1.0, user_defined=True,
        )
        run = HarmonyEngine().match(orders_graph, notice_graph, matrix=matrix)
        cell = run.matrix.cell("orders/purchase_order/po_id", "notice/shippingNotice/total")
        assert cell.confidence == -1.0
        assert cell.is_user_defined

    def test_flooding_modes_all_run(self, orders_graph, notice_graph):
        for mode in (FLOODING_OFF, FLOODING_CLASSIC, FLOODING_DIRECTIONAL):
            engine = HarmonyEngine(config=EngineConfig(flooding=mode))
            run = engine.match(orders_graph, notice_graph)
            assert run.matrix is not None

    def test_flooding_off_preserves_merged_scores(self, orders_graph, notice_graph):
        engine = HarmonyEngine(config=EngineConfig(flooding=FLOODING_OFF))
        run = engine.match(orders_graph, notice_graph)
        assert run.pre_flooding == run.post_flooding

    def test_unknown_flooding_mode_rejected(self, orders_graph, notice_graph):
        engine = HarmonyEngine(config=EngineConfig(flooding="bogus"))
        with pytest.raises(ValueError):
            engine.match(orders_graph, notice_graph)

    def test_stage_summary_mentions_every_stage(self, orders_graph, notice_graph):
        run = HarmonyEngine().match(orders_graph, notice_graph)
        summary = "\n".join(run.stage_summary())
        for stage in ("linguistic", "voters", "merger", "flooding", "matrix"):
            assert stage in summary


class TestLearning:
    def test_merger_reweights_by_agreement(self):
        merger = VoteMerger()
        votes = [
            VoterScore("good", "a", "x", 0.8),
            VoterScore("bad", "a", "x", -0.8),
        ]
        update_merger_weights(merger, votes, {("a", "x"): True})
        assert merger.weight_of("good") > 1.0
        assert merger.weight_of("bad") < 1.0

    def test_rejection_flips_the_sign(self):
        merger = VoteMerger()
        votes = [VoterScore("eager", "a", "x", 0.9)]
        update_merger_weights(merger, votes, {("a", "x"): False})
        assert merger.weight_of("eager") < 1.0

    def test_undedecided_pairs_ignored(self):
        merger = VoteMerger()
        votes = [VoterScore("v", "a", "x", 0.9)]
        stats = update_merger_weights(merger, votes, {})
        assert merger.weight_of("v") == 1.0
        assert stats.opportunities == {}

    def test_word_weights_move_with_feedback(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph)
        decisions = {
            ("orders/customer/first_name",
             "notice/shippingNotice/recipientName/firstName"): True,
        }
        factors = update_word_weights(context.corpus, context, decisions)
        # the shared stems of 'Given name of the customer/recipient' got boosted
        assert any(factor > 1.0 for factor in factors.values())

    def test_decisions_from_matrix(self, figure3_matrix):
        decisions = decisions_from_matrix(figure3_matrix.cells())
        assert decisions[("po/purchaseOrder/shipTo/firstName", "sn/shippingInfo/name")] is True
        assert decisions[("po/purchaseOrder/shipTo/subtotal", "sn/shippingInfo/name")] is False
        assert ("po/purchaseOrder/shipTo", "sn/shippingInfo") not in decisions

    def test_feedback_improves_next_run(self, orders_graph, notice_graph):
        """Section 4.3's loop: re-running after feedback must not lose the
        accepted links and should keep scores legal."""
        engine = HarmonyEngine()
        session = MatchSession(orders_graph, notice_graph, engine=engine)
        session.run_engine()
        session.accept("orders/customer/first_name",
                       "notice/shippingNotice/recipientName/firstName")
        session.reject("orders/customer/first_name", "notice/shippingNotice/total")
        run2 = session.run_engine()
        cell = run2.matrix.cell(
            "orders/customer/first_name", "notice/shippingNotice/recipientName/firstName"
        )
        assert cell.confidence == 1.0 and cell.is_user_defined


class TestSession:
    def test_draw_accept_reject(self, orders_graph, notice_graph):
        session = MatchSession(orders_graph, notice_graph)
        link = session.draw_link("orders/customer", "notice/shippingNotice/recipientName")
        assert link.is_accepted
        session.reject("orders/customer", "notice/shippingNotice")
        assert session.matrix.cell("orders/customer", "notice/shippingNotice").is_rejected

    def test_change_callback_fires(self, orders_graph, notice_graph):
        seen = []
        session = MatchSession(orders_graph, notice_graph, on_change=seen.append)
        session.draw_link("orders/customer", "notice/shippingNotice/recipientName")
        assert len(seen) == 1

    def test_mark_subtree_complete(self, orders_graph, notice_graph):
        """Visible links accepted, others rejected, progress advances."""
        session = MatchSession(orders_graph, notice_graph)
        session.run_engine()
        before_progress = session.progress()
        accepted, rejected = session.mark_subtree_complete(
            "orders/customer", side="source", visible=ConfidenceFilter(threshold=0.5)
        )
        assert accepted + rejected > 0
        members = {e.element_id for e in orders_graph.subtree("orders/customer")}
        for cell in session.matrix.cells():
            if cell.source_id in members:
                assert cell.is_decided
        assert session.progress() > before_progress

    def test_marked_links_survive_rerun(self, orders_graph, notice_graph):
        """'links do not mysteriously disappear or appear should the user
        subsequently invoke the Harmony engine'."""
        session = MatchSession(orders_graph, notice_graph)
        session.run_engine()
        session.mark_subtree_complete("orders/customer", side="source")
        snapshot = {
            c.pair: c.confidence
            for c in session.matrix.cells()
            if c.source_id.startswith("orders/customer")
        }
        session.run_engine()
        for pair, confidence in snapshot.items():
            assert session.matrix.cell(*pair).confidence == confidence

    def test_final_correspondences_are_accepted_links(self, orders_graph, notice_graph):
        session = MatchSession(orders_graph, notice_graph)
        session.accept("orders/customer", "notice/shippingNotice/recipientName")
        finals = session.final_correspondences()
        assert [c.pair for c in finals] == [
            ("orders/customer", "notice/shippingNotice/recipientName")
        ]

    def test_invalid_side_rejected(self, orders_graph, notice_graph):
        session = MatchSession(orders_graph, notice_graph)
        from repro.core import MappingError

        with pytest.raises(MappingError):
            session.mark_subtree_complete("orders/customer", side="sideways")
