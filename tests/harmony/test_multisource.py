"""Tests for multi-source matching and target-schema derivation (§3.2)."""

import pytest

from repro.baselines import NameEqualityMatcher
from repro.core import ElementKind
from repro.harmony import (
    cluster_elements,
    derive_target_schema,
    integrate_sources,
    match_all_pairs,
)
from repro.loaders import load_er


@pytest.fixture
def hr_sources():
    a = load_er({"name": "hr1", "entities": [
        {"name": "Employee",
         "documentation": "A person employed by the organization.",
         "attributes": [
             {"name": "empId", "type": "integer", "key": True,
              "documentation": "Unique employee number."},
             {"name": "salary", "type": "decimal",
              "documentation": "Annual gross salary in dollars."},
             {"name": "grade", "type": "string", "domain": "Grade",
              "documentation": "Pay grade code of the employee."}]}],
        "domains": [{"name": "Grade", "values": [
            {"code": "GS7"}, {"code": "GS9"}]}]})
    b = load_er({"name": "hr2", "entities": [
        {"name": "Worker",
         "documentation": "A person employed by the firm.",
         "attributes": [
             {"name": "workerNumber", "type": "integer", "key": True,
              "documentation": "Unique worker number for the person."},
             {"name": "pay", "type": "decimal",
              "documentation": "Annual gross pay in dollars."},
             {"name": "payGrade", "type": "string", "domain": "PayGrade",
              "documentation": "Code for the pay grade of the worker."}]}],
        "domains": [{"name": "PayGrade", "values": [
            {"code": "GS7"}, {"code": "GS9"}, {"code": "GS11"}]}]})
    c = load_er({"name": "hr3", "entities": [
        {"name": "Staff",
         "documentation": "Employed staff member of the enterprise.",
         "attributes": [
             {"name": "staffId", "type": "integer", "key": True,
              "documentation": "Unique staff number."},
             {"name": "compensation", "type": "decimal",
              "documentation": "Annual compensation amount in dollars."}]}]})
    return [a, b, c]


class TestMatchAllPairs:
    def test_every_pair_matched(self, hr_sources):
        matrices = match_all_pairs(hr_sources)
        assert set(matrices) == {("hr1", "hr2"), ("hr1", "hr3"), ("hr2", "hr3")}

    def test_custom_matcher_accepted(self, hr_sources):
        matrices = match_all_pairs(hr_sources[:2], matcher=NameEqualityMatcher())
        assert ("hr1", "hr2") in matrices


class TestClustering:
    def test_clusters_partition_all_elements(self, hr_sources):
        matrices = match_all_pairs(hr_sources)
        clusters = cluster_elements(hr_sources, matrices, threshold=0.45)
        seen = [ref for cluster in clusters for ref in cluster]
        assert len(seen) == len(set(seen))  # disjoint
        for graph in hr_sources:
            for element in graph:
                if element.element_id == graph.root.element_id:
                    continue
                # keys and domain values are not clustered directly
                if element.kind in (ElementKind.KEY, ElementKind.DOMAIN_VALUE):
                    continue
                assert (graph.name, element.element_id) in set(seen)

    def test_entities_cluster_across_three_sources(self, hr_sources):
        matrices = match_all_pairs(hr_sources)
        clusters = cluster_elements(hr_sources, matrices, threshold=0.45)
        entity_cluster = next(
            c for c in clusters if ("hr1", "hr1/Employee") in c)
        assert ("hr2", "hr2/Worker") in entity_cluster
        assert ("hr3", "hr3/Staff") in entity_cluster

    def test_kind_families_respected(self, hr_sources):
        matrices = match_all_pairs(hr_sources)
        clusters = cluster_elements(hr_sources, matrices, threshold=0.45)
        by_name = {g.name: g for g in hr_sources}
        for cluster in clusters:
            kinds = {
                "container" if by_name[s].element(e).is_container
                else by_name[s].element(e).kind.value
                for s, e in cluster
            }
            assert len(kinds) == 1

    def test_high_threshold_yields_singletons(self, hr_sources):
        matrices = match_all_pairs(hr_sources)
        clusters = cluster_elements(hr_sources, matrices, threshold=0.9999)
        assert all(len(c) == 1 for c in clusters)


class TestDerivedTarget:
    def test_unified_schema_structure(self, hr_sources):
        result = integrate_sources(hr_sources, threshold=0.45, name="unified")
        target = result.target
        assert target.validate() == []
        entities = target.elements_of_kind(ElementKind.ENTITY)
        assert len(entities) == 1  # the three employee entities merged
        attributes = target.children(entities[0].element_id)
        attribute_names = {a.name for a in attributes if a.is_attribute}
        assert len(attribute_names) == 3  # id, salary, grade concepts

    def test_domain_codes_merged(self, hr_sources):
        result = integrate_sources(hr_sources, threshold=0.45)
        domains = result.target.elements_of_kind(ElementKind.DOMAIN)
        assert len(domains) == 1
        codes = {v.name for v in result.target.children(domains[0].element_id)}
        assert codes == {"GS7", "GS9", "GS11"}  # union of both schemes

    def test_documentation_merged(self, hr_sources):
        result = integrate_sources(hr_sources, threshold=0.45)
        entity = result.target.elements_of_kind(ElementKind.ENTITY)[0]
        assert entity.has_documentation

    def test_source_matrices_preaccepted(self, hr_sources):
        result = integrate_sources(hr_sources, threshold=0.45)
        for graph in hr_sources:
            matrix = result.source_to_target[graph.name]
            accepted = matrix.accepted()
            assert accepted, f"{graph.name} should have derived links"
            assert all(c.is_user_defined and c.confidence == 1.0 for c in accepted)
            # the entity link is among them
            entity_links = [
                c for c in accepted
                if graph.element(c.source_id).is_container
            ]
            assert entity_links

    def test_cluster_lookup(self, hr_sources):
        result = integrate_sources(hr_sources, threshold=0.45)
        cluster = result.cluster_of("hr1", "hr1/Employee")
        assert cluster is not None and len(cluster) == 3
        assert result.cluster_of("hr1", "nonexistent") is None

    def test_unclustered_attribute_parked_under_root(self):
        """An attribute whose parent never clustered still lands somewhere."""
        a = load_er({"name": "s1", "entities": [
            {"name": "Alpha", "attributes": [{"name": "x", "type": "string"}]}]})
        b = load_er({"name": "s2", "entities": [
            {"name": "Zulu", "attributes": [{"name": "y", "type": "integer"}]}]})
        result = integrate_sources([a, b], threshold=0.999)
        # nothing clusters; every element still appears in the target
        assert result.target is not None
        names = {e.name for e in result.target}
        assert {"Alpha", "Zulu", "x", "y"} <= names

    def test_derivation_deterministic(self, hr_sources):
        first = integrate_sources(hr_sources, threshold=0.45)
        second = integrate_sources(hr_sources, threshold=0.45)
        assert sorted(e.element_id for e in first.target) == sorted(
            e.element_id for e in second.target)
