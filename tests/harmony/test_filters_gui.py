"""Tests for the Section 4.2 filters and the headless GUI model."""

import pytest

from repro.core import Correspondence
from repro.harmony import (
    ConfidenceFilter,
    DepthFilter,
    FilterSet,
    MatchSession,
    MaxConfidenceFilter,
    OriginFilter,
    SubtreeFilter,
    line_color,
    render,
)


def _links():
    return [
        Correspondence("a", "x", confidence=0.9),
        Correspondence("a", "y", confidence=0.3),
        Correspondence("b", "x", confidence=-0.2),
        Correspondence("b", "y").accept(),
        Correspondence("c", "x").reject(),
    ]


class TestLinkFilters:
    def test_confidence_slider(self):
        visible = ConfidenceFilter(threshold=0.5).apply(_links())
        pairs = {c.pair for c in visible}
        assert pairs == {("a", "x"), ("b", "y")}

    def test_accepted_links_pass_any_slider(self):
        visible = ConfidenceFilter(threshold=0.99).apply(_links())
        assert {c.pair for c in visible} == {("b", "y")}

    def test_rejected_links_never_shown(self):
        visible = ConfidenceFilter(threshold=-1.0).apply(_links())
        assert ("c", "x") not in {c.pair for c in visible}

    def test_origin_filter_human_only(self):
        visible = OriginFilter(show_machine=False).apply(_links())
        assert all(c.is_user_defined for c in visible)

    def test_origin_filter_machine_only(self):
        visible = OriginFilter(show_human=False).apply(_links())
        assert all(not c.is_user_defined for c in visible)

    def test_max_confidence_keeps_best_per_source(self):
        visible = MaxConfidenceFilter(per="source").apply(_links())
        pairs = {c.pair for c in visible}
        assert ("a", "x") in pairs and ("a", "y") not in pairs

    def test_max_confidence_keeps_ties(self):
        links = [
            Correspondence("a", "x", confidence=0.5),
            Correspondence("a", "y", confidence=0.5),
        ]
        visible = MaxConfidenceFilter(per="source").apply(links)
        assert len(visible) == 2  # "ties are possible"

    def test_max_confidence_invalid_axis(self):
        with pytest.raises(ValueError):
            MaxConfidenceFilter(per="diagonal")


class TestNodeFilters:
    def test_depth_filter(self, orders_graph):
        """'the engineer can focus exclusively on matching entities'."""
        enabled = DepthFilter(max_depth=2).enabled_ids(orders_graph)
        assert "orders/purchase_order" in enabled       # tables at depth 2 here
        assert "orders/purchase_order/po_id" not in enabled

    def test_subtree_filter(self, orders_graph):
        flt = SubtreeFilter(orders_graph, "orders/customer")
        enabled = flt.enabled_ids(orders_graph)
        assert "orders/customer/first_name" in enabled
        assert "orders/purchase_order" not in enabled

    def test_combined_filters(self, orders_graph, notice_graph):
        """'By combining these filters, the engineer can restrict her
        attention to the entities in a given sub-schema.'"""
        session = MatchSession(orders_graph, notice_graph)
        session.run_engine()
        filters = FilterSet(
            link_filters=[ConfidenceFilter(threshold=0.0)],
            source_filters=[
                SubtreeFilter(orders_graph, "orders/customer"),
                DepthFilter(max_depth=3),
            ],
        )
        visible = session.links(filters)
        for link in visible:
            assert link.source_id.startswith("orders/customer")
            assert orders_graph.depth(link.source_id) <= 3


class TestGuiModel:
    def test_line_colors(self):
        assert line_color(Correspondence("a", "b").accept()) == "green"
        assert line_color(Correspondence("a", "b").reject()) == "red"
        assert line_color(Correspondence("a", "b", confidence=0.8)) == "dark-blue"
        assert line_color(Correspondence("a", "b", confidence=0.5)) == "blue"
        assert line_color(Correspondence("a", "b", confidence=0.1)) == "light-blue"

    def test_render_full_frame(self, orders_graph, notice_graph):
        session = MatchSession(orders_graph, notice_graph)
        session.run_engine()
        session.accept("orders/customer/first_name",
                       "notice/shippingNotice/recipientName/firstName")
        state = render(session, FilterSet(link_filters=[ConfidenceFilter(0.0)]))
        assert state.progress == session.progress()
        assert any(n.name == "customer" for n in state.source_tree)
        assert any(line.color == "green" for line in state.lines)
        text = state.to_text()
        assert "progress:" in text and "lines:" in text

    def test_disabled_nodes_marked(self, orders_graph, notice_graph):
        session = MatchSession(orders_graph, notice_graph)
        filters = FilterSet(source_filters=[SubtreeFilter(orders_graph, "orders/customer")])
        state = render(session, filters)
        by_id = {n.element_id: n for n in state.source_tree}
        assert by_id["orders/customer/first_name"].enabled
        assert not by_id["orders/purchase_order"].enabled

    def test_lines_sorted_by_confidence(self, orders_graph, notice_graph):
        session = MatchSession(orders_graph, notice_graph)
        session.run_engine()
        state = render(session, FilterSet(link_filters=[ConfidenceFilter(0.0)]))
        confidences = [line.confidence for line in state.lines]
        assert confidences == sorted(confidences, reverse=True)

    def test_complete_flags_shown(self, orders_graph, notice_graph):
        session = MatchSession(orders_graph, notice_graph)
        session.run_engine()
        session.mark_subtree_complete("orders/customer", side="source")
        state = render(session)
        by_id = {n.element_id: n for n in state.source_tree}
        assert by_id["orders/customer"].complete
