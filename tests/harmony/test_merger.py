"""Tests for the vote merger (Section 4's magnitude+performance weighting)."""

import pytest

from repro.core import VoterScore
from repro.harmony import MAX_WEIGHT, MIN_WEIGHT, VoteMerger


def _vote(voter, score, pair=("a", "x")):
    return VoterScore(voter, pair[0], pair[1], score)


class TestMergePair:
    def test_no_votes(self):
        assert VoteMerger().merge_pair([]) == 0.0

    def test_single_vote_passes_through(self):
        assert VoteMerger().merge_pair([_vote("v", 0.6)]) == pytest.approx(0.6)

    def test_abstentions_have_no_say(self):
        merged = VoteMerger().merge_pair([_vote("a", 0.8), _vote("b", 0.0)])
        assert merged == pytest.approx(0.8)

    def test_magnitude_weighting(self):
        """A confident voter outweighs an uncertain one (paper: 'a score
        close to 0 indicates that the match voter did not see enough
        evidence')."""
        merged = VoteMerger().merge_pair([_vote("strong", 0.9), _vote("weak", -0.1)])
        # plain average would be 0.4; magnitude weighting pulls toward 0.9
        assert merged > 0.7

    def test_balanced_disagreement_cancels(self):
        merged = VoteMerger().merge_pair([_vote("a", 0.5), _vote("b", -0.5)])
        assert merged == pytest.approx(0.0)

    def test_performance_weighting(self):
        merger = VoteMerger(weights={"trusted": 2.0, "doubted": 0.5})
        merged = merger.merge_pair([_vote("trusted", 0.5), _vote("doubted", -0.5)])
        assert merged > 0.0

    def test_merged_score_never_certain(self):
        """Machine scores stay strictly inside (-1, +1) — ±1 is reserved
        for user decisions (Section 5.1.2)."""
        merged = VoteMerger().merge_pair([_vote("a", 1.0), _vote("b", 1.0)])
        assert merged == pytest.approx(0.99)
        merged = VoteMerger().merge_pair([_vote("a", -1.0)])
        assert merged == pytest.approx(-0.99)


class TestWeights:
    def test_default_weight_is_one(self):
        assert VoteMerger().weight_of("anything") == 1.0

    def test_set_weight_clamped(self):
        merger = VoteMerger()
        merger.set_weight("v", 100.0)
        assert merger.weight_of("v") == MAX_WEIGHT
        merger.set_weight("v", 0.0001)
        assert merger.weight_of("v") == MIN_WEIGHT

    def test_scale_weight(self):
        merger = VoteMerger()
        merger.scale_weight("v", 2.0)
        assert merger.weight_of("v") == 2.0
        merger.scale_weight("v", 0.5)
        assert merger.weight_of("v") == 1.0


class TestMergeAll:
    def test_grouped_by_pair(self):
        votes = [
            _vote("a", 0.8, ("s1", "t1")),
            _vote("b", 0.6, ("s1", "t1")),
            _vote("a", -0.4, ("s2", "t1")),
        ]
        results = VoteMerger().merge(votes)
        by_pair = {(r.source_id, r.target_id): r for r in results}
        assert len(by_pair) == 2
        assert by_pair[("s1", "t1")].confidence > 0.6
        assert by_pair[("s2", "t1")].confidence < 0.0

    def test_provenance_kept(self):
        votes = [_vote("a", 0.8), _vote("b", 0.2)]
        result = VoteMerger().merge(votes)[0]
        assert result.vote_of("a").score == 0.8
        assert result.vote_of("missing") is None
