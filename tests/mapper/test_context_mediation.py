"""Tests for context mediation (task 4's semantic values)."""

import pytest

from repro.core import ElementKind, SchemaElement, TransformError
from repro.mapper.context_mediation import Context, ContextMediator, SemanticValue


class TestContext:
    def test_plain_context(self):
        assert Context().is_plain
        assert not Context(units="feet").is_plain
        assert not Context(scale=1000).is_plain

    def test_of_element(self):
        element = SchemaElement("s/a", "a", ElementKind.ATTRIBUTE)
        element.annotate("units", "feet")
        element.annotate("scale", 1000)
        context = Context.of_element(element)
        assert context.units == "feet"
        assert context.scale == 1000.0

    def test_of_plain_element(self):
        element = SchemaElement("s/a", "a", ElementKind.ATTRIBUTE)
        assert Context.of_element(element).is_plain


class TestMediation:
    def test_identity_when_contexts_equal(self):
        mediator = ContextMediator()
        context = Context(units="feet")
        assert mediator.mediate(10, context, context) == 10

    def test_unit_conversion(self):
        mediator = ContextMediator()
        result = mediator.mediate(10, Context(units="feet"), Context(units="meters"))
        assert result == pytest.approx(3.048)

    def test_scale_conversion(self):
        """Salary 'in thousands' → plain dollars."""
        mediator = ContextMediator()
        result = mediator.mediate(98, Context(scale=1000), Context(scale=1))
        assert result == pytest.approx(98_000)

    def test_currency_conversion(self):
        mediator = ContextMediator()
        mediator.register_exchange_rate("USD", "EUR", 0.8)
        result = mediator.mediate(
            100, Context(currency="USD"), Context(currency="EUR"))
        assert result == pytest.approx(80.0)
        # the inverse rate was registered automatically
        back = mediator.mediate(
            80.0, Context(currency="EUR"), Context(currency="USD"))
        assert back == pytest.approx(100.0)

    def test_coding_scheme_conversion(self):
        mediator = ContextMediator()
        mediator.register_code_mapping("us_surface", "eu_surface",
                                       {"ASPH": "ASPHALT", "TURF": "GRASS"})
        result = mediator.mediate(
            "ASPH",
            Context(coding_scheme="us_surface"),
            Context(coding_scheme="eu_surface"))
        assert result == "ASPHALT"

    def test_composed_dimensions(self):
        """Thousands of USD in feet... well: scale + currency together."""
        mediator = ContextMediator()
        mediator.register_exchange_rate("USD", "EUR", 0.5)
        result = mediator.mediate(
            2,  # 2 thousand USD
            Context(scale=1000, currency="USD"),
            Context(scale=1, currency="EUR"))
        assert result == pytest.approx(1000.0)

    def test_missing_unit_context_raises(self):
        mediator = ContextMediator()
        with pytest.raises(TransformError):
            mediator.mediate(1, Context(units="feet"), Context())

    def test_missing_exchange_rate_raises(self):
        mediator = ContextMediator()
        with pytest.raises(TransformError):
            mediator.mediate(1, Context(currency="USD"), Context(currency="JPY"))

    def test_missing_code_mapping_raises(self):
        mediator = ContextMediator()
        with pytest.raises(TransformError):
            mediator.mediate("X", Context(coding_scheme="a"),
                             Context(coding_scheme="b"))

    def test_unknown_code_raises_strict(self):
        mediator = ContextMediator()
        mediator.register_code_mapping("a", "b", {"X": "Y"})
        with pytest.raises(TransformError):
            mediator.mediate("Z", Context(coding_scheme="a"),
                             Context(coding_scheme="b"))

    def test_invalid_exchange_rate(self):
        with pytest.raises(TransformError):
            ContextMediator().register_exchange_rate("USD", "EUR", 0)

    def test_conversion_emits_code(self):
        """The derived transform carries task 4's code snippet."""
        mediator = ContextMediator()
        transform = mediator.conversion(
            Context(units="feet"), Context(units="meters"))
        code = transform.to_code("elev")
        from repro.mapper import Environment, evaluate

        assert evaluate(code, Environment({"elev": 10})) == pytest.approx(3.048)


class TestSemanticValue:
    def test_in_context(self):
        mediator = ContextMediator()
        value = SemanticValue(10, Context(units="feet"))
        converted = value.in_context(Context(units="meters"), mediator)
        assert converted.value == pytest.approx(3.048)
        assert converted.context.units == "meters"


class TestAttributeDerivation:
    def test_transform_from_annotations(self):
        """The automatic part of task 4: read contexts off the elements."""
        source = SchemaElement("s/elev", "elevation", ElementKind.ATTRIBUTE,
                               datatype="integer")
        source.annotate("units", "feet")
        target = SchemaElement("t/elev", "elevationMeters", ElementKind.ATTRIBUTE,
                               datatype="decimal")
        target.annotate("units", "meters")
        mediator = ContextMediator()
        transform = mediator.attribute_transform(source, target)
        assert transform.apply(313) == pytest.approx(95.4, abs=0.1)
