"""Tests for domain, attribute and entity transformations (tasks 4-6)."""

import pytest

from repro.core import TransformError
from repro.mapper import (
    AggregateTransform,
    CommentPopulation,
    ComposedTransform,
    DirectEntity,
    Environment,
    FormatTransform,
    IdentityTransform,
    JoinEntity,
    LinearTransform,
    LookupTransform,
    MetadataPushdown,
    ScalarTransform,
    SplitEntity,
    UnionEntity,
    evaluate,
    group_rows,
    infer_domain_transform,
    unit_conversion,
)


class TestDomainTransforms:
    def test_identity(self):
        transform = IdentityTransform()
        assert transform.apply("X") == "X"
        assert transform.to_code("v") == "$v"

    def test_feet_to_meters(self):
        """The paper's example: convert from feet to meters."""
        transform = unit_conversion("feet", "meters")
        assert transform.apply(10) == pytest.approx(3.048)

    def test_same_unit_is_identity_scale(self):
        transform = unit_conversion("feet", "FEET")
        assert transform.apply(7) == 7

    def test_unknown_conversion_rejected(self):
        with pytest.raises(TransformError):
            unit_conversion("furlongs", "parsecs")

    def test_fahrenheit_celsius(self):
        f_to_c = unit_conversion("fahrenheit", "celsius")
        assert f_to_c.apply(212) == pytest.approx(100.0)
        assert f_to_c.apply(32) == pytest.approx(0.0)

    def test_linear_inverse(self):
        transform = LinearTransform(scale=2.0, offset=3.0)
        inverse = transform.inverse()
        assert inverse.apply(transform.apply(11.0)) == pytest.approx(11.0)

    def test_linear_code_emission_roundtrips(self):
        transform = LinearTransform(scale=0.3048, digits=2)
        code = transform.to_code("feet")
        assert evaluate(code, Environment({"feet": 100})) == transform.apply(100)

    def test_linear_rejects_non_numeric(self):
        with pytest.raises(TransformError):
            LinearTransform(scale=2.0).apply("abc")

    def test_null_passes_through(self):
        assert LinearTransform(scale=2.0).apply(None) is None

    def test_lookup_transform(self):
        transform = LookupTransform("status", {"OPEN": "O"}, default="?")
        assert transform.apply("OPEN") == "O"
        assert transform.apply("GHOST") == "?"
        assert transform.to_code("s") == "lookup_status($s)"

    def test_lookup_strict_mode(self):
        transform = LookupTransform("status", {"OPEN": "O"}, strict=True)
        with pytest.raises(TransformError):
            transform.apply("GHOST")

    def test_lookup_coverage(self):
        transform = LookupTransform("t", {"A": 1, "B": 2})
        assert transform.coverage(["A", "B", "C", "D"]) == 0.5
        assert transform.coverage([]) == 1.0

    def test_format_transform(self):
        transform = FormatTransform("upper($value)")
        assert transform.apply("abc") == "ABC"
        assert transform.to_code("x") == "upper($x)"

    def test_composition(self):
        feet_to_meters = unit_conversion("feet", "meters")
        rounded = feet_to_meters.then(FormatTransform("round($value, 1)"))
        assert rounded.apply(10) == pytest.approx(3.0)
        # emitted code computes the same thing
        code = rounded.to_code("ft")
        assert evaluate(code, Environment({"ft": 10})) == rounded.apply(10)


class TestInferDomainTransform:
    def test_identical_codes_identity(self):
        transform = infer_domain_transform(["A", "B"], ["A", "B", "C"])
        assert isinstance(transform, IdentityTransform)

    def test_case_difference_format(self):
        transform = infer_domain_transform(["open", "ship"], ["OPEN", "SHIP"])
        assert isinstance(transform, FormatTransform)
        assert transform.apply("open") == "OPEN"

    def test_partial_overlap_lookup(self):
        transform = infer_domain_transform(["Open", "Gone"], ["OPEN", "SHIP"])
        assert isinstance(transform, LookupTransform)
        assert transform.apply("Open") == "OPEN"
        assert transform.apply("Gone") is None  # left for the engineer


class TestAttributeTransforms:
    def test_scalar(self):
        transform = ScalarTransform("$age + 1")
        assert transform.compute(Environment({"age": 41})) == 42
        assert transform.required_variables() == ["age"]

    def test_aggregate_avg(self):
        """AverageSalaryByDepartment from Salary (the paper's example)."""
        rows = [{"salary": 100.0}, {"salary": 200.0}, {"salary": None}]
        transform = AggregateTransform("avg", "employees", "$row.salary")
        env = Environment({"employees": rows})
        assert transform.compute(env) == pytest.approx(150.0)

    def test_aggregate_count(self):
        transform = AggregateTransform("count", "employees")
        assert transform.compute(Environment({"employees": [{}, {}, {}]})) == 3

    def test_aggregate_empty_group(self):
        transform = AggregateTransform("sum", "rows", "$row.x")
        assert transform.compute(Environment({"rows": []})) is None

    def test_aggregate_unknown_function(self):
        with pytest.raises(TransformError):
            AggregateTransform("median", "rows", "$row.x")

    def test_aggregate_requires_expression(self):
        with pytest.raises(TransformError):
            AggregateTransform("sum", "rows")

    def test_aggregate_unbound_group(self):
        transform = AggregateTransform("sum", "rows", "$row.x")
        with pytest.raises(TransformError):
            transform.compute(Environment())

    def test_metadata_pushdown(self):
        """'pushing metadata down to data (e.g., to populate a type
        attribute or timestamp)'."""
        transform = MetadataPushdown("ERWin", description="source system name")
        assert transform.compute(Environment()) == "ERWin"
        assert transform.to_code() == '"ERWin"'

    def test_metadata_pushdown_code_types(self):
        assert MetadataPushdown(5).to_code() == "5"
        assert MetadataPushdown(True).to_code() == "true"

    def test_comment_population(self):
        """'populating a comment (in the target) to store source attribute
        information that has no corresponding attribute'."""
        transform = CommentPopulation(parts=["middleName", "suffix"])
        env = Environment({"middleName": "Q", "suffix": None})
        assert transform.compute(env) == "unmapped: middleName=Q"

    def test_comment_population_code_evaluates(self):
        transform = CommentPopulation(parts=["a"])
        code = transform.to_code()
        assert "a=" in evaluate(code, Environment({"a": "v"}))


class TestEntityTransforms:
    CUSTOMERS = [
        {"cust_id": 1, "name": "Mork"},
        {"cust_id": 2, "name": "Seligman"},
    ]
    ORDERS = [
        {"po_id": 10, "cust_id": 1, "total": 5.0},
        {"po_id": 11, "cust_id": 1, "total": 7.0},
        {"po_id": 12, "cust_id": 9, "total": 9.0},
    ]

    def test_direct(self):
        rows = DirectEntity("orders").rows({"orders": self.ORDERS})
        assert len(rows) == 3
        rows[0]["po_id"] = 999  # copies, not aliases
        assert self.ORDERS[0]["po_id"] == 10

    def test_direct_unknown_source(self):
        with pytest.raises(TransformError):
            DirectEntity("ghost").rows({})

    def test_inner_join(self):
        join = JoinEntity("orders", "customers", on=[("cust_id", "cust_id")])
        rows = join.rows({"orders": self.ORDERS, "customers": self.CUSTOMERS})
        assert len(rows) == 2  # order 12 has no customer
        assert rows[0]["name"] == "Mork"

    def test_left_join_keeps_unmatched(self):
        join = JoinEntity("orders", "customers", on=[("cust_id", "cust_id")], kind="left")
        rows = join.rows({"orders": self.ORDERS, "customers": self.CUSTOMERS})
        assert len(rows) == 3
        unmatched = [r for r in rows if r["po_id"] == 12][0]
        assert "name" not in unmatched

    def test_join_collision_prefixed(self):
        left = [{"id": 1, "name": "left-name"}]
        right = [{"id": 1, "name": "right-name"}]
        join = JoinEntity("l", "r", on=[("id", "id")])
        rows = join.rows({"l": left, "r": right})
        assert rows[0]["name"] == "left-name"
        assert rows[0]["r.name"] == "right-name"

    def test_join_requires_keys(self):
        with pytest.raises(TransformError):
            JoinEntity("a", "b", on=[])

    def test_join_invalid_kind(self):
        with pytest.raises(TransformError):
            JoinEntity("a", "b", on=[("x", "x")], kind="full")

    def test_union_with_discriminator(self):
        """Union 'effectively elevates' source names into data."""
        union = UnionEntity(sources=["orders", "customers"], discriminator="origin")
        rows = union.rows({"orders": self.ORDERS, "customers": self.CUSTOMERS})
        assert len(rows) == 5
        assert {r["origin"] for r in rows} == {"orders", "customers"}

    def test_union_needs_two_sources(self):
        with pytest.raises(TransformError):
            UnionEntity(sources=["only"])

    def test_split_by_predicate(self):
        """Value-based split elevates data to metadata."""
        split = SplitEntity("orders", "$row.total > 6", drop_attribute="total")
        rows = split.rows({"orders": self.ORDERS})
        assert [r["po_id"] for r in rows] == [11, 12]
        assert all("total" not in r for r in rows)

    def test_group_rows(self):
        groups = group_rows(self.ORDERS, by=["cust_id"])
        assert len(groups[(1,)]) == 2
        assert len(groups[(9,)]) == 1

    def test_to_code_mentions_structure(self):
        assert "union" in UnionEntity(sources=["a", "b"]).to_code()
        assert "where" in SplitEntity("a", "$row.x == 1").to_code()
        join_code = JoinEntity("a", "b", on=[("x", "y")]).to_code()
        assert "$l.x == $r.y" in join_code
