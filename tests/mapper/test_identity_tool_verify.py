"""Tests for object identity (task 7), the mapping tool, and verification (task 9)."""

import pytest

from repro.core import MappingError, TransformError
from repro.mapper import (
    InheritedIdentity,
    KeyIdentity,
    LookupTransform,
    MappingTool,
    ScalarTransform,
    SkolemFunction,
    assign_identifiers,
    verify_instances,
    verify_lookup_coverage,
    verify_spec,
)


class TestKeyIdentity:
    def test_single_key(self):
        rule = KeyIdentity(["po_id"])
        assert rule.identify({"po_id": 7}) == 7
        assert rule.to_code() == "$po_id"

    def test_composite_key(self):
        rule = KeyIdentity(["a", "b"])
        assert rule.identify({"a": 1, "b": 2}) == "1:2"
        assert "concat" in rule.to_code()

    def test_missing_key_attribute(self):
        with pytest.raises(TransformError):
            KeyIdentity(["missing"]).identify({"other": 1})

    def test_null_key_rejected(self):
        with pytest.raises(TransformError):
            KeyIdentity(["k"]).identify({"k": None})

    def test_needs_attributes(self):
        with pytest.raises(TransformError):
            KeyIdentity([])


class TestSkolemFunction:
    def test_deterministic(self):
        rule = SkolemFunction("person", ["first", "last"])
        row = {"first": "Peter", "last": "Mork"}
        assert rule.identify(row) == rule.identify(dict(row))

    def test_distinct_inputs_distinct_ids(self):
        rule = SkolemFunction("person", ["first"])
        assert rule.identify({"first": "Peter"}) != rule.identify({"first": "Len"})

    def test_function_name_matters(self):
        a = SkolemFunction("f", ["x"]).identify({"x": 1})
        b = SkolemFunction("g", ["x"]).identify({"x": 1})
        assert a != b

    def test_code_form(self):
        assert SkolemFunction("f", ["x", "y"]).to_code() == "skolem:f($x, $y)"


class TestInheritedIdentity:
    def test_parent_plus_local(self):
        """Implicit keys inherited from a parent entity (nested metamodels)."""
        rule = InheritedIdentity(KeyIdentity(["po_id"]), "line_no")
        assert rule.identify({"po_id": 7, "line_no": 2}) == "7/2"

    def test_missing_local_rejected(self):
        rule = InheritedIdentity(KeyIdentity(["po_id"]), "line_no")
        with pytest.raises(TransformError):
            rule.identify({"po_id": 7})


class TestAssignIdentifiers:
    def test_assignment(self):
        rows = assign_identifiers([{"k": 1}, {"k": 2}], KeyIdentity(["k"]))
        assert [r["_id"] for r in rows] == [1, 2]

    def test_duplicates_rejected(self):
        """Colliding target keys are a mapping bug — surfaced immediately."""
        with pytest.raises(TransformError):
            assign_identifiers([{"k": 1}, {"k": 1}], KeyIdentity(["k"]))


class TestMappingTool:
    def _tool(self, orders_graph, notice_graph) -> MappingTool:
        tool = MappingTool(orders_graph, notice_graph)
        tool.matrix.set_confidence(
            "orders/purchase_order", "notice/shippingNotice", 1.0, user_defined=True)
        tool.matrix.set_confidence(
            "orders/purchase_order/po_id", "notice/shippingNotice/orderNumber",
            1.0, user_defined=True)
        return tool

    def test_draft_builds_entity_and_attribute_mappings(self, orders_graph, notice_graph):
        tool = self._tool(orders_graph, notice_graph)
        spec = tool.draft_from_matrix()
        assert len(spec.entities) == 1
        entity = spec.entities[0]
        assert entity.target_entity == "notice/shippingNotice"
        assert entity.attribute_for("notice/shippingNotice/orderNumber") is not None

    def test_draft_uses_source_keys_for_identity(self, orders_graph, notice_graph):
        tool = self._tool(orders_graph, notice_graph)
        spec = tool.draft_from_matrix()
        assert isinstance(spec.entities[0].identity, KeyIdentity)

    def test_skolem_proposed_without_keys(self, purchase_order_graph, shipping_notice_graph):
        tool = MappingTool(purchase_order_graph, shipping_notice_graph)
        tool.matrix.set_confidence(
            "po/purchaseOrder/shipTo", "sn/shippingInfo", 1.0, user_defined=True)
        tool.matrix.set_confidence(
            "po/purchaseOrder/shipTo/firstName", "sn/shippingInfo/name",
            1.0, user_defined=True)
        spec = tool.draft_from_matrix()
        assert isinstance(spec.entities[0].identity, SkolemFunction)

    def test_variable_binding_recorded(self, orders_graph, notice_graph):
        tool = self._tool(orders_graph, notice_graph)
        tool.bind_variable("orders/purchase_order/po_id", "$poNum")
        assert tool.variable_of("orders/purchase_order/po_id") == "poNum"
        assert tool.spec.variable_bindings["poNum"] == "po_id"

    def test_set_attribute_transform_syncs_matrix(self, orders_graph, notice_graph):
        tool = self._tool(orders_graph, notice_graph)
        tool.draft_from_matrix()
        tool.set_attribute_transform(
            "notice/shippingNotice", "notice/shippingNotice/total",
            ScalarTransform("$subtotal * 1.05"),
        )
        assert tool.matrix.column("notice/shippingNotice/total").code == "$subtotal * 1.05"

    def test_attribute_transform_requires_entity(self, orders_graph, notice_graph):
        tool = MappingTool(orders_graph, notice_graph)
        with pytest.raises(MappingError):
            tool.set_attribute_transform(
                "notice/ghost", "notice/ghost/x", ScalarTransform("1"))

    def test_register_lookup(self, orders_graph, notice_graph):
        tool = self._tool(orders_graph, notice_graph)
        tool.register_lookup("status", {"OPEN": "O"})
        env = tool.spec.environment()
        from repro.mapper import evaluate

        assert evaluate('lookup_status("OPEN")', env) == "O"


class TestVerification:
    def _spec(self, orders_graph, notice_graph, complete=True):
        tool = MappingTool(orders_graph, notice_graph)
        tool.matrix.set_confidence(
            "orders/purchase_order", "notice/shippingNotice", 1.0, user_defined=True)
        for source, target in [
            ("orders/purchase_order/po_id", "notice/shippingNotice/orderNumber"),
            ("orders/purchase_order/subtotal", "notice/shippingNotice/total"),
        ]:
            tool.matrix.set_confidence(source, target, 1.0, user_defined=True)
        spec = tool.draft_from_matrix()
        if complete:
            entity = spec.entities[0]
            tool.set_attribute_transform(
                "notice/shippingNotice", "notice/shippingNotice/recipientName/firstName",
                ScalarTransform('"n/a"'))
            tool.set_attribute_transform(
                "notice/shippingNotice", "notice/shippingNotice/recipientName/lastName",
                ScalarTransform('"n/a"'))
        return tool, spec

    def test_complete_spec_verifies(self, orders_graph, notice_graph):
        tool, spec = self._spec(orders_graph, notice_graph, complete=True)
        report = verify_spec(spec, orders_graph, notice_graph)
        assert report.ok, report.to_text()

    def test_missing_required_attribute_reported(self, orders_graph, notice_graph):
        tool, spec = self._spec(orders_graph, notice_graph, complete=False)
        report = verify_spec(spec, orders_graph, notice_graph)
        assert not report.ok
        assert any("firstName" in str(v) for v in report.errors)

    def test_missing_identity_reported(self, orders_graph, notice_graph):
        tool, spec = self._spec(orders_graph, notice_graph, complete=True)
        spec.entities[0].identity = None
        report = verify_spec(spec, orders_graph, notice_graph)
        assert any("identity" in str(v) for v in report.errors)

    def test_unparseable_code_reported(self, orders_graph, notice_graph):
        tool, spec = self._spec(orders_graph, notice_graph, complete=True)
        spec.entities[0].attributes[0].transform = ScalarTransform("((broken")
        report = verify_spec(spec, orders_graph, notice_graph)
        assert any("parse" in str(v) for v in report.errors)

    def test_unregistered_lookup_reported(self, orders_graph, notice_graph):
        tool, spec = self._spec(orders_graph, notice_graph, complete=True)
        spec.entities[0].attributes[0].transform = ScalarTransform("lookup_ghost($x)")
        report = verify_spec(spec, orders_graph, notice_graph)
        assert any("ghost" in str(v) for v in report.errors)

    def test_unknown_target_entity_reported(self, orders_graph, notice_graph):
        tool, spec = self._spec(orders_graph, notice_graph, complete=True)
        spec.entities[0].target_entity = "notice/nonexistent"
        report = verify_spec(spec, orders_graph, notice_graph)
        assert not report.ok

    def test_lookup_coverage(self, orders_graph):
        from repro.loaders import define_domain

        domain_id = define_domain(
            orders_graph, "Status", [("OPEN", ""), ("SHIP", ""), ("HOLD", "")],
            attach_to=["orders/purchase_order/status"],
        )
        transform = LookupTransform("status", {"OPEN": "O", "SHIP": "S"})
        report = verify_lookup_coverage(transform, orders_graph, domain_id)
        assert len(report.warnings) == 1
        assert "HOLD" in str(report.warnings[0])

    def test_verify_instances_types_and_domains(self, orders_graph):
        from repro.loaders import define_domain

        define_domain(
            orders_graph, "Status", [("OPEN", ""), ("SHIP", "")],
            attach_to=["orders/purchase_order/status"],
        )
        rows = [
            {"po_id": 1, "cust_id": 2, "order_date": "2006-01-01",
             "subtotal": 5.0, "status": "OPEN"},
            {"po_id": "oops", "cust_id": 2, "order_date": "2006-01-01",
             "subtotal": 5.0, "status": "BAD"},
            {"po_id": 3, "cust_id": None, "order_date": None,
             "subtotal": 1.0, "status": "SHIP"},
        ]
        report = verify_instances(rows, orders_graph, "orders/purchase_order")
        messages = [str(v) for v in report.violations]
        assert any("not a integer" in m for m in messages)          # row 1 po_id
        assert any("outside domain" in m for m in messages)         # row 1 status
        assert any("cust_id" in m and "null" in m for m in messages)  # row 2
