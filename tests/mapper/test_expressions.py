"""Tests for the transformation expression language."""

import pytest

from repro.core import ExpressionError
from repro.mapper import Environment, evaluate, functions_used, parse, variables_used


class TestParsing:
    def test_literals(self):
        assert evaluate("42") == 42
        assert evaluate("4.5") == 4.5
        assert evaluate('"text"') == "text"
        assert evaluate("'single'") == "single"
        assert evaluate("true") is True
        assert evaluate("false") is False
        assert evaluate("null") is None

    def test_empty_expression_rejected(self):
        with pytest.raises(ExpressionError):
            parse("")
        with pytest.raises(ExpressionError):
            parse("   ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ExpressionError):
            parse("1 + 2 extra juice")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ExpressionError):
            parse("(1 + 2")

    def test_unexpected_character(self):
        with pytest.raises(ExpressionError):
            parse("1 @ 2")


class TestArithmetic:
    def test_precedence(self):
        assert evaluate("2 + 3 * 4") == 14
        assert evaluate("(2 + 3) * 4") == 20

    def test_unary_minus(self):
        assert evaluate("-5 + 3") == -2

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            evaluate("1 / 0")

    def test_modulo(self):
        assert evaluate("7 % 3") == 1

    def test_figure3_total(self):
        """Figure 3's total column: data($shipto/subtotal) * 1.05."""
        env = Environment({"subtotal": 100})
        assert evaluate("data($subtotal) * 1.05", env) == pytest.approx(105.0)

    def test_string_plus_concatenates(self):
        assert evaluate('"a" + "b"') == "ab"

    def test_arithmetic_on_null_rejected(self):
        with pytest.raises(ExpressionError):
            evaluate("null + 1")


class TestVariablesAndFields:
    def test_dollar_variables(self):
        assert evaluate("$x * 2", Environment({"x": 21})) == 42

    def test_bare_identifiers_are_variables(self):
        assert evaluate("x + y", Environment({"x": 1, "y": 2})) == 3

    def test_unbound_variable(self):
        with pytest.raises(ExpressionError):
            evaluate("$ghost")

    def test_field_access_on_dict(self):
        env = Environment({"row": {"name": "Mork", "total": 7}})
        assert evaluate("$row.name", env) == "Mork"
        assert evaluate("$row.total + 1", env) == 8

    def test_nested_field_access(self):
        env = Environment({"r": {"address": {"city": "McLean"}}})
        assert evaluate("$r.address.city", env) == "McLean"

    def test_field_on_null_is_null(self):
        env = Environment({"r": None})
        assert evaluate("$r.city", env) is None


class TestFunctions:
    def test_figure3_name_column(self):
        """concat($lName, concat(", ", $fName)) from Figure 3."""
        env = Environment({"lName": "Mork", "fName": "Peter"})
        assert evaluate('concat($lName, concat(", ", $fName))', env) == "Mork, Peter"

    def test_string_functions(self):
        assert evaluate('upper("abc")') == "ABC"
        assert evaluate('lower("ABC")') == "abc"
        assert evaluate('trim("  x  ")') == "x"
        assert evaluate('length("hello")') == 5
        assert evaluate('substring("abcdef", 2, 3)') == "bcd"
        assert evaluate('replace("a-b", "-", "_")') == "a_b"
        assert evaluate('starts_with("abc", "ab")') is True
        assert evaluate('contains("abc", "zz")') is False

    def test_numeric_functions(self):
        assert evaluate("round(2.567, 1)") == 2.6
        assert evaluate("floor(2.9)") == 2
        assert evaluate("ceil(2.1)") == 3
        assert evaluate("abs(-4)") == 4
        assert evaluate("min(3, 1, 2)") == 1
        assert evaluate("max(3, 1, 2)") == 3
        assert evaluate('number("2.5")') == 2.5
        assert evaluate('int("7")') == 7

    def test_conditionals(self):
        assert evaluate('if(1 > 0, "yes", "no")') == "yes"
        assert evaluate("coalesce(null, null, 5)") == 5

    def test_logic(self):
        assert evaluate("true and false") is False
        assert evaluate("true or false") is True
        assert evaluate("not false") is True

    def test_comparisons(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 2") is True
        assert evaluate('"a" == "a"') is True
        assert evaluate("3 != 3") is False

    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            evaluate("frobnicate(1)")

    def test_function_error_wrapped(self):
        with pytest.raises(ExpressionError):
            evaluate('number("not a number")')


class TestEnvironment:
    def test_child_scope_isolated(self):
        env = Environment({"x": 1})
        child = env.child({"x": 2, "y": 3})
        assert evaluate("$x", child) == 2
        assert evaluate("$x", env) == 1
        with pytest.raises(ExpressionError):
            evaluate("$y", env)

    def test_lookup_tables(self):
        env = Environment()
        env.register_lookup("status", {"OPEN": "O", "SHIP": "S"}, default="?")
        assert evaluate('lookup_status("OPEN")', env) == "O"
        assert evaluate('lookup_status("GHOST")', env) == "?"

    def test_custom_functions(self):
        env = Environment(functions={"double": lambda v: v * 2})
        assert evaluate("double(21)", env) == 42


class TestIntrospection:
    def test_variables_used(self):
        assert variables_used('concat($lName, ", ", $fName)') == ["fName", "lName"]
        assert variables_used("$a.field + b") == ["a", "b"]

    def test_functions_used(self):
        assert functions_used('concat(upper($x), lookup_t($y))') == [
            "concat", "lookup_t", "upper",
        ]
