"""ANN blocking and the embedding voter through the harmony engine.

The dense path earns its keep only if it is *substitutable*: swapping
``BlockingConfig(strategy="ann")`` for the inverted index must never
drop a ground-truth correspondence the exhaustive pipeline would score,
a warm ANN-blocked rematch must equal a cold match on the evolved
graphs, and a precomputed :class:`EmbeddingSnapshot` must change
nothing but wall time.  Speed is gated in ``benchmarks/perf_smoke.py``;
this file pins the equivalences.
"""

import pytest

from repro.core import ElementKind, SchemaElement
from repro.eval import standard_suite
from repro.harmony import (
    BlockingConfig,
    CandidateBlocker,
    EmbeddingBlockingIndex,
    EmbeddingVoter,
    EngineConfig,
    HarmonyEngine,
    MatchContext,
    default_voters,
    evolution_closure,
    graph_delta,
    snapshot_embeddings,
)
from repro.harmony.blocking import BLOCKING_STRATEGIES


def _pair_ids(pairs):
    return {(s.element_id, t.element_id) for s, t in pairs}


def _ordered_pairs(result):
    return [(s.element_id, t.element_id) for s, t in result.pairs]


def _ann_engine_config(**overrides):
    base = dict(
        embedding=True,
        blocking=BlockingConfig(strategy="ann"),
        incremental_blocking=True,
        incremental_rematch=True,
        reuse_context=True,
    )
    base.update(overrides)
    return EngineConfig(**base)


class TestStrategyValidation:
    def test_vocabulary(self):
        assert BLOCKING_STRATEGIES == ("inverted", "ann")

    def test_unknown_strategy_raises_actionably(self):
        with pytest.raises(ValueError) as excinfo:
            BlockingConfig(strategy="lsh")
        message = str(excinfo.value)
        assert "lsh" in message
        assert "inverted" in message and "ann" in message

    def test_known_strategies_accepted(self):
        for strategy in BLOCKING_STRATEGIES:
            assert BlockingConfig(strategy=strategy).strategy == strategy


class TestAnnCandidates:
    def test_ground_truth_survives_default_budget(self):
        """The same recall property the inverted path is held to:
        blocking never drops a true correspondence the exhaustive
        pipeline would have scored."""
        blocker = CandidateBlocker(BlockingConfig(strategy="ann"))
        for scenario in standard_suite():
            context = MatchContext(scenario.source, scenario.target)
            exhaustive = _pair_ids(context.candidate_pairs())
            blocked = _pair_ids(blocker.candidates(context).pairs)
            lost = (scenario.alignment.pairs & exhaustive) - blocked
            assert not lost, f"{scenario.name}: ann blocking lost {sorted(lost)}"

    def test_blocked_pairs_subset_of_exhaustive(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph)
        result = CandidateBlocker(
            BlockingConfig(strategy="ann")).candidates(context)
        assert _pair_ids(result.pairs) <= _pair_ids(context.candidate_pairs())
        assert result.total_pairs == len(context.candidate_pairs())

    def test_small_families_never_pruned(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph)
        result = CandidateBlocker(
            BlockingConfig(strategy="ann")).candidates(context)
        assert _pair_ids(result.pairs) == _pair_ids(context.candidate_pairs())
        assert result.pruning_ratio == 0.0

    def test_budget_caps_large_families(self):
        scenario = standard_suite(seeds=(7,))[0]
        budget = 3
        context = MatchContext(scenario.source, scenario.target)
        result = CandidateBlocker(
            BlockingConfig(strategy="ann", budget=budget)
        ).candidates(context)
        per_source = {}
        for source_el, _ in result.pairs:
            per_source[source_el.element_id] = (
                per_source.get(source_el.element_id, 0) + 1
            )
        # the tie-floor extension never admits more than twice the budget
        assert all(n <= 2 * budget for n in per_source.values())
        assert result.pruning_ratio > 0.0

    def test_deterministic(self):
        scenario = standard_suite(seeds=(7,))[0]
        runs = []
        for _ in range(2):
            context = MatchContext(scenario.source, scenario.target)
            runs.append(
                CandidateBlocker(
                    BlockingConfig(strategy="ann")).candidates(context).pairs
            )
        assert _ordered_pairs_list(runs[0]) == _ordered_pairs_list(runs[1])

    def test_persistent_index_identical_to_adhoc(self):
        """Warm index-backed ANN retrieval == ad-hoc, order included."""
        scenario = standard_suite(seeds=(7,))[0]
        blocker = CandidateBlocker(BlockingConfig(strategy="ann"))
        context = MatchContext(scenario.source, scenario.target)
        index = EmbeddingBlockingIndex()
        cold = blocker.candidates(context, index)
        warm = blocker.candidates(context, index)
        adhoc = blocker.candidates(context)
        assert _ordered_pairs(cold) == _ordered_pairs(adhoc)
        assert _ordered_pairs(warm) == _ordered_pairs(adhoc)
        assert index.builds == 1 and index.hits == 1 and index.patches == 0

    def test_patched_families_structurally_fresh(self, orders_graph, notice_graph):
        """After an announced evolution, every per-family AnnIndex in the
        patched blocking index equals its freshly built counterpart."""
        blocker = CandidateBlocker(BlockingConfig(strategy="ann"))
        patched = EmbeddingBlockingIndex()
        blocker.candidates(MatchContext(orders_graph, notice_graph), patched)

        evolved = notice_graph.copy()
        leaf = next(
            e.element_id for e in evolved
            if e.kind is ElementKind.ATTRIBUTE
        )
        evolved.element(leaf).name += "_v2"
        evolved.revision += 1
        # the dirty set is the evolution *closure*, not just the renamed
        # leaf: the parent container embeds its leaves' tokens (l:
        # features), so its vector is stale too — exactly what the
        # engine hands note_evolution on rematch
        delta = graph_delta(notice_graph, evolved)
        closure = evolution_closure(notice_graph, evolved, delta)
        patched.note_evolution([], closure | delta.removed)
        warm = blocker.candidates(MatchContext(orders_graph, evolved), patched)

        fresh = EmbeddingBlockingIndex()
        cold = blocker.candidates(MatchContext(orders_graph, evolved), fresh)

        assert patched.patches == 1 and patched.builds == 1
        assert _ordered_pairs(warm) == _ordered_pairs(cold)
        assert patched.target_vectors == fresh.target_vectors
        assert patched.source_vectors == fresh.source_vectors
        assert set(patched.families) == set(fresh.families)
        for family, ann in patched.families.items():
            assert ann.structure() == fresh.families[family].structure()


def _ordered_pairs_list(pairs):
    return [(s.element_id, t.element_id) for s, t in pairs]


class TestEmbeddingVoter:
    def test_opt_in_through_default_voters(self):
        names = [voter.name for voter in default_voters()]
        assert "embedding" not in names
        names = [voter.name for voter in default_voters(include_embedding=True)]
        assert "embedding" in names

    def test_engine_flag_produces_embedding_votes(self, orders_graph, notice_graph):
        run = HarmonyEngine(config=EngineConfig(embedding=True)).match(
            orders_graph, notice_graph)
        embedding_votes = [v for v in run.votes if v.voter == "embedding"]
        assert embedding_votes
        # calibrated to [negative_floor, 1]: anti-evidence goes mildly
        # negative, never past the voter's configured floor
        floor = EmbeddingVoter().negative_floor
        assert all(floor <= v.score <= 1.0 for v in embedding_votes)

    def test_abstains_on_zero_vector(self, orders_graph, notice_graph):
        context = MatchContext(orders_graph, notice_graph)
        source = next(
            e for e in orders_graph
            if e.element_id != orders_graph.root.element_id
        )
        target = next(
            e for e in notice_graph
            if e.element_id != notice_graph.root.element_id
        )
        dim = context.embedder.config.dim
        context.embedding_of = lambda graph, element: [0.0] * dim
        assert EmbeddingVoter().score(source, target, context) == 0.0

    def test_symmetric_on_identical_elements(self, orders_graph):
        context = MatchContext(orders_graph, orders_graph)
        element = next(
            e for e in orders_graph
            if e.element_id != orders_graph.root.element_id
        )
        score = EmbeddingVoter().score(element, element, context)
        assert score == pytest.approx(1.0, abs=1e-6)


class TestEngineEquivalences:
    def test_ann_matches_inverted_when_nothing_pruned(
        self, orders_graph, notice_graph
    ):
        """On families below the budget neither strategy prunes, so the
        matrices must be bit-identical — strategy choice only shows up
        as wall time."""
        inverted = HarmonyEngine(config=EngineConfig(
            embedding=True, blocking=BlockingConfig(strategy="inverted"),
        )).match(orders_graph, notice_graph)
        ann = HarmonyEngine(config=EngineConfig(
            embedding=True, blocking=BlockingConfig(strategy="ann"),
        )).match(orders_graph, notice_graph)
        assert ann.post_flooding == inverted.post_flooding

    def test_warm_ann_rematch_equals_cold_match(self):
        scenario = standard_suite(seeds=(7,))[0]
        engine = HarmonyEngine(config=_ann_engine_config())
        engine.match(scenario.source, scenario.target)

        evolved = scenario.source.copy()
        leaf = next(
            e.element_id for e in evolved
            if e.kind is ElementKind.ATTRIBUTE
        )
        evolved.element(leaf).name += "_v2"
        evolved.revision += 1
        warm = engine.rematch(evolved, scenario.target)

        cold = HarmonyEngine(config=_ann_engine_config()).match(
            evolved, scenario.target)
        assert warm.post_flooding == cold.post_flooding

        stats = engine.fastpath_stats()
        assert stats["embedding_builds"] == 1
        assert stats["embedding_patches"] == 1

    def test_snapshot_changes_nothing(self, orders_graph, notice_graph):
        """A precomputed embedding table is a pure wall-time optimisation:
        the vectors are the same floats, so the matrix is bit-identical."""
        config = _ann_engine_config()
        snapshot = snapshot_embeddings(
            [orders_graph, notice_graph], engine_config=config)
        plain = HarmonyEngine(config=config).match(orders_graph, notice_graph)
        snapped = HarmonyEngine(
            config=config, embedding_snapshot=snapshot
        ).match(orders_graph, notice_graph)
        assert snapped.post_flooding == plain.post_flooding
        assert snapped.votes == plain.votes

    def test_match_all_pairs_snapshot_identity(self, orders_graph, notice_graph):
        from repro.harmony import match_all_pairs

        config = _ann_engine_config()
        schemas = [orders_graph, notice_graph]
        snapshot = snapshot_embeddings(schemas, engine_config=config)
        without = match_all_pairs(schemas, engine_config=config)
        with_snapshot = match_all_pairs(
            schemas, engine_config=config, embedding_snapshot=snapshot)
        assert without.keys() == with_snapshot.keys()

        def cells(matrix):
            return {c.pair: c.confidence for c in matrix.cells()}

        for pair, matrix in without.items():
            assert cells(matrix) == cells(with_snapshot[pair])
