"""Differential harness: the hash-projection embedder across backends.

``repro.embed.embedder`` carries the same seam discipline as the sweep
backends: ``PythonEmbedBackend`` is the dependency-free reference,
``NumpyEmbedBackend`` the vectorized mirror, and the engine flips
between them through ``resolve_embed_backend`` without a correctness
argument in prose.  This harness is that argument: hypothesis-driven
parity on arbitrary feature multisets (signed counts are exact integers
in float64, so the backends agree to ``TOLERANCE`` — in practice
bitwise), a frozen golden corpus pinning the projection itself against
accidental hash or slot-layout changes, and the resolve semantics
(unknown selector, actionable ImportError, silent auto fallback).
"""

import json
import math
import os
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.embed.embedder as embedder_mod
from repro.embed import (
    EMBED_BACKENDS,
    EmbedConfig,
    EmbeddingSnapshot,
    HashEmbedder,
    PythonEmbedBackend,
    fnv1a64,
    resolve_embed_backend,
)

TOLERANCE = 1e-12

HAS_NUMPY = embedder_mod._probe_numpy() is not None
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_embeddings.json")

# feature strings shaped like the namespaced lexical features the match
# context emits (t:/g:/d:/p:/l: plus arbitrary unicode payloads)
features = st.text(
    alphabet=string.ascii_letters + string.digits + ":_é߉", max_size=16
)
feature_lists = st.lists(features, max_size=40)
dims = st.sampled_from([1, 8, 33, 64])


def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestFnv1a64:
    def test_deterministic(self):
        assert fnv1a64("element_name") == fnv1a64("element_name")

    def test_seed_folds_in(self):
        assert fnv1a64("element_name", seed=1) != fnv1a64("element_name", seed=2)

    def test_64_bit_range(self):
        for text in ("", "a", "schema element", "é߉"):
            assert 0 <= fnv1a64(text) < (1 << 64)


class TestEmbedConfig:
    def test_dim_validated(self):
        with pytest.raises(ValueError, match="dim"):
            EmbedConfig(dim=0)

    def test_signature_covers_every_knob(self):
        base = EmbedConfig()
        for variant in (
            EmbedConfig(dim=32),
            EmbedConfig(seed=7),
            EmbedConfig(token_ngram=4),
            EmbedConfig(use_documentation=False),
        ):
            assert variant.signature() != base.signature()


class TestPythonReference:
    def test_unit_norm_or_zero(self):
        embedder = HashEmbedder(backend=PythonEmbedBackend())
        for case in ([], ["t:name"], ["t:a", "t:b", "g:ab"] * 5):
            vector = embedder.embed(case)
            norm = math.sqrt(sum(v * v for v in vector))
            assert norm == 0.0 or abs(norm - 1.0) <= TOLERANCE

    def test_order_independent(self):
        embedder = HashEmbedder(backend=PythonEmbedBackend())
        case = ["t:order", "g:ord", "g:rde", "d:doc", "t:order"]
        assert embedder.embed(case) == embedder.embed(list(reversed(case)))

    def test_batch_matches_single(self):
        embedder = HashEmbedder(backend=PythonEmbedBackend())
        cases = [["t:a"], [], ["t:a", "t:b", "g:ab"]]
        batch = embedder.embed_batch(cases)
        assert batch == [embedder.embed(case) for case in cases]

    def test_slots_memoized_per_dim_seed(self):
        a = HashEmbedder(EmbedConfig(dim=16, seed=3))
        b = HashEmbedder(EmbedConfig(dim=16, seed=3))
        assert a.slots(["t:x"]) == b.slots(["t:x"])
        assert a._slots_memo is b._slots_memo

    def test_signature_includes_backend(self):
        embedder = HashEmbedder(backend=PythonEmbedBackend())
        assert embedder.signature()[-1] == "python"


class TestGoldenCorpus:
    """The projection itself is frozen: a hash change, slot-layout
    change, or normalisation change fails here even if both backends
    still agree with each other."""

    def test_python_matches_golden(self):
        payload = golden()
        config = EmbedConfig(**payload["config"])
        embedder = HashEmbedder(config, PythonEmbedBackend())
        for case in payload["cases"]:
            got = embedder.embed(case["features"])
            worst = max(
                (abs(a - b) for a, b in zip(got, case["vector"])),
                default=0.0,
            )
            assert len(got) == len(case["vector"])
            assert worst <= TOLERANCE, case["features"]

    @needs_numpy
    def test_numpy_matches_golden(self):
        payload = golden()
        config = EmbedConfig(**payload["config"])
        embedder = HashEmbedder(config, resolve_embed_backend("numpy"))
        for case in payload["cases"]:
            got = embedder.embed(case["features"])
            worst = max(
                (abs(a - b) for a, b in zip(got, case["vector"])),
                default=0.0,
            )
            assert worst <= TOLERANCE, case["features"]


@needs_numpy
class TestNumpyDifferential:
    @settings(max_examples=60, deadline=None)
    @given(feature_lists, dims)
    def test_embed_parity(self, feats, dim):
        config = EmbedConfig(dim=dim)
        py = HashEmbedder(config, PythonEmbedBackend()).embed(feats)
        np_ = HashEmbedder(config, resolve_embed_backend("numpy")).embed(feats)
        worst = max((abs(a - b) for a, b in zip(py, np_)), default=0.0)
        assert len(py) == len(np_) == dim
        assert worst <= TOLERANCE

    @settings(max_examples=25, deadline=None)
    @given(st.lists(feature_lists, max_size=8), dims)
    def test_batch_parity(self, cases, dim):
        config = EmbedConfig(dim=dim)
        py = HashEmbedder(config, PythonEmbedBackend()).embed_batch(cases)
        np_ = HashEmbedder(
            config, resolve_embed_backend("numpy")).embed_batch(cases)
        assert len(py) == len(np_)
        for row_py, row_np in zip(py, np_):
            worst = max(
                (abs(a - b) for a, b in zip(row_py, row_np)), default=0.0)
            assert worst <= TOLERANCE

    @settings(max_examples=40, deadline=None)
    @given(feature_lists, feature_lists)
    def test_dots_parity(self, feats_a, feats_b):
        config = EmbedConfig()
        py_backend = PythonEmbedBackend()
        np_backend = resolve_embed_backend("numpy")
        a_py = HashEmbedder(config, py_backend).embed(feats_a)
        b_py = HashEmbedder(config, py_backend).embed(feats_b)
        dot_py = py_backend.dots(py_backend.pack([a_py]), b_py)[0]
        dot_np = np_backend.dots(np_backend.pack([a_py]), b_py)[0]
        assert abs(dot_py - dot_np) <= TOLERANCE


class TestResolveSemantics:
    def test_selector_vocabulary(self):
        assert EMBED_BACKENDS == ("auto", "python", "numpy")

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="unknown embed backend"):
            resolve_embed_backend("gpu")

    def test_python_is_memoized_singleton(self):
        assert resolve_embed_backend("python") is resolve_embed_backend("python")

    def test_auto_degrades_silently_without_numpy(self, monkeypatch):
        monkeypatch.setattr(embedder_mod, "_probe_numpy", lambda: None)
        monkeypatch.setattr(embedder_mod, "_RESOLVED", {})
        assert resolve_embed_backend("auto").name == "python"

    def test_explicit_numpy_raises_actionably_without_numpy(self, monkeypatch):
        monkeypatch.setattr(embedder_mod, "_probe_numpy", lambda: None)
        monkeypatch.setattr(embedder_mod, "_RESOLVED", {})
        with pytest.raises(ImportError) as excinfo:
            resolve_embed_backend("numpy")
        message = str(excinfo.value)
        assert "pip install" in message and "auto" in message

    @needs_numpy
    def test_auto_prefers_numpy(self, monkeypatch):
        monkeypatch.setattr(embedder_mod, "_RESOLVED", {})
        assert resolve_embed_backend("auto").name == "numpy"


class TestEmbeddingSnapshot:
    def test_table_semantics(self):
        snapshot = EmbeddingSnapshot(
            {"s::a": (0.0, 1.0), "s::b": (1.0, 0.0)}, signature=("sig",))
        assert "s::a" in snapshot and "s::c" not in snapshot
        assert len(snapshot) == 2
        assert snapshot.doc_ids() == ["s::a", "s::b"]
        vector = snapshot.vector("s::a")
        assert vector == [0.0, 1.0]
        vector[0] = 9.9  # callers get a copy, never the stored tuple
        assert snapshot.vector("s::a") == [0.0, 1.0]
