"""The ANN index against its own exhaustive oracle.

``AnnIndex`` carries two exactness promises — indexes at or below
``exhaustive_floor`` answer queries exhaustively, and thin band probes
fall back to exhaustive scoring — plus a structural promise: a patched
index (add/remove/replace after build) is indistinguishable from a
freshly built one.  This file checks all three, measures band-path
recall against ``exhaustive_top_k`` on a clustered corpus, and pins the
probe/fallback counter accounting the perf gates rely on.

Cross-backend sketch parity is deliberately NOT asserted here: a plane
dot product near zero can legitimately flip sign between the python
coordinate-order sum and the numpy matmul, flipping a band bit.  The
backends' ``accumulate``/``dots`` agree to 1e-12 (see
``test_embedder_differential.py``); sketches only need to agree
statistically, which the recall gates cover.
"""

import math
import random

import pytest

import repro.embed.embedder as embedder_mod
from repro.embed import (
    AnnConfig,
    AnnIndex,
    ann_stats,
    planes_for,
    reset_ann_stats,
    resolve_embed_backend,
)

DIM = 64

HAS_NUMPY = embedder_mod._probe_numpy() is not None
needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


def unit(vector):
    norm = math.sqrt(sum(v * v for v in vector))
    return [v / norm for v in vector] if norm else list(vector)


def clustered_corpus(clusters=30, members=10, noise=0.05, seed=7):
    """Unit vectors in tight cosine clusters — the regime LSH banding is
    built for, so the band path has genuine near neighbours to find.

    Noise is per coordinate against a unit-norm center, so total noise
    norm is ``noise * sqrt(dim)``: 0.05 keeps within-cluster cosines
    around 0.8–0.9 (high-cosine regime).  Much larger and the corpus
    degenerates to near-random vectors, which banding rightly misses.
    """
    rng = random.Random(seed)
    corpus = {}
    for c in range(clusters):
        center = unit([rng.gauss(0.0, 1.0) for _ in range(DIM)])
        for m in range(members):
            vector = unit([
                v + rng.gauss(0.0, noise) for v in center
            ])
            corpus[f"c{c:02d}:m{m:02d}"] = vector
    return corpus


@pytest.fixture
def corpus():
    return clustered_corpus()


def build(corpus, config=None, backend="python"):
    index = AnnIndex(DIM, config or AnnConfig(), backend=backend)
    index.add_batch(sorted(corpus.items()))
    return index


def tie_aware_recall(approx, exact, k):
    """Fraction of oracle-grade results retrieved, counting any hit that
    scores at least as high as the oracle's k-th as correct."""
    if not exact:
        return 1.0
    cutoff = exact[-1][1] - 1e-9
    hits = sum(1 for _, score in approx if score >= cutoff)
    return hits / len(exact)


class TestExactnessFloor:
    def test_below_floor_matches_oracle_exactly(self, corpus):
        small = dict(list(sorted(corpus.items()))[:40])
        index = build(small, AnnConfig(exhaustive_floor=64))
        reset_ann_stats()
        query = unit([0.3] * DIM)
        assert index.top_k_similar(query, 5) == index.exhaustive_top_k(query, 5)
        stats = ann_stats()
        assert stats["ann_exhaustive_fallbacks"] == 1
        assert stats["ann_probes"] == 0

    def test_floor_counts_available_after_exclusion(self, corpus):
        index = build(corpus, AnnConfig(exhaustive_floor=8))
        keep = index.ids()[:3]
        excluded = [i for i in index.ids() if i not in keep]
        reset_ann_stats()
        results = index.top_k_similar(unit([1.0] * DIM), 2, exclude=excluded)
        assert [item_id for item_id, _ in results] != []
        assert all(item_id in keep for item_id, _ in results)
        assert ann_stats()["ann_exhaustive_fallbacks"] == 1

    def test_thin_candidates_fall_back_and_still_return_k(self, corpus):
        # min_candidates above the corpus size: every probe is thin
        config = AnnConfig(exhaustive_floor=8, min_candidates=10_000)
        index = build(corpus, config)
        reset_ann_stats()
        results = index.top_k_similar(unit([1.0] * DIM), 10)
        assert len(results) == 10
        assert results == index.exhaustive_top_k(unit([1.0] * DIM), 10)
        assert ann_stats()["ann_exhaustive_fallbacks"] == 1


class TestBandPath:
    def test_recall_against_oracle(self, corpus):
        index = build(corpus, AnnConfig(exhaustive_floor=8))
        reset_ann_stats()
        queries = [corpus[i] for i in sorted(corpus)][::7]
        recalls = []
        for query in queries:
            approx = index.top_k_similar(query, 10)
            exact = index.exhaustive_top_k(query, 10)
            assert len(approx) == 10
            recalls.append(tie_aware_recall(approx, exact, 10))
        stats = ann_stats()
        assert stats["ann_probes"] + stats["ann_exhaustive_fallbacks"] == len(
            queries
        )
        assert stats["ann_probes"] > 0  # the band path actually engaged
        mean_recall = sum(recalls) / len(recalls)
        assert mean_recall >= 0.9, mean_recall

    def test_results_sorted_and_deduplicated(self, corpus):
        index = build(corpus, AnnConfig(exhaustive_floor=8))
        results = index.top_k_similar(corpus["c00:m00"], 15)
        ids = [item_id for item_id, _ in results]
        scores = [score for _, score in results]
        assert len(set(ids)) == len(ids)
        assert scores == sorted(scores, reverse=True)

    def test_exclude_is_honoured_on_band_path(self, corpus):
        index = build(corpus, AnnConfig(exhaustive_floor=8))
        target = "c00:m00"
        results = index.top_k_similar(corpus[target], 10, exclude=[target])
        assert all(item_id != target for item_id, _ in results)

    def test_deterministic_across_rebuilds(self, corpus):
        first = build(corpus, AnnConfig(exhaustive_floor=8))
        second = build(corpus, AnnConfig(exhaustive_floor=8))
        query = corpus["c03:m04"]
        assert first.top_k_similar(query, 8) == second.top_k_similar(query, 8)


class TestAllPairsAbove:
    def brute(self, corpus, threshold):
        out = {}
        ids = sorted(corpus)
        for i, id_a in enumerate(ids):
            for id_b in ids[i + 1:]:
                score = sum(
                    a * b for a, b in zip(corpus[id_a], corpus[id_b])
                )
                if score >= threshold:
                    out[(id_a, id_b)] = score
        return out

    def test_exact_below_floor(self):
        corpus = clustered_corpus(clusters=4, members=6, seed=11)
        index = build(corpus, AnnConfig(exhaustive_floor=64))
        got = index.all_pairs_above(0.5)
        want = self.brute(corpus, 0.5)
        assert got.keys() == want.keys()
        for pair, score in got.items():
            assert abs(score - want[pair]) <= 1e-12

    def test_subset_with_exact_scores_above_floor(self, corpus):
        index = build(corpus, AnnConfig(exhaustive_floor=8))
        got = index.all_pairs_above(0.6)
        want = self.brute(corpus, 0.6)
        assert got  # clusters guarantee plenty of high-cosine pairs
        for pair, score in got.items():
            assert pair in want
            assert abs(score - want[pair]) <= 1e-12


class TestMutation:
    def test_patched_index_is_structurally_fresh(self, corpus):
        items = sorted(corpus.items())
        final = dict(items[:200])
        fresh = build(final, AnnConfig(exhaustive_floor=8))

        patched = AnnIndex(DIM, AnnConfig(exhaustive_floor=8))
        patched.add_batch(items[:150])            # initial build
        patched.add_batch(items[150:220])         # evolution: additions
        for item_id, _ in items[200:220]:         # evolution: deletions
            patched.remove(item_id)
        stale = unit([1.0] + [0.0] * (DIM - 1))
        patched.add(items[0][0], stale)           # evolution: rename...
        patched.add(*items[0])                    # ...then renamed back

        assert patched.structure() == fresh.structure()
        query = unit([0.2] * DIM)
        assert patched.top_k_similar(query, 10) == fresh.top_k_similar(
            query, 10
        )

    def test_add_replaces_existing_id(self):
        index = AnnIndex(DIM, AnnConfig())
        index.add("a", unit([1.0] + [0.0] * (DIM - 1)))
        replacement = unit([0.0, 1.0] + [0.0] * (DIM - 2))
        index.add("a", replacement)
        assert len(index) == 1
        assert index.vectors["a"] == replacement

    def test_remove_missing_id_is_a_noop(self):
        index = AnnIndex(DIM, AnnConfig())
        index.add("a", unit([1.0] * DIM))
        index.remove("ghost")
        assert index.ids() == ["a"]

    def test_dim_mismatch_raises(self):
        index = AnnIndex(DIM, AnnConfig())
        with pytest.raises(ValueError, match="dim"):
            index.add("short", [1.0] * (DIM - 1))
        with pytest.raises(ValueError, match="dim"):
            index.add_batch([("short", [1.0] * (DIM - 1))])


class TestConfigAndPlanes:
    def test_config_validated(self):
        with pytest.raises(ValueError):
            AnnConfig(bands=0)
        with pytest.raises(ValueError):
            AnnConfig(band_bits=0)
        with pytest.raises(ValueError):
            AnnConfig(plane_nnz=0)

    def test_planes_shared_per_scheme(self):
        config = AnnConfig()
        assert planes_for(DIM, config) is planes_for(DIM, config)
        assert planes_for(DIM, config) is not planes_for(
            DIM, AnnConfig(seed=1)
        )

    def test_empty_index_and_k_zero(self):
        index = AnnIndex(DIM, AnnConfig())
        assert index.top_k_similar(unit([1.0] * DIM), 5) == []
        index.add("a", unit([1.0] * DIM))
        assert index.top_k_similar(unit([1.0] * DIM), 0) == []
        assert index.all_pairs_above(0.0) == {}


@needs_numpy
class TestNumpyBackend:
    """Exhaustive-path parity only — sketch bits may legitimately differ
    between backends near zero plane dots (module docstring)."""

    def test_below_floor_matches_python_oracle(self, corpus):
        small = dict(list(sorted(corpus.items()))[:50])
        py = build(small, AnnConfig(exhaustive_floor=64), backend="python")
        np_ = build(
            small,
            AnnConfig(exhaustive_floor=64),
            backend=resolve_embed_backend("numpy"),
        )
        query = unit([0.15] * DIM)
        for (id_py, score_py), (id_np, score_np) in zip(
            py.top_k_similar(query, 12), np_.top_k_similar(query, 12)
        ):
            assert abs(score_py - score_np) <= 1e-9
            assert id_py == id_np

    def test_band_path_recall(self, corpus):
        index = build(
            corpus,
            AnnConfig(exhaustive_floor=8),
            backend=resolve_embed_backend("numpy"),
        )
        reset_ann_stats()
        queries = [corpus[i] for i in sorted(corpus)][::7]
        recalls = []
        for query in queries:
            approx = index.top_k_similar(query, 10)
            exact = index.exhaustive_top_k(query, 10)
            recalls.append(tie_aware_recall(approx, exact, 10))
        assert ann_stats()["ann_probes"] > 0
        assert sum(recalls) / len(recalls) >= 0.9
