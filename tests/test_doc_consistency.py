"""Docs must keep up with the code: every CI-enforced config flag
(EngineConfig, ServingConfig, BlockingConfig, EmbedConfig, AnnConfig)
documented in its doc set."""

import os
import sys

SCRIPTS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "scripts"
)
sys.path.insert(0, SCRIPTS)

import check_doc_flags  # noqa: E402


def test_every_config_flag_is_documented():
    missing = check_doc_flags.undocumented_flags()
    assert not missing, (
        "undocumented config flags (add a backticked mention): "
        + ", ".join(f"{config}.{flag} in {path}"
                    for config, flag, path in missing)
    )


def test_checker_covers_every_config_and_its_docs():
    doc_sets = {class_name: paths
                for (_, class_name), paths in check_doc_flags.DOC_SETS}
    assert set(doc_sets) == {
        "EngineConfig", "ServingConfig", "BlockingConfig",
        "EmbedConfig", "AnnConfig",
    }
    performance = os.path.join("docs", "performance.md")
    assert "README.md" in doc_sets["EngineConfig"]
    assert performance in doc_sets["EngineConfig"]
    assert os.path.join("docs", "MATCHING.md") in doc_sets["EngineConfig"]
    assert "README.md" in doc_sets["ServingConfig"]
    assert os.path.join("docs", "SERVING.md") in doc_sets["ServingConfig"]
    assert performance in doc_sets["ServingConfig"]
    assert performance in doc_sets["BlockingConfig"]
    assert os.path.join("docs", "MATCHING.md") in doc_sets["BlockingConfig"]
    assert performance in doc_sets["EmbedConfig"]
    assert performance in doc_sets["AnnConfig"]
