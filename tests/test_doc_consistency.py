"""Docs must keep up with the code: every EngineConfig flag documented."""

import os
import sys

SCRIPTS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "scripts"
)
sys.path.insert(0, SCRIPTS)

import check_doc_flags  # noqa: E402


def test_every_engine_config_flag_is_documented():
    missing = check_doc_flags.undocumented_flags()
    assert not missing, (
        "undocumented EngineConfig flags (add a backticked mention): "
        + ", ".join(f"{flag} in {path}" for flag, path in missing)
    )


def test_checker_covers_readme_and_both_docs():
    assert "README.md" in check_doc_flags.DOC_PATHS
    assert os.path.join("docs", "performance.md") in check_doc_flags.DOC_PATHS
    assert os.path.join("docs", "MATCHING.md") in check_doc_flags.DOC_PATHS
