"""Tests for instance integration: documents, linkage (task 10), cleaning (task 11)."""

import pytest

from repro.instances import (
    LinkageConfig,
    RecordSet,
    clean_constraints,
    clean_record_sets,
    field_similarity,
    flatten_document,
    link_record_sets,
    link_records,
    merge_records,
    normalize_record,
    normalize_value,
    record_similarity,
    resolve_contradictions,
    sample_values,
)


class TestDocuments:
    def test_normalize_value(self):
        assert normalize_value("  Hello   World ") == "hello world"
        assert normalize_value(42) == 42
        assert normalize_value(None) is None

    def test_normalize_record(self):
        assert normalize_record({"a": " X ", "b": 1}) == {"a": "x", "b": 1}

    def test_flatten_document(self):
        flat = flatten_document({"name": {"first": "Ada", "last": "L"}, "id": 3})
        assert flat == {"name.first": "Ada", "name.last": "L", "id": 3}

    def test_record_set_attributes(self):
        rs = RecordSet("E", records=[{"a": 1}, {"b": 2}])
        assert rs.attributes() == ["a", "b"]
        assert len(rs) == 2

    def test_record_set_project(self):
        rs = RecordSet("E", records=[{"a": 1, "b": 2}])
        projected = rs.project(["a"])
        assert projected.records == [{"a": 1}]

    def test_sample_values_annotates_graph(self, orders_graph):
        count = sample_values(
            orders_graph,
            {"orders/customer": [
                {"cust_id": 1, "first_name": "Peter", "last_name": "Mork"},
                {"cust_id": 2, "first_name": "Len", "last_name": "Seligman"},
            ]},
        )
        assert count == 3
        values = orders_graph.element("orders/customer/first_name").annotation("instance_values")
        assert values == ["Peter", "Len"]

    def test_sample_values_limit_and_dedup(self, orders_graph):
        rows = [{"cust_id": i % 3, "first_name": "x", "last_name": "y"} for i in range(50)]
        sample_values(orders_graph, {"orders/customer": rows}, limit=2)
        values = orders_graph.element("orders/customer/cust_id").annotation("instance_values")
        assert len(values) == 2


class TestFieldSimilarity:
    def test_exact(self):
        assert field_similarity("Mork", "mork") == 1.0

    def test_near_strings(self):
        assert field_similarity("Jonathan", "Jonathon") > 0.8

    def test_numbers(self):
        assert field_similarity(100, 100.0) == 1.0
        assert field_similarity(100, 90) > 0.8
        assert field_similarity(100, 1) < 0.1

    def test_nulls(self):
        assert field_similarity(None, "x") == 0.0


class TestLinkage:
    PEOPLE = [
        {"name": "Peter Mork", "org": "MITRE", "phone": "703-555-0100"},
        {"name": "P. Mork", "org": "MITRE", "phone": "703-555-0100"},
        {"name": "Len Seligman", "org": "Georgetown", "phone": "202-888-4242"},
        {"name": "Arnon Rosenthal", "org": "Stanford", "phone": "650-123-9876"},
    ]

    def test_duplicates_linked(self):
        result = link_records(self.PEOPLE, LinkageConfig(threshold=0.75))
        assert result.duplicates_removed == 1
        sizes = sorted(len(c) for c in result.clusters)
        assert sizes == [1, 1, 2]

    def test_clusters_partition_indexes(self):
        result = link_records(self.PEOPLE, LinkageConfig(threshold=0.75))
        flat = sorted(i for cluster in result.clusters for i in cluster)
        assert flat == list(range(len(self.PEOPLE)))

    def test_high_threshold_links_nothing(self):
        result = link_records(self.PEOPLE, LinkageConfig(threshold=0.999))
        assert result.links_found == 0
        assert len(result.merged) == len(self.PEOPLE)

    def test_blocking_reduces_comparisons(self):
        no_blocking = link_records(self.PEOPLE, LinkageConfig(threshold=0.75))
        blocked = link_records(
            self.PEOPLE, LinkageConfig(threshold=0.75, blocking_key="phone",
                                       blocking_prefix=12)
        )
        assert blocked.pairs_compared < no_blocking.pairs_compared
        assert blocked.duplicates_removed == 1  # same quality here

    def test_weights_and_exclusions(self):
        config = LinkageConfig(threshold=0.9, exclude={"phone"},
                               weights={"name": 3.0, "org": 0.5})
        result = link_records(self.PEOPLE, config)
        flat = sorted(i for cluster in result.clusters for i in cluster)
        assert flat == list(range(len(self.PEOPLE)))

    def test_merge_records_prefers_reliable(self):
        merged = merge_records(
            [{"a": 1, "b": None}, {"a": 2, "b": 5}],
            reliabilities=[0.9, 0.4],
        )
        assert merged == {"a": 1, "b": 5}

    def test_link_record_sets_uses_reliability(self):
        good = RecordSet("E", [{"name": "Peter Mork", "org": "MITRE Corp"}],
                         source="good", reliability=0.9)
        bad = RecordSet("E", [{"name": "Peter Mork", "org": "Mitre"}],
                        source="bad", reliability=0.2)
        result = link_record_sets([good, bad], LinkageConfig(threshold=0.7))
        assert len(result.merged) == 1
        assert result.merged[0]["org"] == "MITRE Corp"

    def test_record_similarity_empty_overlap(self):
        assert record_similarity({"a": 1}, {"b": 2}) == 0.0


class TestCleaning:
    def test_constraint_violations_nulled_and_reported(self, orders_graph):
        rows = [
            {"cust_id": 1, "first_name": "Peter", "last_name": "Mork"},
            {"cust_id": "zzz", "first_name": "Len", "last_name": "Seligman"},
        ]
        report = clean_constraints(orders_graph, "orders/customer", rows)
        assert report.issue_count == 1
        assert report.cleaned[1]["cust_id"] is None
        assert report.cleaned[0]["cust_id"] == 1

    def test_report_only_mode(self, orders_graph):
        rows = [{"cust_id": "bad", "first_name": "x", "last_name": "y"}]
        report = clean_constraints(orders_graph, "orders/customer", rows,
                                   drop_bad_values=False)
        assert report.issue_count == 1
        assert report.cleaned[0]["cust_id"] == "bad"

    def test_domain_constraint(self, orders_graph):
        from repro.loaders import define_domain

        define_domain(orders_graph, "Status", [("OPEN", ""), ("SHIP", "")],
                      attach_to=["orders/purchase_order/status"])
        rows = [{"po_id": 1, "cust_id": 1, "order_date": "2006-01-01",
                 "subtotal": 2.0, "status": "BOGUS"}]
        report = clean_constraints(orders_graph, "orders/purchase_order", rows)
        assert any("outside domain" in issue.reason for issue in report.issues)

    def test_range_annotations(self, orders_graph):
        orders_graph.element("orders/purchase_order/subtotal").annotate("minimum", 0)
        rows = [{"po_id": 1, "cust_id": 1, "order_date": "d",
                 "subtotal": -5.0, "status": "X"}]
        report = clean_constraints(orders_graph, "orders/purchase_order", rows)
        assert any("below minimum" in issue.reason for issue in report.issues)

    def test_resolve_contradictions(self):
        """'contradicts information from a more reliable source'."""
        fused, issues = resolve_contradictions([
            ({"salary": 50_000, "name": "Mork"}, 0.9),
            ({"salary": 55_000, "grade": "GS9"}, 0.3),
        ])
        assert fused["salary"] == 50_000    # reliable source wins
        assert fused["grade"] == "GS9"      # non-conflicting data kept
        assert len(issues) == 1
        assert "contradicts" in issues[0].reason

    def test_clean_record_sets_end_to_end(self, orders_graph):
        authoritative = RecordSet(
            "orders/customer",
            [{"cust_id": 1, "first_name": "Peter", "last_name": "Mork"}],
            source="hr", reliability=0.9,
        )
        stale = RecordSet(
            "orders/customer",
            [{"cust_id": 1, "first_name": "Pete", "last_name": "Mork"},
             {"cust_id": "broken", "first_name": "Len", "last_name": "S"}],
            source="legacy", reliability=0.3,
        )
        report = clean_record_sets(
            orders_graph, "orders/customer", [authoritative, stale], key="cust_id")
        fused = [r for r in report.cleaned if r.get("cust_id") == 1][0]
        assert fused["first_name"] == "Peter"
        reasons = [issue.reason for issue in report.issues]
        assert any("legacy" in r for r in reasons)          # constraint issue tagged by source
        assert any("contradicts" in r for r in reasons)     # cross-source conflict
