"""Shared fixtures: the paper's Figure 2/3 schemas and friends."""

from __future__ import annotations

import pytest

from repro.core import ElementKind, MappingMatrix, SchemaElement, SchemaGraph
from repro.loaders import load_sql, load_xsd


@pytest.fixture
def purchase_order_graph() -> SchemaGraph:
    """The Figure 2 source schema: purchaseOrder with shipTo details."""
    graph = SchemaGraph.create("po")
    graph.add_child(
        "po",
        SchemaElement("po/purchaseOrder", "purchaseOrder", ElementKind.ELEMENT,
                      documentation="A purchase order placed by a customer."),
        label="contains-element",
    )
    graph.add_child(
        "po/purchaseOrder",
        SchemaElement("po/purchaseOrder/shipTo", "shipTo", ElementKind.ELEMENT,
                      documentation="The party the order ships to."),
        label="contains-element",
    )
    for name, datatype, doc in [
        ("firstName", "string", "Given name of the recipient."),
        ("lastName", "string", "Family name of the recipient."),
        ("subtotal", "decimal", "Sum of item prices before tax."),
    ]:
        graph.add_child(
            "po/purchaseOrder/shipTo",
            SchemaElement(f"po/purchaseOrder/shipTo/{name}", name,
                          ElementKind.ATTRIBUTE, datatype=datatype, documentation=doc),
        )
    return graph


@pytest.fixture
def shipping_notice_graph() -> SchemaGraph:
    """The Figure 2 target schema: shippingInfo with name and total."""
    graph = SchemaGraph.create("sn")
    graph.add_child(
        "sn",
        SchemaElement("sn/shippingInfo", "shippingInfo", ElementKind.ELEMENT,
                      documentation="Shipping information for a purchase order."),
        label="contains-element",
    )
    for name, datatype, doc in [
        ("name", "string", "Family name and given name of the recipient."),
        ("total", "decimal", "Total charge computed from the subtotal."),
    ]:
        graph.add_child(
            "sn/shippingInfo",
            SchemaElement(f"sn/shippingInfo/{name}", name,
                          ElementKind.ATTRIBUTE, datatype=datatype, documentation=doc),
        )
    return graph


@pytest.fixture
def figure3_matrix(purchase_order_graph, shipping_notice_graph) -> MappingMatrix:
    """The Figure 3 mapping matrix, annotations included."""
    matrix = MappingMatrix.from_schemas(purchase_order_graph, shipping_notice_graph)
    # machine suggestions from the figure's first row
    matrix.set_confidence("po/purchaseOrder/shipTo", "sn/shippingInfo", 0.8)
    matrix.set_confidence("po/purchaseOrder/shipTo", "sn/shippingInfo/name", -0.4)
    matrix.set_confidence("po/purchaseOrder/shipTo", "sn/shippingInfo/total", -0.6)
    # user decisions from the remaining rows
    matrix.set_confidence("po/purchaseOrder/shipTo/firstName", "sn/shippingInfo", -1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/firstName", "sn/shippingInfo/name", 1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/firstName", "sn/shippingInfo/total", -1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/lastName", "sn/shippingInfo", -1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/lastName", "sn/shippingInfo/name", 1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/lastName", "sn/shippingInfo/total", -1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/subtotal", "sn/shippingInfo", -1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/subtotal", "sn/shippingInfo/name", -1.0, user_defined=True)
    matrix.set_confidence("po/purchaseOrder/shipTo/subtotal", "sn/shippingInfo/total", 1.0, user_defined=True)
    # variable bindings and column code, as in the figure
    matrix.set_row_variable("po/purchaseOrder/shipTo", "$shipto")
    matrix.set_row_variable("po/purchaseOrder/shipTo/firstName", "$fName")
    matrix.set_row_variable("po/purchaseOrder/shipTo/lastName", "$lName")
    matrix.set_row_variable("po/purchaseOrder/shipTo/subtotal", "$shipto/subtotal")
    matrix.set_column_code("sn/shippingInfo/name", 'concat($lName, concat(", ", $fName))')
    matrix.set_column_code("sn/shippingInfo/total", "data($shipto/subtotal) * 1.05")
    matrix.code = "let $shipto := $purchOrd/shipTo return <shippingInfo>...</shippingInfo>"
    return matrix


ORDERS_DDL = """
-- Orders placed by customers of the supply system.
CREATE TABLE purchase_order (
    po_id INTEGER PRIMARY KEY,
    cust_id INTEGER NOT NULL REFERENCES customer(cust_id),
    order_date DATE,                 -- Date the order was placed.
    subtotal DECIMAL(10,2),          -- Sum of line prices before tax.
    status VARCHAR(10)
);
CREATE TABLE customer (
    cust_id INTEGER PRIMARY KEY,
    first_name VARCHAR(40),          -- Given name of the customer.
    last_name VARCHAR(40)            -- Family name of the customer.
);
"""

NOTICE_XSD = """<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
 <xs:element name="shippingNotice">
  <xs:annotation><xs:documentation>Notice sent when an order ships.</xs:documentation></xs:annotation>
  <xs:complexType><xs:sequence>
    <xs:element name="orderNumber" type="xs:integer">
      <xs:annotation><xs:documentation>The unique order number being shipped.</xs:documentation></xs:annotation>
    </xs:element>
    <xs:element name="recipientName">
     <xs:complexType><xs:sequence>
      <xs:element name="firstName" type="xs:string">
       <xs:annotation><xs:documentation>Given name of the recipient.</xs:documentation></xs:annotation>
      </xs:element>
      <xs:element name="lastName" type="xs:string">
       <xs:annotation><xs:documentation>Family name of the recipient.</xs:documentation></xs:annotation>
      </xs:element>
     </xs:sequence></xs:complexType>
    </xs:element>
    <xs:element name="total" type="xs:decimal">
      <xs:annotation><xs:documentation>Total charge from the subtotal plus tax.</xs:documentation></xs:annotation>
    </xs:element>
  </xs:sequence></xs:complexType>
 </xs:element>
</xs:schema>
"""


@pytest.fixture
def orders_graph() -> SchemaGraph:
    return load_sql(ORDERS_DDL, "orders")


@pytest.fixture
def notice_graph() -> SchemaGraph:
    return load_xsd(NOTICE_XSD, "notice")


@pytest.fixture
def orders_ddl_text() -> str:
    return ORDERS_DDL


@pytest.fixture
def notice_xsd_text() -> str:
    return NOTICE_XSD
