"""Tests for the evaluation package: metrics, scenarios, harness."""

import pytest

from repro.baselines import NameEqualityMatcher
from repro.core import MappingMatrix
from repro.eval import (
    Alignment,
    DOC_NONE,
    DOC_SOURCE_ONLY,
    SELECT_BEST_PER_SOURCE,
    SELECT_THRESHOLD,
    ScenarioConfig,
    commerce_model,
    evaluate_matrix,
    evaluate_pairs,
    generate_scenario,
    precision_recall_curve,
    run_suite,
    select_pairs,
    standard_suite,
)


class TestAlignment:
    def test_basic_ops(self):
        alignment = Alignment()
        alignment.add("a", "x")
        alignment.add("b", "y")
        assert len(alignment) == 2
        assert ("a", "x") in alignment
        assert alignment.sources() == {"a", "b"}
        assert alignment.targets() == {"x", "y"}

    def test_restrict(self):
        alignment = Alignment(pairs={("a", "x"), ("b", "y")})
        restricted = alignment.restrict(source_ids={"a"})
        assert restricted.pairs == {("a", "x")}

    def test_union(self):
        a = Alignment(pairs={("a", "x")})
        b = Alignment(pairs={("b", "y")})
        assert len(a.union(b)) == 2


class TestMetrics:
    def test_perfect_prediction(self):
        truth = Alignment(pairs={("a", "x"), ("b", "y")})
        quality = evaluate_pairs([("a", "x"), ("b", "y")], truth)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0
        assert quality.overall == pytest.approx(1.0)

    def test_partial_prediction(self):
        truth = Alignment(pairs={("a", "x"), ("b", "y")})
        quality = evaluate_pairs([("a", "x"), ("c", "z")], truth)
        assert quality.precision == 0.5
        assert quality.recall == 0.5
        assert quality.overall == pytest.approx(0.0)  # recall*(2-1/0.5)

    def test_empty_prediction(self):
        truth = Alignment(pairs={("a", "x")})
        quality = evaluate_pairs([], truth)
        assert quality.precision == 1.0  # vacuous
        assert quality.recall == 0.0

    def test_overall_negative_when_imprecise(self):
        truth = Alignment(pairs={("a", "x")})
        quality = evaluate_pairs([("a", "x"), ("b", "y"), ("c", "z")], truth)
        assert quality.overall < 0.0

    def test_select_threshold_vs_best(self):
        matrix = MappingMatrix()
        for row in ("a", "b"):
            matrix.add_row(row)
        for col in ("x", "y"):
            matrix.add_column(col)
        matrix.set_confidence("a", "x", 0.9)
        matrix.set_confidence("a", "y", 0.6)
        matrix.set_confidence("b", "y", 0.2)
        threshold_pairs = set(select_pairs(matrix, SELECT_THRESHOLD, threshold=0.5))
        assert threshold_pairs == {("a", "x"), ("a", "y")}
        best_pairs = set(select_pairs(matrix, SELECT_BEST_PER_SOURCE))
        assert best_pairs == {("a", "x"), ("b", "y")}

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            select_pairs(MappingMatrix(), "magic")

    def test_precision_recall_curve_monotone_recall(self):
        matrix = MappingMatrix()
        matrix.add_row("a")
        matrix.add_column("x")
        matrix.set_confidence("a", "x", 0.7)
        truth = Alignment(pairs={("a", "x")})
        curve = precision_recall_curve(matrix, truth)
        recalls = [r for _, _, r in curve]
        assert recalls == sorted(recalls, reverse=True)


class TestScenarios:
    def test_deterministic(self):
        a = generate_scenario(commerce_model(), ScenarioConfig(seed=3))
        b = generate_scenario(commerce_model(), ScenarioConfig(seed=3))
        assert sorted(a.alignment) == sorted(b.alignment)
        assert sorted(a.target.element_ids) == sorted(b.target.element_ids)

    def test_alignment_ids_exist(self):
        scenario = generate_scenario(commerce_model(), ScenarioConfig(seed=3))
        for source_id, target_id in scenario.alignment:
            assert source_id in scenario.source
            assert target_id in scenario.target

    def test_graphs_validate(self):
        scenario = generate_scenario(commerce_model(), ScenarioConfig(seed=3))
        assert scenario.source.validate() == []
        assert scenario.target.validate() == []

    def test_doc_none_strips_documentation(self):
        scenario = generate_scenario(
            commerce_model(), ScenarioConfig(seed=3, documentation=DOC_NONE))
        assert all(not e.documentation for e in scenario.source)
        assert all(not e.documentation for e in scenario.target)

    def test_doc_source_only(self):
        scenario = generate_scenario(
            commerce_model(), ScenarioConfig(seed=3, documentation=DOC_SOURCE_ONLY))
        assert any(e.documentation for e in scenario.source)
        assert all(not e.documentation for e in scenario.target)

    def test_domains_strippable(self):
        from repro.core import ElementKind

        scenario = generate_scenario(
            commerce_model(), ScenarioConfig(seed=3, keep_domains=False))
        assert scenario.target.elements_of_kind(ElementKind.DOMAIN) == []

    def test_instances_attachable(self):
        scenario = generate_scenario(
            commerce_model(), ScenarioConfig(seed=3, attach_instances=True))
        annotated = [
            e for e in scenario.target if e.annotation("instance_values")
        ]
        assert annotated

    def test_no_instances_by_default(self):
        scenario = generate_scenario(commerce_model(), ScenarioConfig(seed=3))
        assert all(not e.annotation("instance_values") for e in scenario.target)

    def test_drop_rate_shrinks_target(self):
        keep_all = generate_scenario(commerce_model(), ScenarioConfig(seed=3, drop_rate=0.0,
                                                                      noise_attributes=0.0))
        drop_many = generate_scenario(commerce_model(), ScenarioConfig(seed=3, drop_rate=0.6,
                                                                       noise_attributes=0.0))
        assert len(drop_many.target) < len(keep_all.target)

    def test_standard_suite_shape(self):
        suite = standard_suite(seeds=(7,))
        assert len(suite) == 3  # three base models
        assert {s.name.split("@")[0] for s in suite} == {
            "air_traffic", "commerce", "personnel",
        }


class TestHarness:
    def test_run_suite_tabulates(self):
        suite = standard_suite(seeds=(7,))
        result = run_suite([NameEqualityMatcher()], suite)
        assert len(result.runs) == 3
        table = result.to_table("title")
        assert "name-equality" in table
        detail = result.to_detail_table()
        assert "commerce@7" in detail

    def test_mean_metrics(self):
        suite = standard_suite(seeds=(7,))
        result = run_suite([NameEqualityMatcher()], suite)
        mean_f1 = result.mean("name-equality", "f1")
        assert 0.0 <= mean_f1 <= 1.0
        assert result.mean("ghost", "f1") == 0.0

    def test_matcher_factory_fresh_instances(self):
        created = []

        def factory(matcher):
            fresh = NameEqualityMatcher()
            created.append(fresh)
            return fresh

        suite = standard_suite(seeds=(7,))
        run_suite([NameEqualityMatcher()], suite, matcher_factory=factory)
        assert len(created) == 3
