"""Integration test: the exact Figure 2/3 scenario, end to end.

Builds the paper's sample schemas, reproduces the annotated mapping
matrix, assembles and executes the mapping — the documents that come out
implement exactly the code in Figure 3's columns
(``concat($lName, concat(", ", $fName))`` and
``data($shipto/subtotal) * 1.05``).
"""

import pytest

from repro.codegen import assemble, matrix_code_listing
from repro.mapper import (
    AttributeMapping,
    DirectEntity,
    EntityMapping,
    MappingSpec,
    ScalarTransform,
    SkolemFunction,
)


class TestFigure3EndToEnd:
    def _spec(self) -> MappingSpec:
        spec = MappingSpec("figure3", "po", "sn")
        entity = EntityMapping(
            target_entity="sn/shippingInfo",
            entity_transform=DirectEntity("po/purchaseOrder/shipTo"),
            identity=SkolemFunction("shippingInfo", ["fName", "lName"]),
        )
        entity.attributes.append(AttributeMapping(
            "sn/shippingInfo/name",
            ScalarTransform('concat($lName, concat(", ", $fName))')))
        entity.attributes.append(AttributeMapping(
            "sn/shippingInfo/total",
            ScalarTransform("data($subtotal) * 1.05")))
        spec.variable_bindings.update(
            {"fName": "firstName", "lName": "lastName", "subtotal": "subtotal"})
        spec.entities.append(entity)
        return spec

    def test_matrix_matches_figure(self, figure3_matrix):
        """Every annotation from the figure is represented."""
        # confidences, exactly as printed
        expected = {
            ("po/purchaseOrder/shipTo", "sn/shippingInfo"): (0.8, False),
            ("po/purchaseOrder/shipTo", "sn/shippingInfo/name"): (-0.4, False),
            ("po/purchaseOrder/shipTo", "sn/shippingInfo/total"): (-0.6, False),
            ("po/purchaseOrder/shipTo/firstName", "sn/shippingInfo/name"): (1.0, True),
            ("po/purchaseOrder/shipTo/lastName", "sn/shippingInfo/name"): (1.0, True),
            ("po/purchaseOrder/shipTo/subtotal", "sn/shippingInfo/total"): (1.0, True),
        }
        for (source, target), (confidence, user) in expected.items():
            cell = figure3_matrix.cell(source, target)
            assert cell.confidence == pytest.approx(confidence)
            assert cell.is_user_defined == user

    def test_listing_contains_figure_annotations(self, figure3_matrix):
        listing = matrix_code_listing(figure3_matrix)
        assert "$shipto" in listing
        assert 'concat($lName, concat(", ", $fName))' in listing
        assert "data($shipto/subtotal) * 1.05" in listing

    def test_execution_produces_figure_semantics(
        self, purchase_order_graph, shipping_notice_graph
    ):
        spec = self._spec()
        assembled = assemble(spec, purchase_order_graph, shipping_notice_graph)
        result = assembled.run(
            {"po/purchaseOrder/shipTo": [
                {"firstName": "Peter", "lastName": "Mork", "subtotal": 100.0},
                {"firstName": "Len", "lastName": "Seligman", "subtotal": 40.0},
            ]},
            target=shipping_notice_graph,
        )
        documents = result.rows("sn/shippingInfo")
        assert documents[0]["name"] == "Mork, Peter"
        assert documents[0]["total"] == pytest.approx(105.0)
        assert documents[1]["name"] == "Seligman, Len"
        assert documents[1]["total"] == pytest.approx(42.0)
        # Skolem ids are deterministic and distinct
        assert documents[0]["_id"] != documents[1]["_id"]
        assert documents[0]["_id"].startswith("shippingInfo_")

    def test_generated_xquery_has_figure_shape(
        self, purchase_order_graph, shipping_notice_graph
    ):
        assembled = assemble(self._spec(), purchase_order_graph, shipping_notice_graph)
        assert "<shippingInfo>" in assembled.xquery
        assert 'concat($lName, concat(", ", $fName))' in assembled.xquery
        assert "let $lName := $row/lastName" in assembled.xquery

    def test_verification_passes(self, purchase_order_graph, shipping_notice_graph):
        assembled = assemble(self._spec(), purchase_order_graph, shipping_notice_graph)
        assert assembled.ok, assembled.verification.to_text()
