"""Integration test: the Section 5.3 case study, faithfully staged.

*"In our pilot study, AquaLogic is the first tool launched by the
workbench...  she can choose a sub-tree (including an entire schema) and
request recommended matches from Harmony.  The workbench launches the
Harmony GUI and begins an IB transaction.  The integration engineer uses
Harmony to automatically propose likely correspondences, which she accepts
or rejects using the GUI.  Once satisfied, she exits Harmony to complete
the IB transaction.  AquaLogic then updates its internal representation
based on the changes made in Harmony."*
"""

import pytest

from repro.harmony import ConfidenceFilter, HarmonyEngine, MatchSession
from repro.instances import clean_constraints, link_records, LinkageConfig
from repro.loaders import SqlDdlLoader, XsdLoader
from repro.mapper import ScalarTransform
from repro.workbench import (
    CodeGenTool,
    LoaderTool,
    MapperTool,
    MappingCellEvent,
    MatcherTool,
    Transaction,
    WorkbenchManager,
)


@pytest.fixture
def workbench(orders_ddl_text, notice_xsd_text):
    manager = WorkbenchManager()
    manager.register(LoaderTool(SqlDdlLoader()))
    manager.register(LoaderTool(XsdLoader()))
    manager.register(MatcherTool())
    manager.register(MapperTool())
    manager.register(CodeGenTool())
    manager.invoke("load-sql", text=orders_ddl_text, schema_name="orders")
    manager.invoke("load-xsd", text=notice_xsd_text, schema_name="notice")
    return manager


class TestCaseStudy:
    def test_harmony_session_inside_ib_transaction(self, workbench):
        """The Harmony launch is one IB transaction: nothing is visible to
        other tools until the engineer exits, then everything is."""
        events = []
        workbench.events.subscribe(MappingCellEvent, events.append)
        source = workbench.blackboard.get_schema("orders")
        target = workbench.blackboard.get_schema("notice")
        with workbench.transaction():
            session = MatchSession(source, target, engine=HarmonyEngine())
            session.run_engine()
            session.accept("orders/purchase_order/po_id",
                           "notice/shippingNotice/orderNumber")
            session.mark_subtree_complete(
                "orders/customer", side="source",
                visible=ConfidenceFilter(threshold=0.45))
            workbench.blackboard.put_matrix(session.matrix)
            for cell in session.matrix.cells():
                workbench.events.publish(MappingCellEvent(
                    source_tool="harmony", matrix_name=session.matrix.name,
                    source_id=cell.source_id, target_id=cell.target_id,
                    confidence=cell.confidence, user_defined=cell.is_user_defined))
            assert events == []  # still inside the transaction
        assert events            # delivered at commit
        assert workbench.blackboard.has_matrix(session.matrix.name)

    def test_abandoned_harmony_session_leaves_no_trace(self, workbench):
        """Rolling back the transaction wipes the session's IB writes."""
        triples_before = len(workbench.blackboard.store)
        source = workbench.blackboard.get_schema("orders")
        target = workbench.blackboard.get_schema("notice")
        txn = Transaction(workbench.blackboard.store, bus=workbench.events)
        session = MatchSession(source, target)
        session.run_engine()
        workbench.blackboard.put_matrix(session.matrix)
        txn.rollback()
        assert len(workbench.blackboard.store) == triples_before
        assert not workbench.blackboard.has_matrix(session.matrix.name)

    def test_full_case_study_to_running_code(self, workbench):
        """Loader → Harmony (auto-match + engineer decisions) → mapper →
        code generation → execution on sample documents (the case study's
        'At any point this code can be tested on sample documents')."""
        matrix = workbench.invoke("harmony", source_schema="orders",
                                  target_schema="notice")
        # the engineer pins the correspondences Harmony proposed
        loaded = workbench.blackboard.get_matrix(matrix.name)
        for source, target in [
            ("orders/purchase_order", "notice/shippingNotice"),
            ("orders/purchase_order/po_id", "notice/shippingNotice/orderNumber"),
            ("orders/customer/first_name",
             "notice/shippingNotice/recipientName/firstName"),
            ("orders/customer/last_name",
             "notice/shippingNotice/recipientName/lastName"),
        ]:
            loaded.set_confidence(source, target, 1.0, user_defined=True)
        workbench.blackboard.put_matrix(loaded)

        workbench.invoke(
            "mapper", source_schema="orders", target_schema="notice",
            matrix_name=matrix.name,
            variables={"orders/purchase_order/po_id": "poNum",
                       "orders/purchase_order/subtotal": "subtotal"},
            transforms={"notice/shippingNotice": {
                "notice/shippingNotice/total": ScalarTransform("$subtotal * 1.05"),
                "notice/shippingNotice/recipientName/firstName":
                    ScalarTransform("$first_name"),
                "notice/shippingNotice/recipientName/lastName":
                    ScalarTransform("$last_name"),
            }})
        assembled = workbench.invoke("codegen", mapper=workbench.tool("mapper"))
        assert assembled.ok, assembled.verification.to_text()

        # instance integration feeds the mapping: link duplicates, clean,
        # then join customers onto orders before transforming
        customers = [
            {"cust_id": 1, "first_name": "Peter", "last_name": "Mork"},
            {"cust_id": 1, "first_name": "Peter", "last_name": "Mork"},  # dup
        ]
        linkage = link_records(customers, LinkageConfig(threshold=0.9))
        assert linkage.duplicates_removed == 1
        orders_graph = workbench.blackboard.get_schema("orders")
        cleaned = clean_constraints(
            orders_graph, "orders/customer", linkage.merged)
        assert cleaned.issue_count == 0

        merged_rows = [
            {"po_id": 7, "subtotal": 100.0, **cleaned.cleaned[0]},
        ]
        result = assembled.run({"orders/purchase_order": merged_rows})
        document = result.rows("notice/shippingNotice")[0]
        assert document["total"] == pytest.approx(105.0)
        assert document["recipientName"]["firstName"] == "Peter"
        assert document["_id"] == 7

    def test_blackboard_shareable_across_instances(self, workbench, tmp_path):
        """Section 5.1.3: 'The blackboard should be shared across multiple
        workbench instances.'"""
        matrix = workbench.invoke("harmony", source_schema="orders",
                                  target_schema="notice")
        path = str(tmp_path / "shared.nt")
        workbench.blackboard.save(path)

        from repro.workbench import IntegrationBlackboard

        second = WorkbenchManager(blackboard=IntegrationBlackboard.load(path))
        assert second.blackboard.schema_names() == ["notice", "orders"]
        restored = second.blackboard.get_matrix(matrix.name)
        assert len(list(restored.cells())) == len(list(matrix.cells()))
