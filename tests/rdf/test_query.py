"""Tests for the BGP query engine."""

import pytest

from repro.core import QueryError
from repro.rdf import IRI, Literal, Query, TripleStore, Variable, ask, literal, select, values

TYPE = IRI("http://x/type")
NAME = IRI("http://x/name")
IN = IRI("http://x/in")
PERSON = IRI("http://x/Person")
CITY = IRI("http://x/City")

ALICE = IRI("http://x/alice")
BOB = IRI("http://x/bob")
NYC = IRI("http://x/nyc")


@pytest.fixture
def store() -> TripleStore:
    s = TripleStore()
    s.add(ALICE, TYPE, PERSON)
    s.add(BOB, TYPE, PERSON)
    s.add(NYC, TYPE, CITY)
    s.add(ALICE, NAME, literal("Alice"))
    s.add(BOB, NAME, literal("Bob"))
    s.add(NYC, NAME, literal("New York"))
    s.add(ALICE, IN, NYC)
    return s


class TestBasicPatterns:
    def test_single_pattern(self, store):
        who = Variable("who")
        rows = select(store, [(who, TYPE, PERSON)], [who])
        assert {r[who] for r in rows} == {ALICE, BOB}

    def test_join_across_patterns(self, store):
        who, where, city_name = Variable("who"), Variable("where"), Variable("n")
        rows = select(
            store,
            [(who, TYPE, PERSON), (who, IN, where), (where, NAME, city_name)],
            [who, city_name],
        )
        assert len(rows) == 1
        assert rows[0][who] == ALICE
        assert rows[0][city_name] == literal("New York")

    def test_shared_variable_consistency(self, store):
        x = Variable("x")
        # x must be both a person and a city -> empty
        rows = select(store, [(x, TYPE, PERSON), (x, TYPE, CITY)], [x])
        assert rows == []

    def test_variable_in_predicate_position(self, store):
        p = Variable("p")
        rows = select(store, [(ALICE, p, NYC)], [p])
        assert rows == [{p: IN}]

    def test_no_match(self, store):
        rows = select(store, [(BOB, IN, Variable("w"))])
        assert rows == []


class TestModifiers:
    def test_filter(self, store):
        who, name = Variable("who"), Variable("name")
        query = Query()
        query.where(who, TYPE, PERSON).where(who, NAME, name)
        query.filter(lambda b: b[name].lexical.startswith("A"))
        from repro.rdf import evaluate

        rows = evaluate(store, query)
        assert [r[who] for r in rows] == [ALICE]

    def test_projection_unbound_variable_raises(self, store):
        who = Variable("who")
        ghost = Variable("ghost")
        with pytest.raises(QueryError):
            select(store, [(who, TYPE, PERSON)], [ghost])

    def test_limit(self, store):
        who = Variable("who")
        rows = select(store, [(who, TYPE, PERSON)], [who], limit=1)
        assert len(rows) == 1

    def test_order_by(self, store):
        who = Variable("who")
        rows = select(store, [(who, TYPE, PERSON)], [who], order_by=who)
        assert rows[0][who] == ALICE  # alice < bob lexicographically

    def test_distinct(self, store):
        x = Variable("x")
        t = Variable("t")
        rows = select(store, [(x, TYPE, t)], [t], distinct=True)
        assert len(rows) == 2


class TestHelpers:
    def test_ask(self, store):
        assert ask(store, [(ALICE, IN, NYC)])
        assert not ask(store, [(BOB, IN, NYC)])

    def test_values(self, store):
        who = Variable("who")
        assert values(store, [(who, TYPE, PERSON)], who) == [ALICE, BOB]

    def test_empty_variable_name_rejected(self):
        with pytest.raises(QueryError):
            Variable("")
