"""Tests for the indexed triple store."""

import pytest

from repro.core import StoreError
from repro.rdf import IRI, Literal, Triple, TripleStore, literal

A = IRI("http://x/a")
B = IRI("http://x/b")
C = IRI("http://x/c")
P = IRI("http://x/p")
Q = IRI("http://x/q")


@pytest.fixture
def store() -> TripleStore:
    s = TripleStore()
    s.add(A, P, B)
    s.add(A, P, C)
    s.add(B, P, C)
    s.add(A, Q, literal("hello"))
    return s


class TestMutation:
    def test_add_returns_change_flag(self):
        s = TripleStore()
        assert s.add(A, P, B) is True
        assert s.add(A, P, B) is False
        assert len(s) == 1

    def test_remove(self, store):
        assert store.remove(A, P, B) is True
        assert store.remove(A, P, B) is False
        assert Triple(A, P, B) not in store

    def test_remove_matching_wildcard(self, store):
        removed = store.remove_matching(subject=A)
        assert removed == 3
        assert len(store) == 1

    def test_set_value_replaces(self, store):
        store.set_value(A, Q, literal("world"))
        assert store.objects(A, Q) == [literal("world")]

    def test_clear(self, store):
        store.clear()
        assert len(store) == 0

    def test_predicate_must_be_iri(self):
        with pytest.raises(TypeError):
            Triple(A, literal("x"), B)


class TestPatternMatching:
    def test_fully_bound(self, store):
        assert list(store.match(A, P, B)) == [Triple(A, P, B)]
        assert list(store.match(A, P, literal("nope"))) == []

    def test_subject_bound(self, store):
        assert len(list(store.match(subject=A))) == 3

    def test_subject_predicate_bound(self, store):
        assert len(list(store.match(subject=A, predicate=P))) == 2

    def test_predicate_bound(self, store):
        assert len(list(store.match(predicate=P))) == 3

    def test_object_bound(self, store):
        assert len(list(store.match(obj=C))) == 2

    def test_predicate_object_bound(self, store):
        assert {t.subject for t in store.match(predicate=P, obj=C)} == {A, B}

    def test_all_wildcards(self, store):
        assert len(list(store.match())) == 4


class TestAccessors:
    def test_objects(self, store):
        assert set(store.objects(A, P)) == {B, C}

    def test_object_functional(self, store):
        assert store.object(A, Q) == literal("hello")
        assert store.object(C, Q) is None
        with pytest.raises(StoreError):
            store.object(A, P)  # two values

    def test_subjects(self, store):
        assert set(store.subjects(P, C)) == {A, B}

    def test_predicates(self, store):
        assert store.predicates(A, B) == [P]

    def test_describe(self, store):
        described = store.describe(A)
        assert set(described[P]) == {B, C}
        assert described[Q] == [literal("hello")]

    def test_iteration_sorted_deterministic(self, store):
        assert list(store) == list(store)

    def test_snapshot_is_copy(self, store):
        snap = store.snapshot()
        store.remove(A, P, B)
        assert Triple(A, P, B) in snap


class TestListeners:
    def test_listener_sees_adds_and_removes(self, store):
        log = []
        unsubscribe = store.subscribe(lambda added, t: log.append((added, t)))
        store.add(C, P, A)
        store.remove(C, P, A)
        assert log == [(True, Triple(C, P, A)), (False, Triple(C, P, A))]
        unsubscribe()
        store.add(C, Q, A)
        assert len(log) == 2

    def test_noop_mutations_do_not_notify(self, store):
        log = []
        store.subscribe(lambda added, t: log.append(added))
        store.add(A, P, B)       # already present
        store.remove(C, Q, B)    # never present
        assert log == []
