"""Tests for schema/matrix ↔ RDF conversions (the IB's triple layout)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElementKind, SchemaElement, SchemaGraph, StoreError
from repro.rdf import (
    TripleStore,
    cell_iri,
    element_iri,
    matrices_in_store,
    matrix_to_rdf,
    matrix_triples,
    rdf_to_matrix,
    rdf_to_schema,
    remove_matrix,
    remove_schema,
    reset_serialization_stats,
    schema_to_rdf,
    schema_triples,
    schemas_in_store,
    serialization_stats,
    serialize_matrix,
    serialize_schema,
)
from repro.core import MappingMatrix


class TestSchemaRoundtrip:
    def test_structure_preserved(self, purchase_order_graph):
        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        restored = rdf_to_schema(store, "po")
        assert sorted(restored.element_ids) == sorted(purchase_order_graph.element_ids)
        assert restored.edges == purchase_order_graph.edges

    def test_element_metadata_preserved(self, purchase_order_graph):
        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        restored = rdf_to_schema(store, "po")
        original = purchase_order_graph.element("po/purchaseOrder/shipTo/subtotal")
        element = restored.element("po/purchaseOrder/shipTo/subtotal")
        assert element.name == original.name
        assert element.kind is ElementKind.ATTRIBUTE
        assert element.datatype == "decimal"
        assert element.documentation == original.documentation

    def test_annotations_roundtrip(self):
        graph = SchemaGraph.create("s")
        element = SchemaElement("s/a", "a", ElementKind.ATTRIBUTE)
        element.annotate("nullable", True)
        element.annotate("units", "feet")
        graph.add_child("s", element)
        store = TripleStore()
        schema_to_rdf(graph, store)
        restored = rdf_to_schema(store, "s")
        assert restored.element("s/a").annotation("nullable") is True
        assert restored.element("s/a").annotation("units") == "feet"

    def test_special_characters_in_ids(self):
        graph = SchemaGraph.create("my schema")
        graph.add_child(
            "my schema",
            SchemaElement("my schema/T#1", "T#1", ElementKind.TABLE),
            label="contains-element",
        )
        store = TripleStore()
        schema_to_rdf(graph, store)
        restored = rdf_to_schema(store, "my schema")
        assert "my schema/T#1" in restored

    def test_schemas_in_store(self, purchase_order_graph, shipping_notice_graph):
        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        schema_to_rdf(shipping_notice_graph, store)
        assert schemas_in_store(store) == ["po", "sn"]

    def test_missing_schema_raises(self):
        with pytest.raises(StoreError):
            rdf_to_schema(TripleStore(), "ghost")


class TestMatrixRoundtrip:
    def test_figure3_roundtrip(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        restored = rdf_to_matrix(store, figure3_matrix.name)
        assert sorted(restored.row_ids) == sorted(figure3_matrix.row_ids)
        assert sorted(restored.column_ids) == sorted(figure3_matrix.column_ids)
        for cell in figure3_matrix.cells():
            restored_cell = restored.cell(cell.source_id, cell.target_id)
            assert restored_cell.confidence == pytest.approx(cell.confidence)
            assert restored_cell.is_user_defined == cell.is_user_defined

    def test_annotations_roundtrip(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        restored = rdf_to_matrix(store, figure3_matrix.name)
        assert restored.row("po/purchaseOrder/shipTo").variable_name == "$shipto"
        assert "concat" in restored.column("sn/shippingInfo/name").code
        assert restored.code == figure3_matrix.code

    def test_completion_flags_roundtrip(self, figure3_matrix):
        figure3_matrix.mark_row_complete("po/purchaseOrder/shipTo/firstName")
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        restored = rdf_to_matrix(store, figure3_matrix.name)
        assert restored.row("po/purchaseOrder/shipTo/firstName").is_complete
        assert not restored.row("po/purchaseOrder/shipTo").is_complete

    def test_matrices_in_store(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        assert matrices_in_store(store) == [figure3_matrix.name]

    def test_missing_matrix_raises(self):
        with pytest.raises(StoreError):
            rdf_to_matrix(TripleStore(), "ghost")

    def test_full_serialization_roundtrip(self, figure3_matrix, purchase_order_graph):
        """Schema + matrix survive a trip through N-Triples text."""
        from repro.rdf import from_ntriples, to_ntriples

        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        matrix_to_rdf(figure3_matrix, store)
        restored_store = from_ntriples(to_ntriples(store))
        restored = rdf_to_matrix(restored_store, figure3_matrix.name)
        assert len(list(restored.cells())) == len(list(figure3_matrix.cells()))


def _store_state(store):
    return set(store)


def _matrix_state(matrix):
    return {
        (c.source_id, c.target_id): (c.confidence, c.is_user_defined)
        for c in matrix.cells()
    }


class TestMatrixIdempotence:
    def test_reserialize_is_idempotent(self, figure3_matrix):
        """Regression: re-serializing used to append without clearing."""
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        first = _store_state(store)
        matrix_to_rdf(figure3_matrix, store)
        assert _store_state(store) == first

    def test_reserialize_after_rematch_drops_stale_cells(self, figure3_matrix):
        """serialize → change cells → re-serialize → read back equality."""
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        # a rematch moves one confidence and abandons a whole row
        figure3_matrix.set_confidence(
            "po/purchaseOrder/shipTo", "sn/shippingInfo", 0.95
        )
        removed_row = "po/purchaseOrder/shipTo/firstName"
        figure3_matrix.remove_row(removed_row)
        matrix_to_rdf(figure3_matrix, store)
        restored = rdf_to_matrix(store, figure3_matrix.name)
        assert _matrix_state(restored) == _matrix_state(figure3_matrix)
        stale = cell_iri(figure3_matrix.name, removed_row, "sn/shippingInfo")
        assert not list(store.match(subject=stale))

    def test_remove_matrix(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        removed = remove_matrix(store, figure3_matrix.name)
        assert removed > 0
        assert matrices_in_store(store) == []
        assert len(store) == 0
        assert remove_matrix(store, figure3_matrix.name) == 0

    def test_remove_matrix_strips_inbound_annotations(self, figure3_matrix):
        from repro.rdf import IW_NS, literal

        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        target = cell_iri(
            figure3_matrix.name, "po/purchaseOrder/shipTo", "sn/shippingInfo"
        )
        store.add(IW_NS.term("note"), IW_NS.term("about"), target)
        remove_matrix(store, figure3_matrix.name)
        assert not list(store.match(obj=target))


class TestSerializeMatrix:
    def test_matrix_triples_matches_matrix_to_rdf(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        assert set(matrix_triples(figure3_matrix)) == _store_state(store)

    def test_bulk_equals_matrix_to_rdf(self, figure3_matrix):
        bulk_store, legacy_store = TripleStore(), TripleStore()
        serialize_matrix(figure3_matrix, bulk_store)
        matrix_to_rdf(figure3_matrix, legacy_store)
        assert _store_state(bulk_store) == _store_state(legacy_store)

    def test_delta_equals_bulk_final_state(self, figure3_matrix):
        bulk_store, delta_store = TripleStore(), TripleStore()
        serialize_matrix(figure3_matrix, delta_store, delta=True)  # cold delta
        figure3_matrix.set_confidence(
            "po/purchaseOrder/shipTo", "sn/shippingInfo", 0.95
        )
        figure3_matrix.remove_row("po/purchaseOrder/shipTo/firstName")
        serialize_matrix(figure3_matrix, bulk_store)
        serialize_matrix(figure3_matrix, delta_store, delta=True)
        assert _store_state(delta_store) == _store_state(bulk_store)
        restored = rdf_to_matrix(delta_store, figure3_matrix.name)
        assert _matrix_state(restored) == _matrix_state(figure3_matrix)

    def test_delta_touches_only_changed_cells(self, figure3_matrix):
        store = TripleStore()
        serialize_matrix(figure3_matrix, store, delta=True)
        reset_serialization_stats()
        figure3_matrix.set_confidence(
            "po/purchaseOrder/shipTo", "sn/shippingInfo", 0.95
        )
        serialize_matrix(figure3_matrix, store, delta=True)
        stats = serialization_stats()
        assert stats["matrix_delta_serializations"] == 1
        # one confidence literal replaced: one removal, one write
        assert stats["matrix_triples_removed"] == 1
        assert stats["matrix_triples_written"] == 1
        assert stats["matrix_triples_unchanged"] > 0

    def test_delta_noop_writes_nothing(self, figure3_matrix):
        store = TripleStore()
        serialize_matrix(figure3_matrix, store, delta=True)
        revision = store.revision
        serialize_matrix(figure3_matrix, store, delta=True)
        assert store.revision == revision

    def test_delta_preserves_inbound_annotations(self, figure3_matrix):
        """Unlike the bulk path, delta keeps triples pointing at parts."""
        from repro.rdf import IW_NS

        store = TripleStore()
        serialize_matrix(figure3_matrix, store, delta=True)
        target = cell_iri(
            figure3_matrix.name, "po/purchaseOrder/shipTo", "sn/shippingInfo"
        )
        note = (IW_NS.term("note"), IW_NS.term("about"), target)
        store.add(*note)
        figure3_matrix.set_confidence(
            "po/purchaseOrder/shipTo", "sn/shippingInfo", 0.95
        )
        serialize_matrix(figure3_matrix, store, delta=True)
        assert list(store.match(obj=target))

    def test_bulk_counters(self, figure3_matrix):
        reset_serialization_stats()
        store = TripleStore()
        serialize_matrix(figure3_matrix, store)
        stats = serialization_stats()
        assert stats["matrix_bulk_serializations"] == 1
        assert stats["matrix_triples_written"] == len(store)


# -- serialize_schema: bulk + O(delta) ----------------------------------------


def _evolution_graph(seed, size=12, name="ev"):
    rng = random.Random(seed)
    graph = SchemaGraph.create(name)
    ids = [name]
    for i in range(size):
        element = SchemaElement(
            f"{name}/e{i}",
            f"elem{i}",
            ElementKind.ATTRIBUTE if i % 2 else ElementKind.ENTITY,
            datatype=rng.choice(["string", "decimal", None]),
            documentation=rng.choice(["documented field", None]),
        )
        if rng.random() < 0.5:
            element.annotate("nullable", rng.random() < 0.5)
        graph.add_child(rng.choice(ids), element)
        ids.append(element.element_id)
    return graph


def _mutate(graph, seed):
    """One seeded evolution step: add/remove/retype/redocument/re-edge."""
    rng = random.Random(seed)
    ids = [e for e in graph.element_ids if graph.element(e).kind is not ElementKind.SCHEMA]
    op = rng.randrange(6)
    if op == 0 or not ids:
        new_id = f"{graph.name}/new{seed}"
        while new_id in graph:
            new_id += "x"
        graph.add_child(
            rng.choice(graph.element_ids),
            SchemaElement(new_id, f"added{seed}", ElementKind.ATTRIBUTE),
        )
    elif op == 1 and len(ids) > 1:
        graph.remove_element(rng.choice(ids))
    elif op == 2:
        graph.element(rng.choice(ids)).name = f"renamed{seed}"
    elif op == 3:
        graph.element(rng.choice(ids)).datatype = rng.choice(["string", "int", None])
    elif op == 4:
        graph.element(rng.choice(ids)).documentation = rng.choice(
            [f"docs {seed}", None]
        )
    else:
        a, b = rng.choice(ids), rng.choice(ids)
        if a != b:
            graph.add_edge(a, "references", b)
    return graph


class TestSerializeSchema:
    def test_schema_triples_matches_schema_to_rdf(self, purchase_order_graph):
        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        assert set(schema_triples(purchase_order_graph)) == _store_state(store)

    def test_bulk_and_delta_cold_writes_match(self, purchase_order_graph):
        bulk_store = TripleStore()
        schema_to_rdf(purchase_order_graph, bulk_store)
        serialized = TripleStore()
        serialize_schema(purchase_order_graph, serialized)
        delta_store = TripleStore()
        serialize_schema(purchase_order_graph, delta_store, delta=True)
        assert _store_state(bulk_store) == _store_state(serialized)
        assert _store_state(bulk_store) == _store_state(delta_store)

    def test_reserialize_is_idempotent(self, purchase_order_graph):
        store = TripleStore()
        serialize_schema(purchase_order_graph, store)
        before = _store_state(store)
        serialize_schema(purchase_order_graph, store)
        assert _store_state(store) == before
        serialize_schema(purchase_order_graph, store, delta=True)
        assert _store_state(store) == before

    def test_unchanged_delta_materializes_zero_triples(
        self, purchase_order_graph, monkeypatch
    ):
        """Regression: an unchanged re-serialize must never build a Triple."""
        from repro.rdf import schema_rdf as schema_rdf_mod

        store = TripleStore()
        serialize_schema(purchase_order_graph, store)
        counter = {"built": 0}
        real_triple = schema_rdf_mod.Triple

        def counting_triple(*args, **kwargs):
            counter["built"] += 1
            return real_triple(*args, **kwargs)

        counting_triple.sort_key = real_triple.sort_key
        monkeypatch.setattr(schema_rdf_mod, "Triple", counting_triple)
        serialize_schema(
            purchase_order_graph, store, delta=True, previous=purchase_order_graph
        )
        assert counter["built"] == 0

    def test_delta_with_previous_touches_only_dirty_subjects(self):
        graph = _evolution_graph(7)
        store = TripleStore()
        serialize_schema(graph, store)
        evolved = graph.copy()
        evolved.element(f"{graph.name}/e3").documentation = "fresh docs"
        reset_serialization_stats()
        serialize_schema(evolved, store, delta=True, previous=graph)
        stats = serialization_stats()
        assert stats["schema_delta_serializations"] == 1
        assert stats["schema_triples_written"] == 1
        assert stats["schema_triples_removed"] <= 1
        reference = TripleStore()
        schema_to_rdf(evolved, reference)
        assert _store_state(store) == _store_state(reference)

    def test_delta_preserves_inbound_annotations(self):
        from repro.rdf.namespace import IW_NS

        graph = _evolution_graph(9)
        store = TripleStore()
        serialize_schema(graph, store)
        target = element_iri(graph.name, f"{graph.name}/e2")
        note = (IW_NS.term("note"), IW_NS.term("about"), target)
        store.add(*note)
        evolved = graph.copy()
        evolved.element(f"{graph.name}/e2").name = "renamed"
        serialize_schema(evolved, store, delta=True, previous=graph)
        assert list(store.match(obj=target))

    def test_delta_cleans_inbound_to_removed_elements(self):
        from repro.rdf.namespace import IW_NS

        graph = _evolution_graph(11)
        store = TripleStore()
        serialize_schema(graph, store)
        doomed = f"{graph.name}/e5"
        target = element_iri(graph.name, doomed)
        store.add(IW_NS.term("note"), IW_NS.term("about"), target)
        evolved = graph.copy()
        evolved.remove_element(doomed)
        serialize_schema(evolved, store, delta=True, previous=graph)
        assert not list(store.match(obj=target))
        reference = TripleStore()
        schema_to_rdf(evolved, reference)
        assert _store_state(store) == _store_state(reference)

    def test_stale_previous_name_falls_back_to_full_diff(self):
        graph = _evolution_graph(13)
        other = _evolution_graph(14, name="other")
        store = TripleStore()
        serialize_schema(graph, store)
        evolved = graph.copy()
        evolved.element(f"{graph.name}/e1").name = "renamed"
        serialize_schema(evolved, store, delta=True, previous=other)
        reference = TripleStore()
        schema_to_rdf(evolved, reference)
        assert _store_state(store) == _store_state(reference)

    def test_remove_schema_helper_strips_everything(self, purchase_order_graph):
        store = TripleStore()
        serialize_schema(purchase_order_graph, store)
        removed = remove_schema(store, purchase_order_graph.name)
        assert removed == len(schema_triples(purchase_order_graph))
        assert len(store) == 0
        assert remove_schema(store, purchase_order_graph.name) == 0

    def test_bulk_counters(self):
        graph = _evolution_graph(15)
        reset_serialization_stats()
        store = TripleStore()
        serialize_schema(graph, store)
        stats = serialization_stats()
        assert stats["schema_bulk_serializations"] == 1
        assert stats["schema_triples_written"] == len(store)
        assert stats["schema_triples_removed"] == 0

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_evolution_chain_delta_equals_from_scratch(self, seed, steps):
        """Delta-serializing each evolution step lands the exact triple
        set a from-scratch ``schema_to_rdf`` of that version produces."""
        graph = _evolution_graph(seed)
        store = TripleStore()
        serialize_schema(graph, store)
        for step_seed in steps:
            previous = graph.copy()
            _mutate(graph, step_seed)
            serialize_schema(graph, store, delta=True, previous=previous)
            reference = TripleStore()
            schema_to_rdf(graph, reference)
            assert _store_state(store) == _store_state(reference)

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_evolution_chain_without_previous(self, seed, steps):
        """The delta path reconciles correctly even with no *previous*
        narrowing — every subject is diffed, same final state."""
        graph = _evolution_graph(seed)
        store = TripleStore()
        serialize_schema(graph, store)
        for step_seed in steps:
            _mutate(graph, step_seed)
            serialize_schema(graph, store, delta=True)
            reference = TripleStore()
            schema_to_rdf(graph, reference)
            assert _store_state(store) == _store_state(reference)

    def test_roundtrip_after_delta_chain(self):
        graph = _evolution_graph(21)
        store = TripleStore()
        serialize_schema(graph, store)
        for step_seed in (1, 2, 3, 4, 5):
            previous = graph.copy()
            _mutate(graph, step_seed)
            serialize_schema(graph, store, delta=True, previous=previous)
        restored = rdf_to_schema(store, graph.name)
        assert sorted(restored.element_ids) == sorted(graph.element_ids)
        assert restored.edges == graph.edges
