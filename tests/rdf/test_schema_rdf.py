"""Tests for schema/matrix ↔ RDF conversions (the IB's triple layout)."""

import pytest

from repro.core import ElementKind, SchemaElement, SchemaGraph, StoreError
from repro.rdf import (
    TripleStore,
    matrices_in_store,
    matrix_to_rdf,
    rdf_to_matrix,
    rdf_to_schema,
    schema_to_rdf,
    schemas_in_store,
)
from repro.core import MappingMatrix


class TestSchemaRoundtrip:
    def test_structure_preserved(self, purchase_order_graph):
        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        restored = rdf_to_schema(store, "po")
        assert sorted(restored.element_ids) == sorted(purchase_order_graph.element_ids)
        assert restored.edges == purchase_order_graph.edges

    def test_element_metadata_preserved(self, purchase_order_graph):
        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        restored = rdf_to_schema(store, "po")
        original = purchase_order_graph.element("po/purchaseOrder/shipTo/subtotal")
        element = restored.element("po/purchaseOrder/shipTo/subtotal")
        assert element.name == original.name
        assert element.kind is ElementKind.ATTRIBUTE
        assert element.datatype == "decimal"
        assert element.documentation == original.documentation

    def test_annotations_roundtrip(self):
        graph = SchemaGraph.create("s")
        element = SchemaElement("s/a", "a", ElementKind.ATTRIBUTE)
        element.annotate("nullable", True)
        element.annotate("units", "feet")
        graph.add_child("s", element)
        store = TripleStore()
        schema_to_rdf(graph, store)
        restored = rdf_to_schema(store, "s")
        assert restored.element("s/a").annotation("nullable") is True
        assert restored.element("s/a").annotation("units") == "feet"

    def test_special_characters_in_ids(self):
        graph = SchemaGraph.create("my schema")
        graph.add_child(
            "my schema",
            SchemaElement("my schema/T#1", "T#1", ElementKind.TABLE),
            label="contains-element",
        )
        store = TripleStore()
        schema_to_rdf(graph, store)
        restored = rdf_to_schema(store, "my schema")
        assert "my schema/T#1" in restored

    def test_schemas_in_store(self, purchase_order_graph, shipping_notice_graph):
        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        schema_to_rdf(shipping_notice_graph, store)
        assert schemas_in_store(store) == ["po", "sn"]

    def test_missing_schema_raises(self):
        with pytest.raises(StoreError):
            rdf_to_schema(TripleStore(), "ghost")


class TestMatrixRoundtrip:
    def test_figure3_roundtrip(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        restored = rdf_to_matrix(store, figure3_matrix.name)
        assert sorted(restored.row_ids) == sorted(figure3_matrix.row_ids)
        assert sorted(restored.column_ids) == sorted(figure3_matrix.column_ids)
        for cell in figure3_matrix.cells():
            restored_cell = restored.cell(cell.source_id, cell.target_id)
            assert restored_cell.confidence == pytest.approx(cell.confidence)
            assert restored_cell.is_user_defined == cell.is_user_defined

    def test_annotations_roundtrip(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        restored = rdf_to_matrix(store, figure3_matrix.name)
        assert restored.row("po/purchaseOrder/shipTo").variable_name == "$shipto"
        assert "concat" in restored.column("sn/shippingInfo/name").code
        assert restored.code == figure3_matrix.code

    def test_completion_flags_roundtrip(self, figure3_matrix):
        figure3_matrix.mark_row_complete("po/purchaseOrder/shipTo/firstName")
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        restored = rdf_to_matrix(store, figure3_matrix.name)
        assert restored.row("po/purchaseOrder/shipTo/firstName").is_complete
        assert not restored.row("po/purchaseOrder/shipTo").is_complete

    def test_matrices_in_store(self, figure3_matrix):
        store = TripleStore()
        matrix_to_rdf(figure3_matrix, store)
        assert matrices_in_store(store) == [figure3_matrix.name]

    def test_missing_matrix_raises(self):
        with pytest.raises(StoreError):
            rdf_to_matrix(TripleStore(), "ghost")

    def test_full_serialization_roundtrip(self, figure3_matrix, purchase_order_graph):
        """Schema + matrix survive a trip through N-Triples text."""
        from repro.rdf import from_ntriples, to_ntriples

        store = TripleStore()
        schema_to_rdf(purchase_order_graph, store)
        matrix_to_rdf(figure3_matrix, store)
        restored_store = from_ntriples(to_ntriples(store))
        restored = rdf_to_matrix(restored_store, figure3_matrix.name)
        assert len(list(restored.cells())) == len(list(figure3_matrix.cells()))
