"""Tests for RDF terms and namespaces."""

import pytest

from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    Namespace,
    PrefixMap,
    XSD_BOOLEAN,
    XSD_INTEGER,
    fresh_blank,
    literal,
    term_sort_key,
)


class TestIRI:
    def test_rendering(self):
        assert str(IRI("http://x/y")) == "<http://x/y>"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_equality_and_hash(self):
        assert IRI("http://x") == IRI("http://x")
        assert len({IRI("http://x"), IRI("http://x")}) == 1


class TestLiteral:
    def test_string_rendering(self):
        assert str(Literal("hi")) == '"hi"'

    def test_escapes(self):
        assert str(Literal('say "hi"\n')) == '"say \\"hi\\"\\n"'

    def test_typed_rendering(self):
        assert str(Literal("3", XSD_INTEGER)) == f'"3"^^<{XSD_INTEGER}>'

    def test_to_python(self):
        assert Literal("3", XSD_INTEGER).to_python() == 3
        assert Literal("true", XSD_BOOLEAN).to_python() is True
        assert Literal("false", XSD_BOOLEAN).to_python() is False
        assert Literal("abc").to_python() == "abc"

    def test_literal_factory(self):
        assert literal(True).to_python() is True
        assert literal(3).to_python() == 3
        assert literal(2.5).to_python() == 2.5
        assert literal("x").to_python() == "x"

    def test_bool_checked_before_int(self):
        # bool is a subclass of int; factory must pick xsd:boolean
        assert literal(True).datatype == XSD_BOOLEAN


class TestBlankNode:
    def test_rendering(self):
        assert str(BlankNode("b1")) == "_:b1"

    def test_fresh_blanks_unique(self):
        assert fresh_blank() != fresh_blank()


class TestSortKey:
    def test_kind_ordering(self):
        iri = IRI("http://a")
        blank = BlankNode("b")
        lit = Literal("c")
        ordered = sorted([lit, blank, iri], key=term_sort_key)
        assert ordered == [iri, blank, lit]


class TestNamespace:
    def test_attribute_and_item_access(self):
        ns = Namespace("http://example.org/")
        assert ns.thing == IRI("http://example.org/thing")
        assert ns["odd name"] == IRI("http://example.org/odd name")

    def test_membership_and_local_name(self):
        ns = Namespace("http://example.org/")
        assert ns.thing in ns
        assert ns.local_name(ns.thing) == "thing"
        with pytest.raises(ValueError):
            ns.local_name(IRI("http://other/thing"))


class TestPrefixMap:
    def test_compact_and_expand(self):
        pm = PrefixMap.default()
        iri = pm.expand("rdf:type")
        assert iri.value.endswith("#type")
        assert pm.compact(iri) == "rdf:type"

    def test_compact_unknown_returns_none(self):
        pm = PrefixMap.default()
        assert pm.compact(IRI("http://unknown/x")) is None

    def test_expand_unknown_prefix_raises(self):
        with pytest.raises(KeyError):
            PrefixMap.default().expand("zzz:x")
