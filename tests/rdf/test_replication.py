"""Differential testing: a WAL-fed replica answers like the primary.

A :class:`~repro.rdf.durability.ReplicaStore` consumes the primary's WAL
frame stream (here through the in-process :class:`ReplicationLink`
queue) and must be *query-for-query identical* to the primary: any BGP
posed through ``evaluate_planned`` returns the same multiset of
solutions on both sides once the replica has caught up.  The suite also
pins the delta-shipping safety discipline — duplicate frames are
ignored, sequence gaps and revision drift are refused loudly — and runs
a workbench-shaped scenario (schemas + mapping matrices) end to end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ReplicationError
from repro.rdf import (
    IRI,
    DurableStore,
    FaultInjectingFS,
    Query,
    ReplicaStore,
    ReplicationLink,
    TriplePattern,
    Variable,
    evaluate_planned,
    literal,
)
from repro.rdf.durability import WALFrame, encode_snapshot
from repro.rdf.triple import Triple

SUBJECTS = [IRI(f"urn:s{i}") for i in range(4)]
PREDICATES = [IRI(f"urn:p{i}") for i in range(3)]
OBJECTS = [IRI(f"urn:o{i}") for i in range(3)] + [literal("v"), literal(3)]
X, Y, Z = Variable("x"), Variable("y"), Variable("z")

triples_st = st.builds(
    Triple,
    st.sampled_from(SUBJECTS),
    st.sampled_from(PREDICATES),
    st.sampled_from(OBJECTS),
)

ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("add"), triples_st),
        st.tuples(st.just("remove"), triples_st),
        st.tuples(st.just("add_many"), st.lists(triples_st, max_size=5)),
        st.tuples(st.just("remove_many"), st.lists(triples_st, max_size=5)),
    ),
    min_size=1,
    max_size=8,
)

# patterns mix bound terms and shared variables so joins are exercised
term_or_var = {
    "s": st.one_of(st.sampled_from(SUBJECTS), st.sampled_from([X, Y])),
    "p": st.one_of(st.sampled_from(PREDICATES), st.just(Z)),
    "o": st.one_of(st.sampled_from(OBJECTS), st.sampled_from([X, Y])),
}
queries_st = st.builds(
    lambda patterns: Query([TriplePattern(*p) for p in patterns]),
    st.lists(
        st.tuples(term_or_var["s"], term_or_var["p"], term_or_var["o"]),
        min_size=1,
        max_size=3,
    ),
)


def solution_multiset(bindings):
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in binding.items()))
        for binding in bindings
    )


def apply_op(store, op):
    kind, arg = op
    if kind == "add":
        store.add_triple(arg)
    elif kind == "remove":
        store.remove_triple(arg)
    elif kind == "add_many":
        store.add_many(arg)
    else:
        store.remove_many(arg)


def make_primary():
    return DurableStore("/db", fsync="never", fs=FaultInjectingFS())


class TestDifferentialReplica:
    @given(ops_st, st.lists(queries_st, min_size=4, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_replica_answers_every_query_identically(self, ops, queries):
        """The acceptance differential: after every shipped batch, a pool
        of randomized planner queries agrees on both sides.  Across the
        50 examples x >=4 queries x several batches this poses well over
        200 distinct query evaluations."""
        with make_primary() as primary:
            link = ReplicationLink(primary)
            replica = link.attach()
            for op in ops:
                apply_op(primary.store, op)
                link.pump()
                assert replica.revision == primary.revision
                assert replica.lag(primary) == 0
                for query in queries:
                    assert solution_multiset(replica.query(query)) == (
                        solution_multiset(evaluate_planned(primary.store, query)))
            assert replica.store.snapshot() == primary.store.snapshot()
            link.close()

    @given(ops_st)
    @settings(max_examples=25, deadline=None)
    def test_lag_and_catchup(self, ops):
        with make_primary() as primary:
            link = ReplicationLink(primary)
            replica = link.attach()
            for op in ops:
                apply_op(primary.store, op)
            # frames queue while the replica idles; non-noop ops create lag
            assert link.pending(replica) == replica.lag(primary)
            # drain one frame at a time, lag strictly decreasing
            previous = replica.lag(primary)
            while replica.lag(primary):
                assert link.pump(limit=1) == 1
                assert replica.lag(primary) == previous - 1
                previous -= 1
            assert replica.store.snapshot() == primary.store.snapshot()
            assert replica.revision == primary.revision
            link.close()

    def test_multiple_replicas_fan_out(self):
        with make_primary() as primary:
            link = ReplicationLink(primary)
            replicas = [link.attach() for _ in range(3)]
            primary.store.add_many(
                [Triple(SUBJECTS[0], PREDICATES[0], literal(i))
                 for i in range(6)])
            primary.store.remove(SUBJECTS[0], PREDICATES[0], literal(2))
            link.pump()
            for replica in replicas:
                assert replica.store.snapshot() == primary.store.snapshot()
                assert replica.revision == primary.revision
            link.close()

    def test_bootstrap_mid_stream(self):
        """A replica attached after history began starts from a bootstrap
        snapshot and only consumes frames from its snapshot seq onward."""
        with make_primary() as primary:
            link = ReplicationLink(primary)
            primary.store.add_many(
                [Triple(SUBJECTS[0], PREDICATES[0], literal(i))
                 for i in range(10)])
            primary.checkpoint()
            primary.store.add(SUBJECTS[1], PREDICATES[1], literal("late"))
            late = link.attach()  # bootstraps from the live primary
            assert late.store.snapshot() == primary.store.snapshot()
            primary.store.add(SUBJECTS[2], PREDICATES[2], literal("later"))
            link.pump()
            assert late.store.snapshot() == primary.store.snapshot()
            assert late.revision == primary.revision
            link.close()

    def test_detach_stops_shipping(self):
        with make_primary() as primary:
            link = ReplicationLink(primary)
            replica = link.attach()
            primary.store.add(SUBJECTS[0], PREDICATES[0], literal(1))
            link.pump()
            frozen = replica.store.snapshot()
            link.detach(replica)
            primary.store.add(SUBJECTS[1], PREDICATES[1], literal(2))
            link.pump()
            assert replica.store.snapshot() == frozen
            link.close()


class TestFrameDiscipline:
    def frame(self, seq, revision, triple, add=True):
        return WALFrame(seq=seq, revision=revision, ops=((add, triple),))

    def test_duplicate_frames_are_ignored(self):
        replica = ReplicaStore()
        frame = self.frame(1, 1, Triple(SUBJECTS[0], PREDICATES[0], literal(1)))
        assert replica.apply_frame(frame) is True
        assert replica.apply_frame(frame) is False  # replayed delivery
        assert replica.frames_applied == 1
        assert replica.frames_ignored == 1
        assert len(replica.store) == 1

    def test_sequence_gap_is_refused(self):
        replica = ReplicaStore()
        replica.apply_frame(
            self.frame(1, 1, Triple(SUBJECTS[0], PREDICATES[0], literal(1))))
        with pytest.raises(ReplicationError):
            replica.apply_frame(
                self.frame(3, 3,
                           Triple(SUBJECTS[1], PREDICATES[1], literal(2))))
        # the gap left no partial effect
        assert replica.expected_seq == 2
        assert len(replica.store) == 1

    def test_revision_drift_is_refused(self):
        replica = ReplicaStore()
        with pytest.raises(ReplicationError):
            replica.apply_frame(
                self.frame(1, 99,
                           Triple(SUBJECTS[0], PREDICATES[0], literal(1))))

    def test_noop_op_in_frame_is_refused(self):
        """A frame claiming to add a triple the replica already holds
        means the streams diverged — refuse rather than drift."""
        replica = ReplicaStore()
        triple = Triple(SUBJECTS[0], PREDICATES[0], literal(1))
        replica.apply_frame(self.frame(1, 1, triple))
        with pytest.raises(ReplicationError):
            replica.apply_frame(self.frame(2, 2, triple))

    def test_encoded_frame_bytes_accepted(self):
        """apply_frame takes raw payload bytes straight off the wire."""
        replica = ReplicaStore()
        frame = self.frame(1, 1, Triple(SUBJECTS[0], PREDICATES[0], literal(1)))
        assert replica.apply_frame(frame.encode()) is True
        assert len(replica.store) == 1

    def test_bootstrap_snapshot_sets_seq_and_revision(self):
        with make_primary() as primary:
            primary.store.add_many(
                [Triple(SUBJECTS[0], PREDICATES[0], literal(i))
                 for i in range(5)])
            blob = primary.replication_bootstrap()
            replica = ReplicaStore.from_bootstrap(blob)
            assert replica.expected_seq == primary.next_seq
            assert replica.revision == primary.revision
            assert replica.store.snapshot() == primary.store.snapshot()

    def test_stale_snapshot_replays_forward(self):
        """A replica restored from an old snapshot catches up by applying
        the frames recorded after that snapshot's seq."""
        with make_primary() as primary:
            link = ReplicationLink(primary)
            primary.store.add(SUBJECTS[0], PREDICATES[0], literal(1))
            blob = encode_snapshot(primary.store, seq=primary.next_seq)
            replica = link.attach(ReplicaStore.from_bootstrap(blob))
            primary.store.add(SUBJECTS[1], PREDICATES[1], literal(2))
            link.pump()
            assert replica.store.snapshot() == primary.store.snapshot()
            link.close()


class TestWorkbenchShapedReplication:
    def test_schema_and_matrix_replication(self, purchase_order_graph,
                                           shipping_notice_graph,
                                           figure3_matrix):
        """The paper's Figure 3 scenario streamed to a replica: both
        schema graphs, the mapping matrix, then cell-level updates."""
        from repro.rdf import schema_rdf
        from repro.rdf import vocabulary as V

        with make_primary() as primary:
            link = ReplicationLink(primary)
            replica = link.attach()
            schema_rdf.schema_to_rdf(purchase_order_graph, primary.store)
            schema_rdf.schema_to_rdf(shipping_notice_graph, primary.store)
            schema_rdf.serialize_matrix(figure3_matrix, primary.store)
            link.pump()
            assert replica.store.snapshot() == primary.store.snapshot()

            # strong-cells query: every confident correspondence, both sides
            cell, conf = Variable("cell"), Variable("conf")
            query = Query([TriplePattern(cell, V.CONFIDENCE_SCORE, conf)])
            assert solution_multiset(replica.query(query)) == (
                solution_multiset(evaluate_planned(primary.store, query)))

            # a cell-level update ships as its own delta
            figure3_matrix.set_confidence(
                "po/purchaseOrder/shipTo", "sn/shippingInfo", 0.99)
            schema_rdf.serialize_matrix(
                figure3_matrix, primary.store, delta=True)
            link.pump()
            assert replica.store.snapshot() == primary.store.snapshot()
            assert replica.revision == primary.revision
            link.close()
