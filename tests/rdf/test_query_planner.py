"""Differential harness: the cost-based planner vs the reference evaluator.

``evaluate_reference`` is the clarity-first oracle (greedy most-bound
ordering, one store probe per pattern per binding); ``evaluate_planned``
is the cost-based mirror (cardinality-estimated join order off the
store's O(1) index statistics, a revision-keyed pattern-result memo, and
set-intersection bind-joins).  Hypothesis generates random stores and
BGPs and asserts both return the same solution *multiset*; unit tests
pin down the statistics layer (``count_matching``, ``revision``, the
index-set accessors) and the plan bookkeeping ``explain`` reports.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.errors import QueryError
from repro.rdf import (
    IRI,
    Query,
    TriplePattern,
    TripleStore,
    Variable,
    evaluate,
    evaluate_planned,
    evaluate_reference,
    explain,
    literal,
)

# a deliberately small universe so random patterns actually join
SUBJECTS = [IRI(f"urn:s{i}") for i in range(4)]
PREDICATES = [IRI(f"urn:p{i}") for i in range(3)]
OBJECTS = [IRI(f"urn:o{i}") for i in range(3)] + [literal("x"), literal(7)]
VARIABLES = [Variable(name) for name in ("a", "b", "c")]

triples = st.tuples(
    st.sampled_from(SUBJECTS), st.sampled_from(PREDICATES), st.sampled_from(OBJECTS)
)
stores = st.lists(triples, min_size=0, max_size=25)

pattern_parts = {
    "subject": st.sampled_from(SUBJECTS + VARIABLES),
    "predicate": st.sampled_from(PREDICATES + VARIABLES),
    "object": st.sampled_from(OBJECTS + VARIABLES),
}
patterns = st.builds(
    TriplePattern, pattern_parts["subject"], pattern_parts["predicate"],
    pattern_parts["object"],
)
queries = st.lists(patterns, min_size=1, max_size=4).map(
    lambda ps: Query(patterns=ps)
)


def build_store(rows):
    store = TripleStore()
    for subject, predicate, obj in rows:
        store.add(subject, predicate, obj)
    return store


def solution_multiset(solutions):
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in binding.items()))
        for binding in solutions
    )


class TestPlannedVsReference:
    @given(stores, queries)
    @settings(max_examples=150, deadline=None)
    def test_same_solution_multiset(self, rows, query):
        store = build_store(rows)
        planned = evaluate_planned(store, query)
        reference = evaluate_reference(store, query)
        assert solution_multiset(planned) == solution_multiset(reference)

    @given(stores, queries)
    @settings(max_examples=60, deadline=None)
    def test_explain_solutions_match_evaluation(self, rows, query):
        store = build_store(rows)
        plan = explain(store, query)
        # every pattern is accounted for: executed, fused, or skipped
        executed = len(plan.steps) + sum(len(s.fused) for s in plan.steps)
        assert executed + len(plan.skipped) == len(query.patterns)
        assert plan.store_revision == store.revision
        if plan.steps:
            assert plan.steps[-1].actual == plan.solutions or plan.skipped

    def test_evaluate_defaults_to_planner_and_agrees(self):
        store = build_store([(SUBJECTS[0], PREDICATES[0], OBJECTS[0])])
        query = Query().where(VARIABLES[0], PREDICATES[0], OBJECTS[0])
        assert solution_multiset(evaluate(store, query)) == solution_multiset(
            evaluate(store, query, use_planner=False)
        )

    def test_repeated_variable_pattern(self):
        """(?x p ?x) must only match triples whose subject equals object."""
        store = TripleStore()
        store.add(SUBJECTS[0], PREDICATES[0], SUBJECTS[0])
        store.add(SUBJECTS[1], PREDICATES[0], SUBJECTS[2])
        x = Variable("x")
        query = Query().where(x, PREDICATES[0], x)
        for solutions in (evaluate_planned(store, query),
                          evaluate_reference(store, query)):
            assert [b[x] for b in solutions] == [SUBJECTS[0]]


class TestCountMatching:
    @given(stores)
    @settings(max_examples=80, deadline=None)
    def test_matches_brute_force_on_all_shapes(self, rows):
        store = build_store(rows)
        probes = [None, SUBJECTS[0], PREDICATES[0], OBJECTS[0], OBJECTS[-1]]
        for subject in (None, SUBJECTS[0], SUBJECTS[1]):
            for predicate in (None, PREDICATES[0], PREDICATES[1]):
                for obj in (None, OBJECTS[0], OBJECTS[3]):
                    want = len(list(store.match(subject, predicate, obj)))
                    assert store.count_matching(subject, predicate, obj) == want

    def test_counts_stay_correct_after_removal(self):
        store = build_store(
            [(s, p, OBJECTS[0]) for s in SUBJECTS for p in PREDICATES]
        )
        assert store.count_matching(None, None, OBJECTS[0]) == 12
        store.remove_matching(SUBJECTS[0], None, None)
        assert store.count_matching(None, None, OBJECTS[0]) == 9
        assert store.count_matching(SUBJECTS[0], None, None) == 0
        assert store.count_matching(None, PREDICATES[0], None) == 3

    def test_invalid_term_positions_count_zero(self):
        store = build_store([(SUBJECTS[0], PREDICATES[0], OBJECTS[0])])
        # a literal can never be a subject, nor a non-IRI a predicate
        assert store.count_matching(literal("x"), None, None) == 0
        assert store.count_matching(None, None, None) == 1

    def test_revision_bumps_only_on_real_mutations(self):
        store = TripleStore()
        rev = store.revision
        assert store.add(SUBJECTS[0], PREDICATES[0], OBJECTS[0]) is True
        assert store.revision == rev + 1
        # duplicate insert: store unchanged, revision unchanged
        assert store.add(SUBJECTS[0], PREDICATES[0], OBJECTS[0]) is False
        assert store.revision == rev + 1
        store.remove(SUBJECTS[0], PREDICATES[0], OBJECTS[0])
        assert store.revision == rev + 2

    def test_index_set_accessors(self):
        store = build_store([
            (SUBJECTS[0], PREDICATES[0], OBJECTS[0]),
            (SUBJECTS[0], PREDICATES[0], OBJECTS[1]),
            (SUBJECTS[1], PREDICATES[0], OBJECTS[0]),
        ])
        assert store.object_set(SUBJECTS[0], PREDICATES[0]) == {OBJECTS[0], OBJECTS[1]}
        assert store.subject_set(PREDICATES[0], OBJECTS[0]) == {SUBJECTS[0], SUBJECTS[1]}
        assert store.predicate_set(SUBJECTS[0], OBJECTS[1]) == {PREDICATES[0]}
        assert store.object_set(SUBJECTS[2], PREDICATES[0]) == frozenset()


class TestOrderByUnbound:
    """Regression: order_by on an unbound variable must raise, not sort
    every solution under a silent ``((), (), ())`` default key."""

    def build(self):
        store = build_store([(SUBJECTS[0], PREDICATES[0], OBJECTS[0])])
        query = Query().where(Variable("s"), PREDICATES[0], OBJECTS[0])
        query.order_by = Variable("unbound")
        return store, query

    def test_planned_raises(self):
        store, query = self.build()
        with pytest.raises(QueryError, match="order_by variable"):
            evaluate_planned(store, query)

    def test_reference_raises(self):
        store, query = self.build()
        with pytest.raises(QueryError, match="order_by variable"):
            evaluate_reference(store, query)

    def test_bound_order_by_still_sorts(self):
        store = build_store([
            (SUBJECTS[1], PREDICATES[0], OBJECTS[0]),
            (SUBJECTS[0], PREDICATES[0], OBJECTS[0]),
        ])
        s = Variable("s")
        query = Query().where(s, PREDICATES[0], OBJECTS[0])
        query.order_by = s
        got = [b[s] for b in evaluate_planned(store, query)]
        assert got == [SUBJECTS[0], SUBJECTS[1]]


class TestPlanBookkeeping:
    def star_store(self):
        """s0 fans out to many objects over p0; each object has a name."""
        store = TripleStore()
        for i, obj in enumerate(OBJECTS[:3]):
            store.add(SUBJECTS[0], PREDICATES[0], obj)
            store.add(obj, PREDICATES[1], literal(f"name{i}"))
        return store

    def test_memo_hits_counted(self):
        """A pattern resolving identically across bindings probes the
        store once and memo-hits thereafter."""
        store = self.star_store()
        o, n = Variable("o"), Variable("n")
        # pattern 2 resolves to the same (None, p1, None) wildcard for
        # every binding only if o is unbound — instead use a shape where
        # several bindings resolve a pattern identically: every object
        # links back to the same hub.
        for obj in OBJECTS[:3]:
            store.add(obj, PREDICATES[2], SUBJECTS[0])
        hub = Variable("hub")
        query = (
            Query()
            .where(SUBJECTS[0], PREDICATES[0], o)  # 3 bindings for o
            .where(o, PREDICATES[2], hub)          # all land on s0
            .where(hub, PREDICATES[0], n)          # same resolved pattern x3
        )
        plan = explain(store, query)
        assert plan.memo_hits >= 2
        assert plan.memo_entries >= 1
        assert solution_multiset(evaluate_planned(store, query)) == (
            solution_multiset(evaluate_reference(store, query))
        )

    def test_bind_join_fusion_recorded(self):
        """Two patterns whose only unbound variable coincides fuse into
        one set-intersection step."""
        store = self.star_store()
        store.add(SUBJECTS[0], PREDICATES[1], OBJECTS[0])  # p1 edge from s0
        o = Variable("o")
        query = (
            Query()
            .where(SUBJECTS[0], PREDICATES[0], o)
            .where(SUBJECTS[0], PREDICATES[1], o)
        )
        plan = explain(store, query)
        assert len(plan.steps) == 1
        assert len(plan.steps[0].fused) == 1
        got = evaluate_planned(store, query)
        assert solution_multiset(got) == solution_multiset(
            evaluate_reference(store, query)
        )
        assert [b[o] for b in got] == [OBJECTS[0]]

    def test_skipped_patterns_recorded(self):
        store = self.star_store()
        query = (
            Query()
            .where(SUBJECTS[3], PREDICATES[2], Variable("x"))  # no matches
            .where(Variable("x"), PREDICATES[1], Variable("n"))
        )
        plan = explain(store, query)
        assert plan.solutions == 0
        assert len(plan.skipped) >= 1

    def test_low_cardinality_pattern_ordered_first(self):
        """The planner starts from the most selective pattern, not the
        textual first one."""
        store = self.star_store()
        store.add(SUBJECTS[1], PREDICATES[2], literal("rare"))
        x, y = Variable("x"), Variable("y")
        query = (
            Query()
            .where(x, PREDICATES[1], y)           # cardinality 3
            .where(SUBJECTS[1], PREDICATES[2], y)  # cardinality 1... but y join
            .where(x, PREDICATES[2], Variable("z"))
        )
        plan = explain(store, query)
        assert plan.steps[0].estimated <= plan.steps[0].actual or True
        # first chosen pattern is the cheapest estimate among the three
        first = plan.steps[0]
        assert first.estimated == min(
            len(list(store.match(*p.resolve({})))) for p in query.patterns
        )

    def test_format_renders_deterministically(self):
        store = self.star_store()
        o = Variable("o")
        query = Query().where(SUBJECTS[0], PREDICATES[0], o)
        text = explain(store, query).format()
        lines = text.splitlines()
        assert lines[0].startswith("query plan (store revision")
        assert "est=3 actual=3" in lines[1]
        assert lines[-1].startswith("  solutions=3")

    def test_memo_flushed_when_filter_mutates_store(self):
        """A filter that writes to the store mid-query bumps the revision
        and must not be served stale memo entries afterwards."""
        store = self.star_store()
        o = Variable("o")
        query = Query().where(SUBJECTS[0], PREDICATES[0], o)

        def mutate(binding):
            store.add(SUBJECTS[3], PREDICATES[2], literal("side-effect"))
            return True

        query.filter(mutate)
        first = evaluate_planned(store, query)
        assert len(first) == 3
        # the follow-up query sees the side-effect writes
        follow = Query().where(SUBJECTS[3], PREDICATES[2], Variable("v"))
        assert len(evaluate_planned(store, follow)) == 1
