"""Tests for bulk TripleStore mutations and batched listener notification."""

from repro.rdf import IRI, TripleStore, literal
from repro.rdf.triple import Triple
from repro.workbench import Transaction

S = IRI("http://x/s")
P = IRI("http://x/p")


def _triples(n):
    return [Triple(S, P, literal(i)) for i in range(n)]


class TestBulkMutation:
    def test_add_many_returns_new_count(self):
        store = TripleStore()
        assert store.add_many(_triples(5)) == 5
        assert len(store) == 5
        # re-adding the same triples changes nothing
        assert store.add_many(_triples(5)) == 0

    def test_remove_many_returns_removed_count(self):
        store = TripleStore()
        store.add_many(_triples(5))
        assert store.remove_many(_triples(3)) == 3
        assert len(store) == 2
        assert store.remove_many(_triples(3)) == 0

    def test_bulk_ops_keep_indexes_consistent(self):
        store = TripleStore()
        store.add_many(_triples(4))
        store.remove_many(_triples(2))
        assert sorted(o.lexical for o in store.objects(S, P)) == ["2", "3"]
        assert store.subjects(P, literal(3)) == [S]

    def test_update_and_clear_use_bulk_paths(self):
        store = TripleStore()
        batches = []
        store.subscribe_batch(batches.append)
        store.update(_triples(4))
        store.clear()
        assert len(store) == 0
        assert len(batches) == 2
        assert all(added for added, _ in batches[0])
        assert not any(added for added, _ in batches[1])


class TestBatchListeners:
    def test_batch_listener_called_once_per_bulk_op(self):
        store = TripleStore()
        batches = []
        store.subscribe_batch(batches.append)
        store.add_many(_triples(10))
        assert len(batches) == 1
        assert len(batches[0]) == 10
        assert all(added for added, _ in batches[0])

    def test_per_triple_listeners_see_every_change(self):
        store = TripleStore()
        seen = []
        store.subscribe(lambda added, triple: seen.append((added, triple)))
        store.add_many(_triples(4))
        store.remove_many(_triples(2))
        assert len(seen) == 6
        assert [added for added, _ in seen] == [True] * 4 + [False] * 2

    def test_single_mutations_arrive_as_one_element_batches(self):
        store = TripleStore()
        batches = []
        store.subscribe_batch(batches.append)
        store.add(S, P, literal(1))
        store.remove(S, P, literal(1))
        assert [len(b) for b in batches] == [1, 1]

    def test_empty_bulk_op_does_not_notify(self):
        store = TripleStore()
        batches = []
        store.subscribe_batch(batches.append)
        store.add_many([])
        store.remove_many(_triples(3))  # nothing to remove
        assert batches == []

    def test_unsubscribe_batch(self):
        store = TripleStore()
        batches = []
        unsubscribe = store.subscribe_batch(batches.append)
        store.add_many(_triples(2))
        unsubscribe()
        store.add_many(_triples(4))
        assert len(batches) == 1


class TestTransactionsWithBulkOps:
    def test_rollback_undoes_add_many(self):
        store = TripleStore()
        store.add_many(_triples(2))
        txn = Transaction(store)
        store.add_many(_triples(6))  # 4 new on top of the 2 existing
        txn.rollback()
        assert len(store) == 2

    def test_rollback_undoes_remove_many(self):
        store = TripleStore()
        store.add_many(_triples(6))
        txn = Transaction(store)
        store.remove_many(_triples(4))
        assert len(store) == 2
        txn.rollback()
        assert len(store) == 6

    def test_rollback_undoes_mixed_bulk_sequence(self):
        store = TripleStore()
        store.add_many(_triples(3))
        before = store.snapshot()
        txn = Transaction(store)
        store.remove_many(_triples(2))
        store.add_many([Triple(S, P, literal(f"new{i}")) for i in range(5)])
        store.clear()
        txn.rollback()
        assert store.snapshot() == before


class TestRevisionAccounting:
    """The revision invariant durability depends on: the counter advances
    by exactly the number of *applied* changes, whatever the batching.
    A WAL frame records the primary's post-mutation revision; replay
    verifies it, so bulk and single mutations must account identically.
    """

    def test_add_many_matches_single_adds(self):
        bulk, single = TripleStore(), TripleStore()
        bulk.add_many(_triples(7))
        for triple in _triples(7):
            single.add_triple(triple)
        assert bulk.revision == single.revision == 7

    def test_noop_mutations_do_not_advance_revision(self):
        store = TripleStore()
        store.add_many(_triples(3))
        assert store.revision == 3
        store.add_many(_triples(3))          # all duplicates
        store.remove_many(_triples(0))       # empty batch
        store.remove_triple(Triple(S, P, literal("absent")))
        assert store.revision == 3

    def test_partial_overlap_counts_only_applied(self):
        store = TripleStore()
        store.add_many(_triples(4))
        store.add_many(_triples(6))          # 4 duplicates + 2 fresh
        assert store.revision == 6
        store.remove_many(_triples(8))       # 6 present + 2 absent
        assert store.revision == 12

    def test_mixed_history_replay_reproduces_exact_revision(self):
        """A WAL-shaped oracle: replaying the applied-change batches of a
        mixed bulk/single history lands on the primary's exact revision."""
        primary = TripleStore()
        batches = []
        primary.subscribe_batch(batches.append)

        primary.add_many(_triples(5))
        primary.add_triple(Triple(S, P, literal("solo")))
        primary.remove_many(_triples(3))
        primary.add_many(_triples(4))        # 2 back in, 2 duplicates
        primary.remove_triple(Triple(S, P, literal("solo")))

        replica = TripleStore()
        for changes in batches:
            added = [t for was_add, t in changes if was_add]
            removed = [t for was_add, t in changes if not was_add]
            assert replica.add_many(added) == len(added)
            assert replica.remove_many(removed) == len(removed)
        assert replica.revision == primary.revision == 13
        assert replica.snapshot() == primary.snapshot()
