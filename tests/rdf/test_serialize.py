"""Tests for N-Triples / Turtle serialization."""

import pytest

from repro.core import StoreError
from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    TripleStore,
    XSD_INTEGER,
    from_ntriples,
    literal,
    parse_term,
    term_to_ntriples,
    to_ntriples,
    to_turtle,
)

A = IRI("http://x/a")
P = IRI("http://x/p")


class TestTermSerialization:
    def test_iri_roundtrip(self):
        assert parse_term(term_to_ntriples(A)) == A

    def test_blank_roundtrip(self):
        blank = BlankNode("b42")
        assert parse_term(term_to_ntriples(blank)) == blank

    def test_plain_literal_roundtrip(self):
        lit = Literal("hello world")
        assert parse_term(term_to_ntriples(lit)) == lit

    def test_typed_literal_roundtrip(self):
        lit = Literal("42", XSD_INTEGER)
        assert parse_term(term_to_ntriples(lit)) == lit

    def test_escaped_literal_roundtrip(self):
        lit = Literal('line1\nline2\t"quoted" \\ backslash')
        assert parse_term(term_to_ntriples(lit)) == lit

    def test_malformed_term_rejected(self):
        with pytest.raises(StoreError):
            parse_term("not a term")


class TestStoreRoundtrip:
    def _store(self) -> TripleStore:
        s = TripleStore()
        s.add(A, P, literal("plain"))
        s.add(A, P, literal(42))
        s.add(A, P, literal(True))
        s.add(BlankNode("x"), P, A)
        s.add(A, P, literal('tricky "quotes" and\nnewlines'))
        return s

    def test_ntriples_roundtrip_exact(self):
        original = self._store()
        text = to_ntriples(original)
        restored = from_ntriples(text)
        assert original.snapshot() == restored.snapshot()

    def test_ntriples_output_sorted(self):
        text = to_ntriples(self._store())
        assert text == to_ntriples(from_ntriples(text))

    def test_empty_store(self):
        assert to_ntriples(TripleStore()) == ""
        assert len(from_ntriples("")) == 0

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\n<http://x/a> <http://x/p> \"v\" .\n"
        store = from_ntriples(text)
        assert len(store) == 1

    def test_malformed_line_reports_lineno(self):
        with pytest.raises(StoreError) as excinfo:
            from_ntriples("<a> is broken\n")
        assert "line 1" in str(excinfo.value)

    def test_literal_subject_rejected(self):
        with pytest.raises(StoreError):
            from_ntriples('"lit" <http://x/p> <http://x/a> .')


class TestTurtle:
    def test_turtle_groups_subjects(self):
        store = TripleStore()
        store.add(A, P, literal("one"))
        store.add(A, IRI("http://x/q"), literal("two"))
        text = to_turtle(store)
        assert text.count("<http://x/a>") == 1
        assert "@prefix rdf:" in text

    def test_turtle_compacts_known_namespaces(self):
        from repro.rdf import vocabulary as V

        store = TripleStore()
        store.add(A, V.RDF_TYPE, V.SCHEMA_CLASS)
        text = to_turtle(store)
        assert "rdf:type" in text
        assert "iw:Schema" in text
