"""Golden-format tests: the on-disk WAL and snapshot bytes are frozen.

``tests/rdf/golden/`` holds byte-exact WAL and snapshot files produced
by :func:`golden_history` at format version 1, plus ``expected.json``
describing the state they must decode to.  These tests fail if the
serialization format drifts — which is the point: a format change must
either keep decoding the committed bytes (backwards compatible) or bump
``FORMAT_VERSION`` and add new goldens alongside the old ones.

Regenerate (only when introducing a NEW format version) with::

    PYTHONPATH=src python tests/rdf/test_durability_golden.py --regenerate
"""

import json
import os

import pytest

from repro.core.errors import DurabilityError
from repro.rdf import (
    BlankNode,
    IRI,
    DurableStore,
    FaultInjectingFS,
    literal,
    scan_wal,
)
from repro.rdf.durability import (
    FORMAT_VERSION,
    decode_snapshot,
    encode_snapshot,
)
from repro.rdf.serialize import to_ntriples
from repro.rdf.term import XSD_INTEGER, Literal
from repro.rdf.triple import Triple

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
WAL_GOLDEN = os.path.join(GOLDEN_DIR, "wal_v1.bin")
SNAPSHOT_GOLDEN = os.path.join(GOLDEN_DIR, "snapshot_v1.bin")
EXPECTED = os.path.join(GOLDEN_DIR, "expected.json")


def golden_history(store):
    """A fixed mutation history covering every term kind and op shape:
    IRIs, blank nodes, plain/typed/unicode literals, bulk and single
    adds, removals, and a no-op-containing batch."""
    ex = lambda s: IRI(f"http://example.org/{s}")
    store.add(ex("alice"), ex("knows"), ex("bob"))
    store.add_many([
        Triple(ex("alice"), ex("name"), literal("Alice")),
        Triple(ex("alice"), ex("age"), literal(30)),
        Triple(ex("bob"), ex("name"), literal("Bobé 你好")),
        Triple(BlankNode("b0"), ex("memberOf"), ex("team")),
        Triple(ex("bob"), ex("score"),
               Literal("2.5", "http://www.w3.org/2001/XMLSchema#double")),
    ])
    store.remove(ex("alice"), ex("age"), literal(30))
    store.add_many([
        Triple(ex("alice"), ex("knows"), ex("bob")),  # no-op duplicate
        Triple(ex("alice"), ex("knows"), ex("carol")),
    ])
    store.remove_many([
        Triple(ex("bob"), ex("name"), literal("Bobé 你好")),
        Triple(ex("never"), ex("was"), ex("here")),  # no-op removal
    ])


def build_golden_bytes():
    fs = FaultInjectingFS()
    durable = DurableStore("/db", fsync="always", fs=fs)
    golden_history(durable.store)
    snapshot = encode_snapshot(durable.store, seq=durable.next_seq)
    state = {
        "format_version": FORMAT_VERSION,
        "revision": durable.revision,
        "next_seq": durable.next_seq,
        "triple_count": len(durable.store),
        "ntriples": to_ntriples(durable.store),
    }
    wal = fs.read_bytes("/db/store.wal")
    durable.close()
    return wal, snapshot, state


class TestGoldenWAL:
    def test_golden_wal_still_loads(self):
        with open(WAL_GOLDEN, "rb") as handle:
            data = handle.read()
        with open(EXPECTED, "r", encoding="utf-8") as handle:
            expected = json.load(handle)

        base_revision, base_seq, frames, durable_len = scan_wal(data)
        assert (base_revision, base_seq) == (0, 1)
        assert durable_len == len(data)  # not one stale byte

        fs = FaultInjectingFS()
        fs.write_bytes("/db/store.wal", data)
        recovered = DurableStore("/db", fs=fs)
        assert recovered.revision == expected["revision"]
        assert recovered.next_seq == expected["next_seq"]
        assert len(recovered.store) == expected["triple_count"]
        assert to_ntriples(recovered.store) == expected["ntriples"]
        recovered.close()

    def test_current_encoder_reproduces_golden_bytes(self):
        """Byte-for-byte: today's writer produces yesterday's file."""
        wal, _, _ = build_golden_bytes()
        with open(WAL_GOLDEN, "rb") as handle:
            assert handle.read() == wal

    def test_future_version_wal_rejected(self):
        with open(WAL_GOLDEN, "rb") as handle:
            data = bytearray(handle.read())
        data[len(b"IWWAL")] = FORMAT_VERSION + 1
        with pytest.raises(DurabilityError):
            scan_wal(bytes(data))


class TestGoldenSnapshot:
    def test_golden_snapshot_still_loads(self):
        with open(SNAPSHOT_GOLDEN, "rb") as handle:
            data = handle.read()
        with open(EXPECTED, "r", encoding="utf-8") as handle:
            expected = json.load(handle)

        revision, next_seq, triples = decode_snapshot(data)
        assert revision == expected["revision"]
        assert next_seq == expected["next_seq"]
        assert len(triples) == expected["triple_count"]

        fs = FaultInjectingFS()
        fs.write_bytes("/db/store.snapshot", data)
        recovered = DurableStore("/db", fs=fs)
        assert to_ntriples(recovered.store) == expected["ntriples"]
        recovered.close()

    def test_current_encoder_reproduces_golden_bytes(self):
        _, snapshot, _ = build_golden_bytes()
        with open(SNAPSHOT_GOLDEN, "rb") as handle:
            assert handle.read() == snapshot

    def test_future_version_snapshot_rejected(self):
        with open(SNAPSHOT_GOLDEN, "rb") as handle:
            data = bytearray(handle.read())
        data[len(b"IWSNAP")] = FORMAT_VERSION + 1
        with pytest.raises(DurabilityError):
            decode_snapshot(bytes(data))

    def test_expected_json_matches_builder(self):
        """The committed expected.json is itself regenerable."""
        _, _, state = build_golden_bytes()
        with open(EXPECTED, "r", encoding="utf-8") as handle:
            assert json.load(handle) == state


def _regenerate():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    wal, snapshot, state = build_golden_bytes()
    with open(WAL_GOLDEN, "wb") as handle:
        handle.write(wal)
    with open(SNAPSHOT_GOLDEN, "wb") as handle:
        handle.write(snapshot)
    with open(EXPECTED, "w", encoding="utf-8") as handle:
        json.dump(state, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(wal)}-byte WAL, {len(snapshot)}-byte snapshot, "
          f"revision {state['revision']}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
