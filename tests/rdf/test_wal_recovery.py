"""Fault-injection harness: WAL crash recovery at every byte boundary.

The durability contract (``repro.rdf.durability``) is that recovering a
directory after a crash at *any* point yields exactly the longest
durable prefix of the mutation history: every fully-persisted frame is
replayed, no partial frame is ever applied, and the recovered store is
indistinguishable — triples, permutation indexes, ``count_matching``
counters, and the ``revision`` counter — from a store that only ever saw
the durable mutations.

The oracle is built by shadowing the durable store with a plain
:class:`TripleStore` and snapshotting its state at every frame boundary
(the WAL byte offset after each mutation).  Crashes are injected through
:class:`~repro.rdf.faultfs.FaultInjectingFS`: file truncation at each
byte boundary, fsync-dropped tails under the ``commit`` policy, torn
writes that persist part of the volatile tail, short writes from an
exhausted disk, and bit-flipped frames that must fail the checksum.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DurabilityError
from repro.rdf import (
    IRI,
    DurableStore,
    FaultInjectingFS,
    TripleStore,
    literal,
    scan_wal,
)
from repro.rdf.durability import WALFrame, _frame_bytes
from repro.rdf.triple import Triple

# a small universe so random mutations collide (duplicate adds, removals
# of absent triples) and exercise the no-op paths
SUBJECTS = [IRI(f"urn:s{i}") for i in range(3)]
PREDICATES = [IRI(f"urn:p{i}") for i in range(3)]
OBJECTS = [IRI(f"urn:o{i}") for i in range(2)] + [literal("x"), literal(7)]

triples_st = st.builds(
    Triple,
    st.sampled_from(SUBJECTS),
    st.sampled_from(PREDICATES),
    st.sampled_from(OBJECTS),
)

ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("add"), triples_st),
        st.tuples(st.just("remove"), triples_st),
        st.tuples(st.just("add_many"), st.lists(triples_st, max_size=4)),
        st.tuples(st.just("remove_many"), st.lists(triples_st, max_size=4)),
    ),
    min_size=1,
    max_size=6,
)

DB = "/db"
WAL = f"{DB}/store.wal"


def apply_op(store, op):
    kind, arg = op
    if kind == "add":
        store.add_triple(arg)
    elif kind == "remove":
        store.remove_triple(arg)
    elif kind == "add_many":
        store.add_many(arg)
    else:
        store.remove_many(arg)


def state_of(store):
    """The comparable state: triples, revision, every per-position counter."""
    counters = {}
    for term in SUBJECTS:
        counters[("s", term)] = store.count_matching(subject=term)
    for term in PREDICATES:
        counters[("p", term)] = store.count_matching(predicate=term)
    for term in OBJECTS:
        counters[("o", term)] = store.count_matching(obj=term)
    for s in SUBJECTS:
        for p in PREDICATES:
            counters[("sp", s, p)] = store.count_matching(subject=s, predicate=p)
    return (store.snapshot(), store.revision, counters, len(store))


def run_history(ops, fsync="always", fs=None):
    """Apply ops to a durable store; returns (fs, oracle states).

    The oracle maps each WAL byte length to the shadow store's state at
    that frame boundary; entry 0 is the pre-header empty state.
    """
    fs = fs if fs is not None else FaultInjectingFS()
    durable = DurableStore(DB, fsync=fsync, fs=fs)
    shadow = TripleStore()
    oracle = {0: state_of(shadow), durable.wal_size: state_of(shadow)}
    for op in ops:
        apply_op(durable.store, op)
        apply_op(shadow, op)
        oracle[durable.wal_size] = state_of(shadow)
    durable.close()
    return fs, oracle


def assert_longest_durable_prefix(fs, oracle):
    """Recover and compare against the oracle entry for the WAL length."""
    persisted = len(fs.read_bytes(WAL))
    boundaries = [b for b in oracle if b <= persisted]
    want = oracle[max(boundaries)]
    recovered = DurableStore(DB, fs=fs)
    got = state_of(recovered.store)
    recovered.close()
    assert got == want
    return recovered


class TestCrashAtEveryByte:
    @given(ops_st)
    @settings(max_examples=20, deadline=None)
    def test_recovery_equals_durable_prefix_oracle(self, ops):
        fs, oracle = run_history(ops)
        wal = fs.read_bytes(WAL)
        assert len(wal) == max(oracle)
        for boundary in range(len(wal) + 1):
            crashed = FaultInjectingFS()
            crashed.write_bytes(WAL, wal[:boundary])
            assert_longest_durable_prefix(crashed, oracle)

    def test_exhaustive_fixed_history(self):
        """Deterministic every-byte sweep over a longer mixed history."""
        ops = []
        for i in range(4):
            ops.append(("add_many", [
                Triple(SUBJECTS[i % 3], PREDICATES[j % 3], literal(i * 10 + j))
                for j in range(5)
            ]))
            ops.append(("remove", Triple(SUBJECTS[i % 3], PREDICATES[0],
                                         literal(i * 10))))
            ops.append(("add", Triple(SUBJECTS[0], PREDICATES[1],
                                      literal(f"round-{i}"))))
        fs, oracle = run_history(ops)
        wal = fs.read_bytes(WAL)
        # two empty-state baselines (offset 0, header end) + one per op
        assert len(oracle) == len(ops) + 2
        for boundary in range(len(wal) + 1):
            crashed = FaultInjectingFS()
            crashed.write_bytes(WAL, wal[:boundary])
            assert_longest_durable_prefix(crashed, oracle)

    @given(ops_st)
    @settings(max_examples=20, deadline=None)
    def test_recovery_is_idempotent(self, ops):
        """Recovering twice (crash during recovery) changes nothing."""
        fs, oracle = run_history(ops)
        wal = fs.read_bytes(WAL)
        boundary = len(wal) * 2 // 3
        crashed = FaultInjectingFS()
        crashed.write_bytes(WAL, wal[:boundary])
        first = DurableStore(DB, fs=crashed)
        state = state_of(first.store)
        first.close()
        again = DurableStore(DB, fs=crashed)
        assert state_of(again.store) == state
        again.close()


class TestFsyncPolicies:
    def test_commit_policy_loses_only_unsynced_tail(self):
        fs = FaultInjectingFS()
        durable = DurableStore(DB, fsync="commit", fs=fs)
        durable.store.add_many(
            [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(4)])
        durable.sync()
        synced_state = state_of(durable.store)
        durable.store.add(SUBJECTS[1], PREDICATES[1], literal("volatile"))
        fs.crash()

        recovered = DurableStore(DB, fs=fs)
        assert state_of(recovered.store) == synced_state
        recovered.close()

    def test_always_policy_loses_nothing(self):
        fs = FaultInjectingFS()
        durable = DurableStore(DB, fsync="always", fs=fs)
        durable.store.add_many(
            [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(4)])
        durable.store.remove(SUBJECTS[0], PREDICATES[0], literal(2))
        full_state = state_of(durable.store)
        fs.crash()  # no clean close: the crash is the point

        recovered = DurableStore(DB, fs=fs)
        assert state_of(recovered.store) == full_state
        recovered.close()

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            DurableStore(DB, fsync="sometimes", fs=FaultInjectingFS())


class TestTornAndShortWrites:
    def test_torn_tail_never_applies_a_partial_frame(self):
        """Persisting k bytes of the volatile tail, for every k, recovers
        exactly the frames that are fully inside the persisted prefix."""
        fs, oracle = run_history(
            [("add_many",
              [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(3)]),
             ("add", Triple(SUBJECTS[1], PREDICATES[1], literal("tail")))],
            fsync="always")
        wal = fs.read_bytes(WAL)
        boundaries = sorted(oracle)
        synced_len = boundaries[-2]  # pretend the last frame never synced
        tail = wal[synced_len:]
        for keep in range(len(tail) + 1):
            crashed = FaultInjectingFS()
            crashed.write_bytes(WAL, wal[:synced_len] + tail[:keep])
            recovered = DurableStore(DB, fs=crashed)
            want = oracle[len(wal)] if keep == len(tail) else oracle[synced_len]
            assert state_of(recovered.store) == want
            recovered.close()

    def test_short_write_surfaces_and_recovers_to_prefix(self):
        fs = FaultInjectingFS()
        durable = DurableStore(DB, fsync="always", fs=fs)
        durable.store.add_many(
            [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(3)])
        durable.sync()
        durable_state = state_of(durable.store)
        fs.fail_after_bytes = len(fs.read_bytes(WAL)) + 10  # room for 10 more
        with pytest.raises(OSError):
            durable.store.add_many(
                [Triple(SUBJECTS[1], PREDICATES[1], literal(i))
                 for i in range(20)])
        fs.crash()

        fs.fail_after_bytes = None
        recovered = DurableStore(DB, fs=fs)
        # the in-memory store had applied the batch before the disk
        # refused it; durable truth is the state before the failed write
        assert state_of(recovered.store) == durable_state
        recovered.close()


class TestCorruption:
    def test_corrupt_frame_cuts_the_log_there(self):
        fs, oracle = run_history(
            [("add", Triple(SUBJECTS[0], PREDICATES[0], literal(i)))
             for i in range(5)])
        wal = fs.read_bytes(WAL)
        boundaries = sorted(oracle)
        # flip one byte inside the third frame's span
        offset = boundaries[2] + (boundaries[3] - boundaries[2]) // 2
        fs.corrupt(WAL, offset)
        recovered = DurableStore(DB, fs=fs)
        # frames before the corruption survive; the corrupt frame and
        # everything after it — intact or not — are cut off
        assert state_of(recovered.store) == oracle[boundaries[2]]
        assert recovered.stats["truncated_tail_bytes"] == (
            len(wal) - boundaries[2])
        recovered.close()

    def test_corrupt_header_yields_empty_log(self):
        fs, oracle = run_history(
            [("add", Triple(SUBJECTS[0], PREDICATES[0], literal(1)))])
        fs.corrupt(WAL, len(b"IWWAL") + 3)  # inside the header checksum
        recovered = DurableStore(DB, fs=fs)
        assert state_of(recovered.store) == oracle[0]
        recovered.close()

    def test_foreign_magic_raises(self):
        fs = FaultInjectingFS()
        fs.write_bytes(WAL, b"NOTAWAL-at-all")
        with pytest.raises(DurabilityError):
            DurableStore(DB, fs=fs)

    def test_future_version_raises(self):
        fs, _ = run_history(
            [("add", Triple(SUBJECTS[0], PREDICATES[0], literal(1)))])
        data = bytearray(fs.read_bytes(WAL))
        data[len(b"IWWAL")] = 99
        fs.write_bytes(WAL, bytes(data))
        with pytest.raises(DurabilityError):
            DurableStore(DB, fs=fs)

    def test_revision_divergence_detected(self):
        """A CRC-valid frame whose recorded revision disagrees with the
        replayed store is corruption recovery must refuse to paper over."""
        fs, _ = run_history(
            [("add", Triple(SUBJECTS[0], PREDICATES[0], literal(1)))])
        wal = fs.read_bytes(WAL)
        rogue = WALFrame(
            seq=2, revision=17,  # the true post-apply revision would be 2
            ops=((True, Triple(SUBJECTS[1], PREDICATES[1], literal(2))),))
        fs.write_bytes(WAL, wal + _frame_bytes(rogue.encode()))
        with pytest.raises(DurabilityError):
            DurableStore(DB, fs=fs)

    def test_sequence_gap_cuts_the_log(self):
        fs, oracle = run_history(
            [("add", Triple(SUBJECTS[0], PREDICATES[0], literal(1)))])
        wal = fs.read_bytes(WAL)
        skipped = WALFrame(
            seq=5, revision=2,
            ops=((True, Triple(SUBJECTS[1], PREDICATES[1], literal(2))),))
        fs.write_bytes(WAL, wal + _frame_bytes(skipped.encode()))
        recovered = DurableStore(DB, fs=fs)
        assert state_of(recovered.store) == oracle[max(oracle)]
        recovered.close()


class TestCheckpointing:
    def test_checkpoint_compacts_and_recovers(self):
        fs = FaultInjectingFS()
        durable = DurableStore(DB, fsync="always", fs=fs)
        durable.store.add_many(
            [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(20)])
        durable.store.remove_many(
            [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(5)])
        wal_before = durable.wal_size
        durable.checkpoint()
        assert durable.wal_size < wal_before  # truncated to a bare header
        state = state_of(durable.store)
        durable.store.add(SUBJECTS[1], PREDICATES[1], literal("post"))
        post_state = state_of(durable.store)
        durable.close()

        recovered = DurableStore(DB, fs=fs)
        assert state_of(recovered.store) == post_state
        assert recovered.stats["recovered_snapshot_triples"] == 15
        assert recovered.stats["recovered_frames"] == 1
        recovered.close()
        assert state != post_state  # the test exercised both layers

    def test_crash_between_snapshot_and_wal_truncate(self):
        """The compaction crash window: new snapshot + old (long) WAL.
        Frames already folded into the snapshot must be skipped, by the
        frame-revision guard, not replayed twice."""
        fs = FaultInjectingFS()
        durable = DurableStore(DB, fsync="always", fs=fs)
        durable.store.add_many(
            [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(6)])
        durable.store.remove(SUBJECTS[0], PREDICATES[0], literal(3))
        old_wal = fs.read_bytes(WAL)
        durable.checkpoint()
        full_state = state_of(durable.store)
        next_seq = durable.next_seq
        durable.close()

        # resurrect the pre-checkpoint WAL next to the new snapshot
        fs.write_bytes(WAL, old_wal)
        recovered = DurableStore(DB, fs=fs)
        assert state_of(recovered.store) == full_state
        assert recovered.stats["recovered_frames"] == 0
        assert recovered.next_seq == next_seq  # seq continues, no reuse
        recovered.close()

    def test_auto_checkpoint_triggers_on_wal_growth(self):
        fs = FaultInjectingFS()
        durable = DurableStore(
            DB, fsync="always", auto_checkpoint_bytes=512, fs=fs)
        for i in range(50):
            durable.store.add(SUBJECTS[i % 3], PREDICATES[i % 3],
                              literal(f"value-{i}"))
        assert durable.stats["checkpoints"] >= 1
        assert durable.wal_size < 512 + 128  # compaction kept the log short
        state = state_of(durable.store)
        durable.close()
        recovered = DurableStore(DB, fs=fs)
        assert state_of(recovered.store) == state
        recovered.close()

    def test_corrupt_snapshot_raises(self):
        fs = FaultInjectingFS()
        durable = DurableStore(DB, fsync="always", fs=fs)
        durable.store.add(SUBJECTS[0], PREDICATES[0], literal(1))
        durable.checkpoint()
        durable.close()
        snap = f"{DB}/store.snapshot"
        fs.corrupt(snap, len(fs.read_bytes(snap)) // 2)
        with pytest.raises(DurabilityError):
            DurableStore(DB, fs=fs)


class TestRealFilesystem:
    """One pass over the genuine OS filesystem, so the MemoryFS model
    cannot drift from reality unnoticed."""

    def test_roundtrip_and_truncated_tail(self, tmp_path):
        directory = str(tmp_path / "db")
        durable = DurableStore(directory, fsync="always")
        durable.store.add_many(
            [Triple(SUBJECTS[0], PREDICATES[0], literal(i)) for i in range(8)])
        durable.store.remove(SUBJECTS[0], PREDICATES[0], literal(1))
        state = state_of(durable.store)
        durable.checkpoint()
        durable.store.add(SUBJECTS[1], PREDICATES[2], literal("tail"))
        final_state = state_of(durable.store)
        durable.close()

        recovered = DurableStore(directory)
        assert state_of(recovered.store) == final_state
        recovered.close()

        # chop the last 3 bytes off the WAL: the tail frame must vanish
        wal_path = tmp_path / "db" / "store.wal"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-3])
        reopened = DurableStore(directory)
        assert state_of(reopened.store) == state
        # ...and appending must work after the truncated reopen
        reopened.store.add(SUBJECTS[2], PREDICATES[2], literal("again"))
        reopened.close()
        final = DurableStore(directory)
        assert len(final.store) == len(state[0]) + 1
        final.close()

    def test_scan_wal_reports_durable_length(self, tmp_path):
        directory = str(tmp_path / "db")
        durable = DurableStore(directory, fsync="always")
        durable.store.add(SUBJECTS[0], PREDICATES[0], literal(1))
        durable.close()
        data = (tmp_path / "db" / "store.wal").read_bytes()
        base_revision, base_seq, frames, durable_len = scan_wal(data)
        assert (base_revision, base_seq) == (0, 1)
        assert [f.seq for f in frames] == [1]
        assert durable_len == len(data)
        assert frames[0].revision == 1
        assert frames[0].ops[0][0] is True
