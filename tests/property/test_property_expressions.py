"""Property-based tests for the expression language and transforms."""

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.mapper import (
    Environment,
    LinearTransform,
    LookupTransform,
    evaluate,
    parse,
    variables_used,
)

var_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6).filter(
    lambda s: s not in ("or", "and", "not", "true", "false", "null", "if")
)
numbers = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).map(
    lambda f: round(f, 3)
)


class TestExpressionProperties:
    @given(numbers)
    def test_numeric_literal_roundtrip(self, value):
        assume(value == value)  # no NaN
        rendered = repr(value)
        assert evaluate(rendered) == value or abs(evaluate(rendered) - value) < 1e-9

    @given(st.text(max_size=20))
    def test_string_literal_roundtrip(self, text):
        assume('"' not in text and "\\" not in text and "\n" not in text)
        assert evaluate(f'"{text}"') == text

    @given(var_names, numbers)
    def test_variable_resolution(self, name, value):
        assert evaluate(f"${name}", Environment({name: value})) == value

    @given(var_names, var_names, numbers, numbers)
    def test_addition_commutative(self, x, y, a, b):
        assume(x != y)
        env = Environment({x: a, y: b})
        assert evaluate(f"${x} + ${y}", env) == evaluate(f"${y} + ${x}", env)

    @given(st.lists(var_names, min_size=1, max_size=5, unique=True))
    def test_variables_used_finds_all(self, variables):
        expression = " + ".join(f"${v}" for v in variables)
        assert variables_used(expression) == sorted(set(variables))

    @given(numbers, numbers)
    def test_comparison_consistency(self, a, b):
        env = Environment({"a": a, "b": b})
        less = evaluate("$a < $b", env)
        greater_equal = evaluate("$a >= $b", env)
        assert less != greater_equal

    @given(var_names)
    def test_parse_evaluate_stable(self, name):
        node = parse(f"upper(${name})")
        env = Environment({name: "x"})
        from repro.mapper import evaluate as ev

        assert ev(node, env) == ev(node, env) == "X"


class TestTransformProperties:
    @given(numbers, st.floats(min_value=0.001, max_value=1000), numbers)
    @settings(max_examples=60)
    def test_linear_inverse_roundtrip(self, value, scale, offset):
        transform = LinearTransform(scale=scale, offset=offset)
        restored = transform.inverse().apply(transform.apply(value))
        assert abs(restored - value) < max(1e-6, abs(value) * 1e-6) + 1e-4

    @given(numbers, st.floats(min_value=0.001, max_value=100), numbers)
    @settings(max_examples=60)
    def test_linear_code_matches_apply(self, value, scale, offset):
        transform = LinearTransform(scale=scale, offset=offset)
        code = transform.to_code("v")
        computed = evaluate(code, Environment({"v": value}))
        assert abs(computed - transform.apply(value)) < 1e-6

    @given(st.dictionaries(st.text(max_size=6), st.text(max_size=6), max_size=8),
           st.text(max_size=6))
    def test_lookup_total_on_table_keys(self, table, probe):
        transform = LookupTransform("t", table, default="?")
        for key, expected in table.items():
            assert transform.apply(key) == expected
        if probe not in table:
            assert transform.apply(probe) == "?"
