"""Property-based tests for the generators: scenarios, registry, codegen."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ElementKind
from repro.eval import (
    BASE_MODELS,
    DOC_BOTH,
    DOC_NONE,
    DOC_SOURCE_ONLY,
    ScenarioConfig,
    generate_scenario,
)
from repro.registry import compute_stats, generate_registry

scenario_configs = st.builds(
    ScenarioConfig,
    seed=st.integers(0, 10_000),
    synonym_rate=st.floats(0.0, 0.8),
    abbreviation_rate=st.floats(0.0, 0.5),
    drop_rate=st.floats(0.0, 0.4),
    noise_attributes=st.floats(0.0, 1.5),
    documentation=st.sampled_from([DOC_BOTH, DOC_SOURCE_ONLY, DOC_NONE]),
    keep_domains=st.booleans(),
    attach_instances=st.booleans(),
)

base_models = st.sampled_from(sorted(BASE_MODELS)).map(lambda k: BASE_MODELS[k]())


class TestScenarioProperties:
    @given(base_models, scenario_configs)
    @settings(max_examples=30, deadline=None)
    def test_graphs_always_valid(self, base, config):
        scenario = generate_scenario(base, config)
        assert scenario.source.validate() == []
        assert scenario.target.validate() == []

    @given(base_models, scenario_configs)
    @settings(max_examples=30, deadline=None)
    def test_alignment_endpoints_exist(self, base, config):
        scenario = generate_scenario(base, config)
        for source_id, target_id in scenario.alignment:
            assert source_id in scenario.source
            assert target_id in scenario.target

    @given(base_models, scenario_configs)
    @settings(max_examples=30, deadline=None)
    def test_alignment_is_kind_consistent(self, base, config):
        scenario = generate_scenario(base, config)
        for source_id, target_id in scenario.alignment:
            source_kind = scenario.source.element(source_id).kind
            target_kind = scenario.target.element(target_id).kind
            assert source_kind is target_kind

    @given(base_models, scenario_configs)
    @settings(max_examples=20, deadline=None)
    def test_doc_none_means_no_docs_anywhere(self, base, config):
        if config.documentation != DOC_NONE:
            return
        scenario = generate_scenario(base, config)
        assert all(not e.documentation for e in scenario.source)
        assert all(not e.documentation for e in scenario.target)

    @given(base_models, st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_base_model_not_mutated(self, base, seed):
        import copy

        pristine = copy.deepcopy(base)
        generate_scenario(base, ScenarioConfig(seed=seed, attach_instances=True))
        assert base == pristine


class TestRegistryProperties:
    @given(st.integers(0, 1_000), st.floats(0.002, 0.02))
    @settings(max_examples=10, deadline=None)
    def test_registry_always_loadable(self, seed, scale):
        from repro.loaders import load_registry

        registry = generate_registry(seed=seed, scale=scale)
        loaded = load_registry(registry)
        for graph in loaded:
            assert graph.validate() == []

    @given(st.integers(0, 1_000))
    @settings(max_examples=10, deadline=None)
    def test_stats_never_exceed_counts(self, seed):
        registry = generate_registry(seed=seed, scale=0.005)
        stats = compute_stats(registry)
        for row in stats.rows:
            assert 0 <= row.with_definition <= row.item_count
            assert row.percent_with_definition <= 100.0


class TestDeploymentEquivalence:
    """The deployed artifact computes the same documents as in-process
    execution, for arbitrary scalar expressions over random rows."""

    rows_strategy = st.lists(
        st.fixed_dictionaries({
            "k": st.integers(0, 10_000),
            "a": st.integers(-1000, 1000),
            "b": st.text(
                alphabet="abcdefghij", min_size=0, max_size=8),
        }),
        min_size=0, max_size=8, unique_by=lambda r: r["k"],
    )
    expressions = st.sampled_from([
        "$a * 2 + 1",
        "upper($b)",
        'concat($b, "-", $a)',
        "if($a > 0, $a, -$a)",
        "coalesce($b, \"x\")",
        "min($a, 0)",
    ])

    @given(rows_strategy, expressions)
    @settings(max_examples=30, deadline=None)
    def test_artifact_matches_interpreter(self, rows, expression):
        from repro.codegen import execute, generate_python_module, load_artifact
        from repro.mapper import (
            AttributeMapping,
            DirectEntity,
            EntityMapping,
            KeyIdentity,
            MappingSpec,
            ScalarTransform,
        )

        spec = MappingSpec("m", "s", "t")
        entity = EntityMapping(
            "t/out", DirectEntity("s/rows"), identity=KeyIdentity(["k"]))
        entity.attributes.append(
            AttributeMapping("t/out/v", ScalarTransform(expression)))
        spec.entities.append(entity)

        native = execute(spec, {"s/rows": rows}).rows("t/out")
        artifact = load_artifact(generate_python_module(spec))
        deployed = artifact["run"]({"s/rows": rows})["t/out"]
        assert deployed == native
