"""Property-based tests for the linguistic substrate."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    dice_similarity,
    edit_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    monge_elkan,
    ngram_similarity,
    remove_stop_words,
    split_identifier,
    stem,
    substring_similarity,
    word_tokens,
)

words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)
identifiers = st.text(
    alphabet=string.ascii_letters + string.digits + "_-.", min_size=0, max_size=24
)
free_text = st.text(min_size=0, max_size=80)


class TestTokenizeProperties:
    @given(identifiers)
    def test_split_identifier_tokens_lowercase_alnum(self, identifier):
        for token in split_identifier(identifier):
            assert token
            assert token == token.lower()
            assert token.isalnum()

    @given(identifiers)
    def test_split_identifier_preserves_characters(self, identifier):
        joined = "".join(split_identifier(identifier))
        original = "".join(c for c in identifier.lower() if c.isalnum())
        assert joined == original

    @given(free_text)
    def test_word_tokens_never_crash_and_lowercase(self, text):
        for token in word_tokens(text):
            assert token == token.lower()

    @given(st.lists(words, max_size=10))
    def test_remove_stop_words_subset(self, tokens):
        kept = remove_stop_words(tokens)
        assert all(t in tokens for t in kept)


class TestStemmerProperties:
    @given(words)
    def test_stem_never_longer(self, word):
        assert len(stem(word)) <= len(word)

    @given(words)
    def test_stem_nonempty_for_nonempty(self, word):
        assert stem(word)

    @given(words)
    def test_stem_deterministic(self, word):
        assert stem(word) == stem(word)

    @given(words)
    def test_stem_case_insensitive(self, word):
        assert stem(word.upper()) == stem(word)


class TestSimilarityProperties:
    @given(words, words)
    def test_levenshtein_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(words)
    def test_levenshtein_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(words, words, words)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(words, words)
    def test_edit_similarity_range(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0

    @given(words, words)
    def test_jaro_winkler_range_and_symmetry(self, a, b):
        score = jaro_winkler_similarity(a, b)
        assert 0.0 <= score <= 1.0 + 1e-9
        assert score == jaro_winkler_similarity(b, a)

    @given(words)
    def test_jaro_winkler_identity(self, a):
        assert jaro_winkler_similarity(a, a) == 1.0

    @given(st.sets(words, max_size=8), st.sets(words, max_size=8))
    def test_jaccard_range_and_symmetry(self, a, b):
        score = jaccard_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == jaccard_similarity(b, a)

    @given(words, words)
    def test_ngram_similarity_range(self, a, b):
        assert 0.0 <= ngram_similarity(a, b) <= 1.0

    @given(st.lists(words, max_size=5), st.lists(words, max_size=5))
    @settings(max_examples=40)
    def test_monge_elkan_range_and_symmetry(self, a, b):
        score = monge_elkan(a, b)
        assert 0.0 <= score <= 1.0 + 1e-9
        assert abs(score - monge_elkan(b, a)) < 1e-9


#: every string measure in repro.text.similarity, for the shared invariants
#: (the differential kernel harness leans on these holding for the oracle)
STRING_MEASURES = [
    edit_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    ngram_similarity,
    substring_similarity,
]

mixed_case = st.text(
    alphabet=string.ascii_letters + string.digits + "_-", min_size=0, max_size=16
)


class TestReferenceMeasureInvariants:
    """The invariants the differential harness assumes of the oracle:
    symmetry, identity = 1.0, range [0, 1], measure orderings, and the
    casing / empty-string conventions the module docstring promises."""

    @pytest.mark.parametrize("measure", STRING_MEASURES,
                             ids=[m.__name__ for m in STRING_MEASURES])
    @given(mixed_case, mixed_case)
    def test_symmetry(self, measure, a, b):
        assert measure(a, b) == pytest.approx(measure(b, a), abs=1e-12)

    @pytest.mark.parametrize("measure", STRING_MEASURES,
                             ids=[m.__name__ for m in STRING_MEASURES])
    @given(mixed_case)
    def test_identity_is_one(self, measure, a):
        assert measure(a, a) == 1.0

    @pytest.mark.parametrize("measure", STRING_MEASURES,
                             ids=[m.__name__ for m in STRING_MEASURES])
    @given(mixed_case, mixed_case)
    def test_range(self, measure, a, b):
        assert 0.0 <= measure(a, b) <= 1.0 + 1e-9

    @pytest.mark.parametrize("measure", STRING_MEASURES,
                             ids=[m.__name__ for m in STRING_MEASURES])
    @given(mixed_case, mixed_case)
    def test_case_insensitive(self, measure, a, b):
        assert measure(a.upper(), b) == pytest.approx(measure(a.lower(), b), abs=1e-12)

    @pytest.mark.parametrize("measure", STRING_MEASURES,
                             ids=[m.__name__ for m in STRING_MEASURES])
    @given(mixed_case)
    def test_empty_string_conventions(self, measure, a):
        assert measure("", "") == 1.0
        # ngram_similarity works on the alphanumeric squash, so a string
        # of pure punctuation legitimately behaves as empty there
        if any(c.isalnum() for c in a):
            assert measure(a, "") == 0.0
            assert measure("", a) == 0.0

    @given(mixed_case, mixed_case)
    def test_jaro_winkler_geq_jaro(self, a, b):
        """The Winkler prefix boost only ever adds."""
        assert jaro_winkler_similarity(a, b) >= jaro_similarity(a, b) - 1e-12

    @given(st.sets(words, max_size=8), st.sets(words, max_size=8))
    def test_dice_geq_jaccard(self, a, b):
        """Dice dominates Jaccard on the same sets (2|∩|/(|A|+|B|) vs
        |∩|/|∪|)."""
        assert dice_similarity(a, b) >= jaccard_similarity(a, b) - 1e-12

    @given(st.sets(words, max_size=8), st.sets(words, max_size=8))
    def test_dice_range_and_symmetry(self, a, b):
        score = dice_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == dice_similarity(b, a)

    @given(st.sets(words, max_size=8))
    def test_set_measures_identity(self, a):
        assert dice_similarity(a, a) == 1.0
        assert jaccard_similarity(a, a) == 1.0
