"""Property-based tests for the RDF substrate."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import (
    BlankNode,
    IRI,
    Literal,
    Triple,
    TripleStore,
    XSD_BOOLEAN,
    XSD_INTEGER,
    XSD_STRING,
    from_ntriples,
    to_ntriples,
)

iri_strategy = st.builds(
    IRI,
    st.text(alphabet=string.ascii_letters + string.digits + ":/._-#", min_size=1,
            max_size=30).map(lambda s: "http://x/" + s.replace(">", "")),
)
blank_strategy = st.builds(
    BlankNode, st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=10)
)
literal_strategy = st.one_of(
    st.builds(Literal, st.text(max_size=30)),
    st.integers(-10**6, 10**6).map(lambda i: Literal(str(i), XSD_INTEGER)),
    st.booleans().map(lambda b: Literal("true" if b else "false", XSD_BOOLEAN)),
)
subject_strategy = st.one_of(iri_strategy, blank_strategy)
object_strategy = st.one_of(iri_strategy, blank_strategy, literal_strategy)
triple_strategy = st.builds(Triple, subject_strategy, iri_strategy, object_strategy)
triples_strategy = st.lists(triple_strategy, max_size=25)


class TestStoreProperties:
    @given(triples_strategy)
    @settings(max_examples=50)
    def test_add_then_remove_restores_empty(self, triples):
        store = TripleStore()
        for triple in triples:
            store.add_triple(triple)
        for triple in triples:
            store.remove_triple(triple)
        assert len(store) == 0
        assert list(store.match()) == []

    @given(triples_strategy)
    @settings(max_examples=50)
    def test_set_semantics(self, triples):
        store = TripleStore()
        for triple in triples:
            store.add_triple(triple)
            store.add_triple(triple)  # duplicate insert
        assert len(store) == len(set(triples))

    @given(triples_strategy)
    @settings(max_examples=50)
    def test_indexes_agree_with_scan(self, triples):
        store = TripleStore()
        for triple in triples:
            store.add_triple(triple)
        for triple in set(triples):
            assert triple.object in store.objects(triple.subject, triple.predicate)
            assert triple.subject in store.subjects(triple.predicate, triple.object)
            assert triple.predicate in store.predicates(triple.subject, triple.object)

    @given(triples_strategy)
    @settings(max_examples=30)
    def test_ntriples_roundtrip(self, triples):
        store = TripleStore()
        for triple in triples:
            store.add_triple(triple)
        restored = from_ntriples(to_ntriples(store))
        assert restored.snapshot() == store.snapshot()

    @given(triples_strategy)
    @settings(max_examples=30)
    def test_serialization_canonical(self, triples):
        """Same contents → byte-identical serialization, insertion order
        notwithstanding."""
        store_a = TripleStore()
        for triple in triples:
            store_a.add_triple(triple)
        store_b = TripleStore()
        for triple in reversed(triples):
            store_b.add_triple(triple)
        assert to_ntriples(store_a) == to_ntriples(store_b)
