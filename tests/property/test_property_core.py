"""Property-based tests for the core model and matching machinery."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Correspondence,
    ElementKind,
    MappingMatrix,
    SchemaElement,
    SchemaGraph,
    VoterScore,
    clamp_confidence,
    top_correspondences,
)
from repro.harmony import VoteMerger, directional_flooding
from repro.instances import link_records, LinkageConfig

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
confidences = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)


class TestConfidenceProperties:
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_clamp_always_legal(self, value):
        assert -1.0 <= clamp_confidence(value) <= 1.0

    @given(confidences)
    def test_suggest_keeps_value(self, confidence):
        link = Correspondence("a", "b")
        link.suggest(confidence)
        assert link.confidence == confidence

    @given(confidences)
    def test_decided_links_immune_to_suggestions(self, confidence):
        link = Correspondence("a", "b").accept()
        link.suggest(confidence)
        assert link.confidence == 1.0


class TestMergerProperties:
    @given(st.lists(
        st.tuples(names, confidences), min_size=1, max_size=8,
    ))
    def test_merged_within_extremes(self, votes):
        """The merged score is a weighted mean: it stays within the span of
        the non-abstaining votes (clamped to the machine range)."""
        merger = VoteMerger()
        scores = [VoterScore(f"v{i}", "a", "b", s) for i, (_, s) in enumerate(votes)]
        merged = merger.merge_pair(scores)
        non_zero = [v.score for v in scores if v.score != 0.0]
        if not non_zero:
            assert merged == 0.0
        else:
            # the span of the votes, each clamped into the machine range
            def clamp(value):
                return max(-0.99, min(0.99, value))

            lo, hi = clamp(min(non_zero)), clamp(max(non_zero))
            assert lo - 1e-9 <= merged <= hi + 1e-9

    @given(st.lists(st.tuples(names, confidences), max_size=8))
    def test_merge_order_invariant(self, votes):
        merger = VoteMerger()
        scores = [VoterScore(f"v{i}", "a", "b", s) for i, (_, s) in enumerate(votes)]
        forward = merger.merge_pair(scores)
        backward = merger.merge_pair(list(reversed(scores)))
        assert abs(forward - backward) < 1e-9  # FP summation order only


class TestTopCorrespondenceProperties:
    @given(st.lists(st.tuples(names, names, confidences), max_size=20))
    def test_top_is_subset_with_max_per_source(self, raw):
        deduped = {(s, t): c for s, t, c in raw}
        links = [Correspondence(s, t, confidence=c) for (s, t), c in deduped.items()]
        top = top_correspondences(links, per_source=True)
        best = {}
        for link in links:
            best[link.source_id] = max(best.get(link.source_id, -2.0), link.confidence)
        for link in top:
            assert link.confidence == best[link.source_id]


class TestFloodingProperties:
    def _graphs(self):
        def build(name):
            graph = SchemaGraph.create(name)
            graph.add_child(name, SchemaElement(f"{name}/E", "E", ElementKind.ENTITY),
                            label="contains-element")
            for attr in ("p", "q"):
                graph.add_child(
                    f"{name}/E",
                    SchemaElement(f"{name}/E/{attr}", attr, ElementKind.ATTRIBUTE))
            return graph

        return build("s"), build("t")

    @given(st.dictionaries(
        st.sampled_from([
            ("s/E", "t/E"), ("s/E/p", "t/E/p"), ("s/E/p", "t/E/q"),
            ("s/E/q", "t/E/p"), ("s/E/q", "t/E/q"),
        ]),
        confidences,
        max_size=5,
    ))
    @settings(max_examples=50)
    def test_directional_flooding_stays_in_range(self, scores):
        source, target = self._graphs()
        adjusted = directional_flooding(source, target, scores)
        assert set(adjusted) == set(scores)
        for value in adjusted.values():
            assert -1.0 <= value <= 1.0


class TestMatrixProperties:
    @given(st.lists(st.tuples(names, names, confidences), max_size=20))
    def test_progress_in_unit_interval(self, cells):
        matrix = MappingMatrix()
        for source, target, confidence in cells:
            matrix.add_row(source)
            matrix.add_column(target)
            matrix.set_confidence(source, target, confidence)
        assert 0.0 <= matrix.progress() <= 1.0
        for row in matrix.row_ids:
            matrix.mark_row_complete(row)
        for column in matrix.column_ids:
            matrix.mark_column_complete(column)
        assert matrix.is_complete


class TestLinkageProperties:
    records_strategy = st.lists(
        st.fixed_dictionaries({
            "name": names,
            "city": st.sampled_from(["mclean", "vienna", "reston"]),
        }),
        max_size=12,
    )

    @given(records_strategy, st.floats(min_value=0.1, max_value=1.0))
    @settings(max_examples=40)
    def test_clusters_partition_records(self, records, threshold):
        result = link_records(records, LinkageConfig(threshold=threshold))
        flat = sorted(i for cluster in result.clusters for i in cluster)
        assert flat == list(range(len(records)))

    @given(records_strategy)
    @settings(max_examples=30)
    def test_higher_threshold_never_merges_more(self, records):
        loose = link_records(records, LinkageConfig(threshold=0.5))
        strict = link_records(records, LinkageConfig(threshold=0.95))
        assert strict.duplicates_removed <= loose.duplicates_removed
