"""Data cleaning (task 11).

*"This subtask removes erroneous values from instance elements.  A value
may be erroneous because it violates a domain constraint or because it
contradicts information from a more reliable source."*

Two cleaners, matching the paper's two error causes:

* :func:`clean_constraints` — checks records against the schema graph's
  constraints (datatype, domain membership, nullability) and nulls out or
  reports offending values;
* :func:`resolve_contradictions` — when multiple sources describe the
  same real-world object (post-linkage), values from less reliable
  sources that contradict a more reliable one are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.elements import ElementKind, SchemaElement
from ..core.graph import SchemaGraph
from .documents import Record, RecordSet, normalize_value


@dataclass
class CleaningIssue:
    record_index: int
    attribute: str
    value: Any
    reason: str

    def __str__(self) -> str:
        return f"record {self.record_index}, {self.attribute}={self.value!r}: {self.reason}"


@dataclass
class CleaningReport:
    cleaned: List[Record] = field(default_factory=list)
    issues: List[CleaningIssue] = field(default_factory=list)

    @property
    def issue_count(self) -> int:
        return len(self.issues)


def _constraints_for(graph: SchemaGraph, entity_id: str) -> Dict[str, SchemaElement]:
    return {
        child.name: child
        for child in graph.subtree(entity_id)
        if child.kind is ElementKind.ATTRIBUTE
    }


def _value_violates(graph: SchemaGraph, element: SchemaElement, value: Any) -> Optional[str]:
    if value is None:
        if not element.annotation("nullable", False):
            return "null in non-nullable attribute"
        return None
    datatype = element.datatype
    if datatype == "integer":
        if isinstance(value, bool) or not isinstance(value, int):
            try:
                int(str(value))
            except (TypeError, ValueError):
                return f"not an integer ({datatype})"
    elif datatype in ("decimal", "float"):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            try:
                float(str(value))
            except (TypeError, ValueError):
                return f"not numeric ({datatype})"
    elif datatype == "boolean":
        if not isinstance(value, bool) and str(value).lower() not in ("true", "false", "0", "1"):
            return "not boolean"
    domain = graph.domain_of(element.element_id)
    if domain is not None:
        codes = {
            c.name for c in graph.children(domain.element_id)
            if c.kind is ElementKind.DOMAIN_VALUE
        }
        if codes and str(value) not in codes:
            return f"outside domain {domain.name!r}"
    minimum = element.annotation("minimum")
    maximum = element.annotation("maximum")
    try:
        numeric = float(value)
    except (TypeError, ValueError):
        numeric = None
    if numeric is not None:
        if minimum is not None and numeric < float(minimum):
            return f"below minimum {minimum}"
        if maximum is not None and numeric > float(maximum):
            return f"above maximum {maximum}"
    return None


def clean_constraints(
    graph: SchemaGraph,
    entity_id: str,
    records: Sequence[Record],
    drop_bad_values: bool = True,
) -> CleaningReport:
    """Check records against the entity's schema constraints.

    Offending values are nulled out when *drop_bad_values* (default) —
    removal, per the paper — otherwise only reported.
    """
    constraints = _constraints_for(graph, entity_id)
    report = CleaningReport()
    for index, record in enumerate(records):
        cleaned = dict(record)
        for attribute, element in constraints.items():
            value = record.get(attribute)
            reason = _value_violates(graph, element, value)
            if reason is not None:
                report.issues.append(CleaningIssue(index, attribute, value, reason))
                if drop_bad_values and value is not None:
                    cleaned[attribute] = None
        report.cleaned.append(cleaned)
    return report


def resolve_contradictions(
    versions: Sequence[Tuple[Record, float]],
) -> Tuple[Record, List[CleaningIssue]]:
    """Fuse versions of one real-world object from differently reliable
    sources.  For each attribute, the value from the most reliable source
    wins; contradicting values from less reliable sources are reported.

    *versions* is a list of (record, reliability) pairs.
    """
    issues: List[CleaningIssue] = []
    fused: Record = {}
    authority: Dict[str, float] = {}
    ordered = sorted(enumerate(versions), key=lambda iv: -iv[1][1])
    for original_index, (record, reliability) in ordered:
        for attribute, value in record.items():
            if value is None:
                continue
            if attribute not in fused:
                fused[attribute] = value
                authority[attribute] = reliability
            elif normalize_value(fused[attribute]) != normalize_value(value):
                issues.append(
                    CleaningIssue(
                        original_index, attribute, value,
                        f"contradicts more reliable value {fused[attribute]!r} "
                        f"(reliability {authority[attribute]:.2f} > {reliability:.2f})",
                    )
                )
    return fused, issues


def clean_record_sets(
    graph: SchemaGraph,
    entity_id: str,
    sets: Sequence[RecordSet],
    key: str,
) -> CleaningReport:
    """Full task-11 pass over multiple sources describing one entity:
    constraint cleaning per source, then contradiction resolution across
    sources keyed by *key*."""
    report = CleaningReport()
    by_key: Dict[Any, List[Tuple[Record, float]]] = {}
    offset = 0
    for record_set in sets:
        constraint_report = clean_constraints(graph, entity_id, record_set.records)
        for issue in constraint_report.issues:
            report.issues.append(
                CleaningIssue(
                    issue.record_index + offset, issue.attribute, issue.value,
                    f"[{record_set.source or record_set.entity}] {issue.reason}",
                )
            )
        for record in constraint_report.cleaned:
            key_value = record.get(key)
            by_key.setdefault(key_value, []).append((record, record_set.reliability))
        offset += len(record_set.records)
    for key_value in sorted(by_key, key=lambda v: str(v)):
        fused, issues = resolve_contradictions(by_key[key_value])
        report.cleaned.append(fused)
        report.issues.extend(issues)
    return report
