"""Record linkage (task 10).

*"Two instance elements (with different unique identifiers) may represent
the same real-world object.  This subtask merges these elements into a
single element."*

Classic pipeline: blocking (cheap candidate pruning on a blocking key) →
pairwise similarity scoring over shared attributes → threshold decision →
transitive-closure clustering → merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from ..text import kernels, similarity
from .documents import Record, RecordSet, normalize_value


@dataclass
class LinkageConfig:
    """Knobs for the linkage pipeline."""

    #: attribute used for blocking; None disables blocking (all pairs)
    blocking_key: Optional[str] = None
    #: first N chars of the (normalized) blocking value form the block
    blocking_prefix: int = 3
    #: per-attribute weights; unlisted attributes get weight 1
    weights: Dict[str, float] = field(default_factory=dict)
    #: pairs scoring >= threshold are links
    threshold: float = 0.8
    #: attributes to ignore entirely (identifiers, timestamps)
    exclude: Set[str] = field(default_factory=set)
    #: score string fields through the memoized ``repro.text.kernels`` —
    #: field values (cities, status codes, names) recur across records,
    #: so the token cache pays off; differentially proven identical to
    #: the reference measures, hence on by default
    use_kernels: bool = True


def field_similarity(a: Any, b: Any, use_kernels: bool = False) -> float:
    """Similarity of two field values in [0,1]."""
    if a is None or b is None:
        return 0.0
    a_n, b_n = normalize_value(a), normalize_value(b)
    if a_n == b_n:
        return 1.0
    if isinstance(a_n, str) and isinstance(b_n, str):
        measures = kernels if use_kernels else similarity
        return max(
            measures.jaro_winkler_similarity(a_n, b_n),
            measures.edit_similarity(a_n, b_n),
        )
    try:
        fa, fb = float(a_n), float(b_n)
    except (TypeError, ValueError):
        return 0.0
    if fa == fb:
        return 1.0
    denom = max(abs(fa), abs(fb))
    if denom == 0:
        return 1.0
    return max(0.0, 1.0 - abs(fa - fb) / denom)


def record_similarity(
    a: Record, b: Record, config: Optional[LinkageConfig] = None
) -> float:
    """Weighted mean field similarity over the attributes both records carry."""
    config = config or LinkageConfig()
    total = 0.0
    weight_sum = 0.0
    for key in set(a) & set(b):
        if key in config.exclude:
            continue
        if a.get(key) is None and b.get(key) is None:
            continue
        weight = config.weights.get(key, 1.0)
        total += weight * field_similarity(
            a.get(key), b.get(key), use_kernels=config.use_kernels
        )
        weight_sum += weight
    if weight_sum == 0.0:
        return 0.0
    return total / weight_sum


def _blocks(records: Sequence[Record], config: LinkageConfig) -> List[List[int]]:
    if config.blocking_key is None:
        return [list(range(len(records)))]
    buckets: Dict[str, List[int]] = {}
    for index, record in enumerate(records):
        value = normalize_value(record.get(config.blocking_key))
        key = str(value)[: config.blocking_prefix] if value is not None else ""
        buckets.setdefault(key, []).append(index)
    return list(buckets.values())


@dataclass
class LinkageResult:
    """Clusters of record indexes plus the merged records."""

    clusters: List[List[int]]
    merged: List[Record]
    pairs_compared: int
    links_found: int

    @property
    def duplicates_removed(self) -> int:
        return sum(len(c) - 1 for c in self.clusters)


class _UnionFind:
    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, x: int) -> int:
        while self._parent[x] != x:
            self._parent[x] = self._parent[self._parent[x]]
            x = self._parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[max(ra, rb)] = min(ra, rb)


def merge_records(cluster: Sequence[Record], reliabilities: Optional[Sequence[float]] = None) -> Record:
    """Merge a cluster into one record: non-null wins; conflicts resolved
    by reliability (or first-seen when reliabilities tie/absent)."""
    merged: Record = {}
    best_reliability: Dict[str, float] = {}
    for index, record in enumerate(cluster):
        reliability = reliabilities[index] if reliabilities else 0.5
        for key, value in record.items():
            if value is None:
                continue
            if key not in merged or reliability > best_reliability.get(key, -1.0):
                if key not in merged or reliability > best_reliability[key]:
                    merged[key] = value
                    best_reliability[key] = reliability
    return merged


def link_records(
    records: Sequence[Record],
    config: Optional[LinkageConfig] = None,
    reliabilities: Optional[Sequence[float]] = None,
) -> LinkageResult:
    """Run the full linkage pipeline on one record list."""
    config = config or LinkageConfig()
    uf = _UnionFind(len(records))
    compared = 0
    links = 0
    for block in _blocks(records, config):
        for i in range(len(block)):
            for j in range(i + 1, len(block)):
                a, b = block[i], block[j]
                compared += 1
                if record_similarity(records[a], records[b], config) >= config.threshold:
                    uf.union(a, b)
                    links += 1
    clusters_by_root: Dict[int, List[int]] = {}
    for index in range(len(records)):
        clusters_by_root.setdefault(uf.find(index), []).append(index)
    clusters = sorted(clusters_by_root.values(), key=lambda c: c[0])
    merged = [
        merge_records(
            [records[i] for i in cluster],
            [reliabilities[i] for i in cluster] if reliabilities else None,
        )
        for cluster in clusters
    ]
    return LinkageResult(
        clusters=clusters, merged=merged, pairs_compared=compared, links_found=links
    )


def link_record_sets(
    sets: Sequence[RecordSet], config: Optional[LinkageConfig] = None
) -> LinkageResult:
    """Link across several sources, using each set's reliability."""
    records: List[Record] = []
    reliabilities: List[float] = []
    for record_set in sets:
        for record in record_set:
            records.append(record)
            reliabilities.append(record_set.reliability)
    return link_records(records, config=config, reliabilities=reliabilities)
