"""Instance integration: tasks 10 (record linkage) and 11 (data cleaning)."""

from .cleaning import (
    CleaningIssue,
    CleaningReport,
    clean_constraints,
    clean_record_sets,
    resolve_contradictions,
)
from .documents import (
    Record,
    RecordSet,
    flatten_document,
    normalize_record,
    normalize_value,
    sample_values,
)
from .linkage import (
    LinkageConfig,
    LinkageResult,
    field_similarity,
    link_record_sets,
    link_records,
    merge_records,
    record_similarity,
)

__all__ = [
    "CleaningIssue",
    "CleaningReport",
    "LinkageConfig",
    "LinkageResult",
    "Record",
    "RecordSet",
    "clean_constraints",
    "clean_record_sets",
    "field_similarity",
    "flatten_document",
    "link_record_sets",
    "link_records",
    "merge_records",
    "normalize_record",
    "normalize_value",
    "record_similarity",
    "resolve_contradictions",
    "sample_values",
]
