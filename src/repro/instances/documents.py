"""The instance document model.

Instances are plain data: a *record* is a dict, a *record set* a list of
dicts.  This module adds the small amount of structure instance
integration needs on top — typed record sets bound to a schema entity,
value normalization, and flattening of nested documents (the shape the
executable code generator emits).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence

from ..core.elements import ElementKind
from ..core.graph import SchemaGraph

Record = Dict[str, Any]


@dataclass
class RecordSet:
    """Records belonging to one (source) entity, with provenance.

    *reliability* ∈ [0,1] ranks the source for contradiction resolution
    (task 11: a value is erroneous when *"it contradicts information from
    a more reliable source"*).
    """

    entity: str
    records: List[Record] = field(default_factory=list)
    source: str = ""
    reliability: float = 0.5

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def append(self, record: Record) -> None:
        self.records.append(dict(record))

    def attributes(self) -> List[str]:
        """All attribute names appearing in any record."""
        names: Dict[str, None] = {}
        for record in self.records:
            for key in record:
                names.setdefault(key, None)
        return list(names)

    def project(self, attributes: Sequence[str]) -> "RecordSet":
        return RecordSet(
            entity=self.entity,
            records=[{a: r.get(a) for a in attributes} for r in self.records],
            source=self.source,
            reliability=self.reliability,
        )


_WHITESPACE = re.compile(r"\s+")


def normalize_value(value: Any) -> Any:
    """Canonical comparison form: trimmed, case-folded, squashed whitespace
    for strings; everything else unchanged."""
    if isinstance(value, str):
        return _WHITESPACE.sub(" ", value.strip()).lower()
    return value


def normalize_record(record: Mapping[str, Any]) -> Record:
    return {key: normalize_value(value) for key, value in record.items()}


def flatten_document(document: Mapping[str, Any], separator: str = ".") -> Record:
    """Flatten a nested document into dotted-path keys.

    >>> flatten_document({"name": {"first": "Ada"}})
    {'name.first': 'Ada'}
    """
    flat: Record = {}

    def visit(node: Mapping[str, Any], prefix: str) -> None:
        for key, value in node.items():
            path = f"{prefix}{separator}{key}" if prefix else key
            if isinstance(value, Mapping):
                visit(value, path)
            else:
                flat[path] = value

    visit(document, "")
    return flat


def sample_values(
    graph: SchemaGraph,
    records: Mapping[str, Sequence[Mapping[str, Any]]],
    limit: int = 25,
) -> int:
    """Attach instance samples to a schema graph's attributes.

    *records* maps entity element ids to record lists; each attribute
    element below an entity receives up to *limit* distinct values in its
    ``instance_values`` annotation (feeding the instance match voter).
    Returns how many attributes were annotated.
    """
    annotated = 0
    for entity_id, rows in records.items():
        if entity_id not in graph:
            continue
        for child in graph.subtree(entity_id):
            if child.kind is not ElementKind.ATTRIBUTE:
                continue
            values: List[str] = []
            seen = set()
            for row in rows:
                value = row.get(child.name)
                if value is None:
                    continue
                text = str(value)
                if text not in seen:
                    seen.add(text)
                    values.append(text)
                if len(values) >= limit:
                    break
            if values:
                child.annotate("instance_values", values)
                annotated += 1
    return annotated
