"""A thin length-prefixed TCP transport over the JSON gateway.

Framing: 4-byte big-endian payload length, then that many bytes of
UTF-8 JSON.  One request frame in, one response frame out, any number
of exchanges per connection.  Everything above the socket is
:func:`repro.serving.client.handle_request` — the TCP layer adds no
semantics of its own, which is the point of the transport seam.

The listener is stdlib ``asyncio`` (``asyncio.start_server``) running
on a dedicated daemon thread, so synchronous callers can host it
without owning an event loop; gateway calls that block (``result``)
run in the loop's default executor to keep the loop responsive.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from typing import Any, Dict, Optional, Tuple

from .client import handle_request
from .jobs import ServingError
from .server import WorkbenchServer

_HEADER = struct.Struct(">I")
#: refuse frames above this size (a corrupt header otherwise allocates GBs)
MAX_FRAME_BYTES = 64 * 1024 * 1024


def _encode(message: Dict[str, Any]) -> bytes:
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(payload)) + payload


async def _read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError:
        return None  # clean EOF between frames
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ServingError(f"frame of {length} bytes exceeds the limit")
    payload = await reader.readexactly(length)
    return json.loads(payload.decode("utf-8"))


class TcpWorkbenchServer:
    """The TCP listener around one :class:`WorkbenchServer`."""

    def __init__(self, server: WorkbenchServer,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._thread = threading.Thread(
            target=self._run, args=(host, port),
            name="workbench-tcp", daemon=True)
        self._thread.start()
        self._started.wait()

    def _run(self, host: str, port: int) -> None:
        asyncio.set_event_loop(self._loop)

        async def start() -> None:
            self._asyncio_server = await asyncio.start_server(
                self._handle_connection, host, port)
            self._address = self._asyncio_server.sockets[0].getsockname()[:2]
            self._started.set()

        self._loop.run_until_complete(start())
        try:
            self._loop.run_forever()
        finally:
            # drain connection tasks before closing the loop, so their
            # transports see connection_lost instead of a dead loop
            tasks = asyncio.all_tasks(self._loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True))
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_event_loop()
        try:
            while True:
                request = await _read_frame(reader)
                if request is None:
                    break
                # handle_request can block (op=result waits on a job
                # future): keep it off the event loop
                response = await loop.run_in_executor(
                    None, handle_request, self.server, request)
                writer.write(_encode(response))
                await writer.drain()
        except (ConnectionError, ServingError, json.JSONDecodeError):
            pass  # a broken peer takes down its connection, nothing else
        except asyncio.CancelledError:
            pass  # listener shutdown: finish cleanly so the task is not
            # left "cancelled" (asyncio's streams callback would log it)
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass  # loop already torn down

    @property
    def address(self) -> Tuple[str, int]:
        assert self._address is not None
        return self._address

    def close(self) -> None:
        """Stop the listener (idempotent); the workbench server itself
        is left to its owner."""
        if not self._loop.is_closed():
            def _shutdown() -> None:
                if self._asyncio_server is not None:
                    self._asyncio_server.close()
                self._loop.stop()

            self._loop.call_soon_threadsafe(_shutdown)
            self._thread.join(timeout=5.0)


def serve_tcp(server: WorkbenchServer, host: str = "127.0.0.1",
              port: int = 0) -> TcpWorkbenchServer:
    """Expose a workbench server over TCP; ``port=0`` picks a free one."""
    return TcpWorkbenchServer(server, host=host, port=port)


class TcpWorkbenchClient:
    """A blocking socket client for the TCP transport."""

    def __init__(self, host: str, port: int,
                 timeout: Optional[float] = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._sock.sendall(_encode(message))
        header = self._recv_exact(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise ServingError(f"frame of {length} bytes exceeds the limit")
        return json.loads(self._recv_exact(length).decode("utf-8"))

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # thin convenience wrappers over the gateway ops

    def create_session(self, session: str) -> Dict[str, Any]:
        return self.request({"op": "create_session", "session": session})

    def submit(self, session: str, kind: str,
               priority: Optional[int] = None,
               **params: Any) -> Dict[str, Any]:
        return self.request({"op": "submit", "session": session,
                             "kind": kind, "priority": priority,
                             "params": params})

    def result(self, job_id: str,
               timeout: float = 30.0) -> Dict[str, Any]:
        return self.request({"op": "result", "job_id": job_id,
                             "timeout": timeout})

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "cancel", "job_id": job_id})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpWorkbenchClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
