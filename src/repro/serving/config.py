"""Serving-layer configuration.

Every knob the workbench server exposes lives on :class:`ServingConfig`,
mirroring the discipline :class:`~repro.harmony.engine.EngineConfig`
established for the match fast path: one dataclass, conservative
defaults, and CI-enforced documentation (``scripts/check_doc_flags.py``
fails the build if any field here is missing from the doc suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ToolError


@dataclass
class ServingConfig:
    """Knobs for :class:`~repro.serving.server.WorkbenchServer`.

    The defaults describe a small in-memory deployment: two worker
    threads, a bounded queue, fair round-robin across sessions, no
    durability.  Every field is documented in ``docs/SERVING.md`` (and
    summarized in the README serving table); ``check_doc_flags.py``
    enforces that coverage in CI.
    """

    #: worker count — dispatcher threads, and (in process mode) the
    #: process-pool size backing them
    workers: int = 2
    #: where match compute runs: ``"thread"`` (in the worker thread, on
    #: a warm per-session engine) or ``"process"`` (a ProcessPoolExecutor
    #: of warm per-process matchers, the PR-6 N-way pattern)
    executor: str = "thread"
    #: bounded-queue capacity; a submit beyond it is rejected with
    #: ``retry_after_s`` instead of growing without bound
    queue_limit: int = 256
    #: the retry hint attached to a backpressure rejection
    retry_after_s: float = 0.05
    #: round-robin across sessions with queued work (True) or strict
    #: global (priority, arrival) order (False)
    fair_scheduling: bool = True
    #: priority given to jobs submitted without one (lower runs first)
    default_priority: int = 0
    #: cap on concurrently open sessions (None = unbounded)
    max_sessions: Optional[int] = None
    #: directory under which each session gets a durable blackboard
    #: (``<durable_root>/<session>``); None = in-memory sessions
    durable_root: Optional[str] = None
    #: fsync policy for durable sessions ("always" / "commit" / "never"),
    #: passed through to :class:`~repro.rdf.durability.DurableStore`
    fsync: str = "commit"
    #: engine configuration for match/rematch jobs (None = the
    #: ``EngineConfig.fast()`` preset)
    engine_config: Optional[object] = None
    #: graceful-shutdown budget: how long ``close(drain=True)`` waits for
    #: queued + in-flight jobs to finish before cancelling the remainder
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ToolError("ServingConfig.workers must be >= 1")
        if self.executor not in ("thread", "process"):
            raise ToolError(
                f"ServingConfig.executor must be 'thread' or 'process', "
                f"got {self.executor!r}")
        if self.queue_limit < 1:
            raise ToolError("ServingConfig.queue_limit must be >= 1")
        if self.retry_after_s < 0:
            raise ToolError("ServingConfig.retry_after_s must be >= 0")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ToolError("ServingConfig.max_sessions must be >= 1")
        if self.fsync not in ("always", "commit", "never"):
            raise ToolError(
                f"ServingConfig.fsync must be 'always', 'commit' or "
                f"'never', got {self.fsync!r}")
        if self.drain_timeout_s < 0:
            raise ToolError("ServingConfig.drain_timeout_s must be >= 0")

    def resolved_engine_config(self):
        """The engine configuration match jobs actually run under."""
        if self.engine_config is not None:
            return self.engine_config
        from ..harmony.engine import EngineConfig

        return EngineConfig.fast()
