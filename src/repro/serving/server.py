"""The workbench server: sessions + queue + worker pool.

Request flow (traced in ``docs/ARCHITECTURE.md``)::

    client.submit() --> JobQueue (bounded, session-fair)
                          |
                    worker thread pops, session lock serializes the
                    session, compute runs on the warm engine (thread
                    mode) or a warm process-pool worker (process mode)
                          |
                    write-back: one transaction on the session's
                    blackboard + the §5.2.2 event, then the job's
                    future resolves

Every job resolves its future exactly once (DONE / FAILED / CANCELLED);
``stats()`` exposes the conservation law the CI smoke load asserts:
``submitted == completed + failed + cancelled + pending``.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Optional

from ..core.matrix import MappingMatrix
from ..workbench import queries as canned
from ..workbench.events import (
    MappingCellEvent,
    MappingMatrixEvent,
    SchemaGraphEvent,
)
from ..workbench.evolution import apply_evolution
from ..workbench.versioning import diff_schemas
from .config import ServingConfig
from .jobs import (
    Job,
    JobCancelledError,
    JobHandle,
    QueueFullError,
    ServerClosedError,
    ServingError,
)
from .queue import JobQueue
from .sessions import SessionRegistry, WorkbenchSession
from .workers import init_serving_worker, match_in_worker

#: the canned queries the "query" job kind dispatches to (all take the
#: session's triple store as their first argument and return JSON-able
#: results, so they pass through the gateway unchanged)
QUERY_FUNCS: Dict[str, Callable] = {
    "strong_cells": canned.strong_cells,
    "user_decided_cells": canned.user_decided_cells,
    "undocumented_elements": canned.undocumented_elements,
    "elements_of_kind": canned.elements_of_kind,
    "matrix_progress": canned.matrix_progress,
}

_SERVING_TOOL = "serving"


class WorkbenchServer:
    """A concurrent, multi-session workbench."""

    def __init__(self, config: Optional[ServingConfig] = None) -> None:
        self.config = config if config is not None else ServingConfig()
        self.sessions = SessionRegistry(self.config)
        self.queue = JobQueue(
            self.config.queue_limit,
            retry_after_s=self.config.retry_after_s,
            fair=self.config.fair_scheduling,
        )
        self._seq = itertools.count()
        self._closed = False
        self._close_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters = {
            "submitted": 0, "rejected": 0, "completed": 0,
            "failed": 0, "cancelled": 0,
        }
        #: gateway-submitted jobs retained by id until fetched
        self._retained: Dict[str, Job] = {}
        self._retained_lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._handlers: Dict[str, Callable[[WorkbenchSession, Job], Any]] = {
            "put_schema": self._do_put_schema,
            "load_schema": self._do_load_schema,
            "match": self._do_match,
            "evolve": self._do_evolve,
            "query": self._do_query,
            "update_cell": self._do_update_cell,
            "get_matrix": self._do_get_matrix,
            "cell": self._do_cell,
            "ping": self._do_ping,
        }
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"workbench-worker-{i}",
                daemon=True)
            for i in range(self.config.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        session: str,
        kind: str,
        priority: Optional[int] = None,
        retain: bool = False,
        **params: Any,
    ) -> JobHandle:
        """Queue one job against a session (created on first use).

        Raises :class:`~repro.serving.jobs.QueueFullError` (with
        ``retry_after_s``) when the bounded queue is full, and
        :class:`~repro.serving.jobs.ServerClosedError` after
        :meth:`close`.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        if kind not in self._handlers:
            raise ServingError(
                f"unknown job kind {kind!r}; one of "
                f"{sorted(self._handlers)}")
        self.sessions.get_or_create(session)
        job = Job(
            session=session,
            kind=kind,
            params=params,
            priority=(priority if priority is not None
                      else self.config.default_priority),
            seq=next(self._seq),
        )
        # every job resolves its future exactly once; counting there (and
        # only there) makes the conservation law exact:
        # submitted == completed + failed + cancelled + pending
        job.future.add_done_callback(self._on_job_done)
        try:
            self.queue.push(job)
        except QueueFullError:
            self._count("rejected")
            raise
        self._count("submitted")
        if retain:
            with self._retained_lock:
                self._retained[job.job_id] = job
        return JobHandle(job, self)

    # convenience wrappers — one per job kind

    def put_schema(self, session: str, graph, **kw) -> JobHandle:
        return self.submit(session, "put_schema", graph=graph, **kw)

    def load_schema(self, session: str, text: str, format: str,
                    schema_name: Optional[str] = None, **kw) -> JobHandle:
        return self.submit(session, "load_schema", text=text, format=format,
                           schema_name=schema_name, **kw)

    def match(self, session: str, source_schema: str, target_schema: str,
              matrix_name: Optional[str] = None, **kw) -> JobHandle:
        return self.submit(session, "match", source_schema=source_schema,
                           target_schema=target_schema,
                           matrix_name=matrix_name, **kw)

    def evolve(self, session: str, new_graph, matrix_name: str,
               side: str = "source", other_schema: Optional[str] = None,
               **kw) -> JobHandle:
        return self.submit(session, "evolve", new_graph=new_graph,
                           matrix_name=matrix_name, side=side,
                           other_schema=other_schema, **kw)

    def query(self, session: str, name: str, **kw) -> JobHandle:
        params = {k: kw.pop(k) for k in list(kw)
                  if k not in ("priority", "retain")}
        return self.submit(session, "query", name=name, params=params, **kw)

    def update_cell(self, session: str, matrix_name: str, source_id: str,
                    target_id: str, confidence: float,
                    user_defined: bool = False, **kw) -> JobHandle:
        return self.submit(session, "update_cell", matrix_name=matrix_name,
                           source_id=source_id, target_id=target_id,
                           confidence=confidence, user_defined=user_defined,
                           **kw)

    def get_matrix(self, session: str, matrix_name: str, **kw) -> JobHandle:
        return self.submit(session, "get_matrix", matrix_name=matrix_name,
                           **kw)

    def ping(self, session: str, delay_s: float = 0.0, **kw) -> JobHandle:
        return self.submit(session, "ping", delay_s=delay_s, **kw)

    # -- job registry (gateway transports poll by id) -------------------------

    def job(self, job_id: str) -> Job:
        with self._retained_lock:
            job = self._retained.get(job_id)
        if job is None:
            raise ServingError(f"no retained job {job_id!r}")
        return job

    def forget(self, job_id: str) -> None:
        with self._retained_lock:
            self._retained.pop(job_id, None)

    # -- execution ------------------------------------------------------------

    def _count(self, key: str, by: int = 1) -> None:
        with self._counter_lock:
            self._counters[key] += by

    def _on_job_done(self, future) -> None:
        error = future.exception()
        if error is None:
            self._count("completed")
        elif isinstance(error, JobCancelledError):
            self._count("cancelled")
        else:
            self._count("failed")

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                return  # queue closed and drained
            if not job.start():
                # cancelled between push and pop (rare race; usually the
                # queue discards cancelled entries itself, and cancel()
                # already resolved the future)
                continue
            try:
                result = self._execute(job)
            except JobCancelledError:
                job.cancel()
                job.finish_cancelled()
                continue
            except BaseException as error:  # noqa: BLE001 — job isolation
                if not job.fail(error):
                    job.finish_cancelled()
                continue
            if not job.resolve(result):
                # cancel() won the race mid-run; the write-back already
                # checked the flag, so effects were skipped
                job.finish_cancelled()

    def _execute(self, job: Job) -> Any:
        session = self.sessions.get(job.session)
        handler = self._handlers[job.kind]
        with session.lock:
            if session.closed:
                raise ServingError(f"session {job.session!r} is closed")
            if job.cancel_event.is_set():
                raise JobCancelledError(f"{job.job_id} cancelled")
            return handler(session, job)

    def _check_cancel(self, job: Job) -> None:
        if job.cancel_event.is_set():
            raise JobCancelledError(
                f"{job.job_id} cancelled mid-flight; write-back skipped")

    # per-kind handlers (session lock held)

    def _store_graph(self, session: WorkbenchSession, job: Job, graph) -> str:
        self._check_cancel(job)
        with session.manager.transaction():
            session.manager.blackboard.put_schema(graph)
            session.manager.events.publish(SchemaGraphEvent(
                source_tool=_SERVING_TOOL, schema_name=graph.name))
        session.graphs[graph.name] = graph
        return graph.name

    def _do_put_schema(self, session: WorkbenchSession, job: Job) -> str:
        return self._store_graph(session, job, job.params["graph"])

    def _do_load_schema(self, session: WorkbenchSession, job: Job) -> str:
        from ..loaders import load_sql, load_xsd

        loaders = {"sql": load_sql, "xsd": load_xsd}
        format_name = job.params["format"]
        if format_name not in loaders:
            raise ServingError(
                f"unknown schema format {format_name!r}; one of "
                f"{sorted(loaders)}")
        graph = loaders[format_name](
            job.params["text"], job.params.get("schema_name"))
        return self._store_graph(session, job, graph)

    def _match_compute(
        self, session: WorkbenchSession, job: Job,
        source, target, matrix: MappingMatrix,
    ) -> MappingMatrix:
        """Compute + write-back shared by match and evolve jobs."""
        if self.config.executor == "process":
            matrix = self._pool_executor().submit(
                match_in_worker, source, target, matrix).result()
        else:
            session.engine().match(source, target, matrix=matrix)
        self._check_cancel(job)
        engine_config = self.config.resolved_engine_config()
        blackboard = session.manager.blackboard
        with session.manager.transaction():
            blackboard.put_matrix(
                matrix,
                delta=getattr(engine_config, "delta_matrix_rdf", False))
            session.manager.events.publish(MappingMatrixEvent(
                source_tool=_SERVING_TOOL, matrix_name=matrix.name,
                cells_updated=matrix.cell_count()))
        return matrix

    def _do_match(self, session: WorkbenchSession, job: Job) -> MappingMatrix:
        source = session.get_graph(job.params["source_schema"])
        target = session.get_graph(job.params["target_schema"])
        matrix_name = (job.params.get("matrix_name")
                       or f"{source.name}->{target.name}")
        blackboard = session.manager.blackboard
        if blackboard.has_matrix(matrix_name):
            matrix = blackboard.get_matrix(matrix_name)
        else:
            matrix = MappingMatrix.from_schemas(source, target)
        matrix.name = matrix_name
        return self._match_compute(session, job, source, target, matrix)

    def _do_evolve(self, session: WorkbenchSession, job: Job):
        new_graph = job.params["new_graph"]
        matrix_name = job.params["matrix_name"]
        side = job.params.get("side", "source")
        other_schema = job.params.get("other_schema")
        old_graph = session.get_graph(new_graph.name)
        diff = diff_schemas(old_graph, new_graph)
        blackboard = session.manager.blackboard
        matrix = blackboard.get_matrix(matrix_name)
        matrix.name = matrix_name
        report = apply_evolution(
            matrix, diff, side=side, schema_name=new_graph.name)
        engine_config = self.config.resolved_engine_config()
        self._check_cancel(job)
        with session.manager.transaction():
            blackboard.put_schema(
                new_graph,
                delta=getattr(engine_config, "delta_schema_rdf", False),
                previous=old_graph)
            blackboard.put_matrix(matrix)
            session.manager.events.publish(SchemaGraphEvent(
                source_tool=_SERVING_TOOL, schema_name=new_graph.name))
        session.graphs[new_graph.name] = new_graph
        if report.needs_rematch and other_schema is not None:
            if side == "source":
                source, target = new_graph, session.get_graph(other_schema)
            else:
                source, target = session.get_graph(other_schema), new_graph
            self._match_compute(session, job, source, target, matrix)
        return report

    def _do_query(self, session: WorkbenchSession, job: Job):
        name = job.params["name"]
        if name not in QUERY_FUNCS:
            raise ServingError(
                f"unknown canned query {name!r}; one of "
                f"{sorted(QUERY_FUNCS)}")
        store = session.manager.blackboard.store
        return QUERY_FUNCS[name](store, **job.params.get("params", {}))

    def _do_update_cell(self, session: WorkbenchSession, job: Job):
        params = job.params
        self._check_cancel(job)
        with session.manager.transaction():
            cell = session.manager.blackboard.update_cell(
                params["matrix_name"], params["source_id"],
                params["target_id"], params["confidence"],
                user_defined=params.get("user_defined", False))
            session.manager.events.publish(MappingCellEvent(
                source_tool=_SERVING_TOOL,
                matrix_name=params["matrix_name"],
                source_id=cell.source_id, target_id=cell.target_id,
                confidence=cell.confidence,
                user_defined=cell.is_user_defined))
        return (cell.confidence, cell.is_user_defined)

    def _do_get_matrix(self, session: WorkbenchSession, job: Job):
        return session.manager.blackboard.get_matrix(
            job.params["matrix_name"])

    def _do_cell(self, session: WorkbenchSession, job: Job):
        return session.manager.blackboard.cell_confidence(
            job.params["matrix_name"], job.params["source_id"],
            job.params["target_id"])

    def _do_ping(self, session: WorkbenchSession, job: Job) -> str:
        delay = float(job.params.get("delay_s", 0.0))
        deadline = time.monotonic() + delay
        while delay > 0 and time.monotonic() < deadline:
            if job.cancel_event.is_set():
                raise JobCancelledError(f"{job.job_id} cancelled mid-ping")
            time.sleep(min(0.005, max(0.0, deadline - time.monotonic())))
        return "pong"

    def _pool_executor(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.config.workers,
                    initializer=init_serving_worker,
                    initargs=(self.config.resolved_engine_config(),),
                )
            return self._pool

    # -- observability --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._counter_lock:
            counters = dict(self._counters)
        counters["pending"] = self.queue.pending()
        counters["sessions"] = self.sessions.names()
        counters["workers"] = self.config.workers
        counters["executor"] = self.config.executor
        return counters

    # -- shutdown -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Graceful, idempotent shutdown.

        With ``drain=True`` (the default) queued and in-flight jobs run
        to completion (bounded by ``drain_timeout_s`` / *timeout*);
        with ``drain=False`` queued jobs are cancelled and only
        in-flight jobs finish.  Either way every unfinished job's
        future resolves (with :class:`JobCancelledError` when shed), no
        result is silently dropped, and sessions release their durable
        layers last.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        budget = (self.config.drain_timeout_s
                  if timeout is None else timeout)
        self.queue.close()
        if not drain:
            self.queue.cancel_pending()
        deadline = time.monotonic() + budget
        for thread in self._threads:
            remaining = max(0.0, deadline - time.monotonic())
            thread.join(timeout=remaining)
        if any(thread.is_alive() for thread in self._threads):
            # drain budget exhausted: shed what is still queued; the
            # stuck in-flight job keeps its daemon thread
            self.queue.cancel_pending()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None
        self.sessions.close_all()

    def __enter__(self) -> "WorkbenchServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"WorkbenchServer(workers={self.config.workers}, "
                f"executor={self.config.executor!r}, "
                f"sessions={self.sessions.names()}, "
                f"closed={self._closed})")
