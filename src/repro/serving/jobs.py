"""Jobs: the unit of work the serving layer schedules.

Lifecycle (documented in ``docs/SERVING.md``)::

    submit --> QUEUED --> RUNNING --> DONE
                  |           |  \\--> FAILED
                  |           \\----> CANCELLED   (result discarded)
                  \\----------------> CANCELLED   (never ran)

    submit --(queue full)--> rejected: no Job is created; the submit
    raises :class:`QueueFullError` carrying a retry-after hint.

A :class:`Job` resolves exactly once: its ``future`` (a
``concurrent.futures.Future``) gets the result on DONE, the raising
exception on FAILED, and :class:`JobCancelledError` on CANCELLED — so
``zero lost results`` is checkable by counting resolutions.
:class:`JobHandle` is the caller-facing view; it also adapts to asyncio
via ``asyncio.wrap_future(handle.future)``.
"""

from __future__ import annotations

import enum
import itertools
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.errors import ToolError


class ServingError(ToolError):
    """Base class for serving-layer errors."""


class QueueFullError(ServingError):
    """Backpressure: the bounded queue is full; retry after a delay."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"job queue is full; retry after {retry_after_s}s")
        self.retry_after_s = retry_after_s


class ServerClosedError(ServingError):
    """The server no longer accepts work."""


class SessionNotFoundError(ServingError):
    """The named session does not exist (and creation was not asked for)."""


class JobCancelledError(ServingError):
    """The job was cancelled before its effects were applied."""


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


_JOB_IDS = itertools.count(1)


@dataclass
class Job:
    """One queued/running/finished request against a session."""

    session: str
    kind: str
    params: Dict[str, Any]
    priority: int = 0
    #: arrival order within the whole server — the FIFO tiebreaker
    seq: int = 0
    job_id: str = field(default_factory=lambda: f"job-{next(_JOB_IDS)}")
    status: JobStatus = JobStatus.QUEUED
    future: Future = field(default_factory=Future)
    #: set by cancel() while RUNNING: the worker discards effects
    cancel_event: threading.Event = field(default_factory=threading.Event)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def resolve(self, result: Any) -> bool:
        with self._lock:
            if self.status.is_terminal:
                return False
            self.status = JobStatus.DONE
        self.future.set_result(result)
        return True

    def fail(self, error: BaseException) -> bool:
        with self._lock:
            if self.status.is_terminal:
                return False
            self.status = JobStatus.FAILED
        self.future.set_exception(error)
        return True

    def cancel(self) -> bool:
        """Move to CANCELLED if not already terminal.

        A QUEUED job resolves immediately (it will never run); a RUNNING
        job is flagged so the worker discards its effects and resolves
        the future itself once it notices.
        """
        with self._lock:
            if self.status.is_terminal:
                return False
            was_running = self.status is JobStatus.RUNNING
            self.status = JobStatus.CANCELLED
        self.cancel_event.set()
        if not was_running:
            self.future.set_exception(JobCancelledError(
                f"{self.job_id} cancelled before running"))
        return True

    def finish_cancelled(self) -> None:
        """Worker-side completion of a RUNNING job cancelled mid-flight."""
        if not self.future.done():
            self.future.set_exception(JobCancelledError(
                f"{self.job_id} cancelled mid-flight; effects discarded"))

    def start(self) -> bool:
        """QUEUED -> RUNNING; False if the job was cancelled meanwhile."""
        with self._lock:
            if self.status is not JobStatus.QUEUED:
                return False
            self.status = JobStatus.RUNNING
        return True


class JobHandle:
    """The caller's view of a submitted job.

    ``result()`` blocks (re-raising the job's failure or
    :class:`JobCancelledError`); ``handle.future`` is a plain
    ``concurrent.futures.Future`` usable with ``asyncio.wrap_future``
    for async callers.
    """

    def __init__(self, job: Job, server: Optional[object] = None) -> None:
        self._job = job
        self._server = server

    @property
    def job_id(self) -> str:
        return self._job.job_id

    @property
    def session(self) -> str:
        return self._job.session

    @property
    def kind(self) -> str:
        return self._job.kind

    @property
    def status(self) -> JobStatus:
        return self._job.status

    @property
    def future(self) -> Future:
        return self._job.future

    def done(self) -> bool:
        return self._job.status.is_terminal

    def result(self, timeout: Optional[float] = None) -> Any:
        return self._job.future.result(timeout=timeout)

    def cancel(self) -> bool:
        """Best-effort cancellation; True if the job will not apply
        (or did not apply) its effects."""
        return self._job.cancel()

    def __repr__(self) -> str:
        return (f"JobHandle({self.job_id}, session={self.session!r}, "
                f"kind={self.kind!r}, status={self.status.value})")
