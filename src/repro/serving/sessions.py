"""Named sessions: one isolated workbench per consumer.

Each session owns a :class:`~repro.workbench.manager.WorkbenchManager`
(and therefore its own blackboard — in-memory by default, durable under
``<durable_root>/<name>`` when the server is configured with one), a
lock serializing that session's jobs (cross-session jobs run in
parallel; within a session order is program order, which is what makes
the concurrent-vs-serial differential bit-identical), and, in thread
executor mode, the session's warm match engine.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Dict, List, Optional

from ..workbench.manager import WorkbenchManager
from .config import ServingConfig
from .jobs import ServingError, SessionNotFoundError

#: session names become directory names under durable_root
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class WorkbenchSession:
    """One named session: manager + lock + (lazily) a warm engine."""

    def __init__(self, name: str, config: ServingConfig) -> None:
        self.name = name
        self.config = config
        if config.durable_root is not None:
            directory = os.path.join(config.durable_root, name)
            self.manager = WorkbenchManager(
                durable=directory, fsync=config.fsync)
        else:
            self.manager = WorkbenchManager()
        #: serializes this session's job execution (program order)
        self.lock = threading.RLock()
        #: cached schema graphs — stable object identity across jobs, so
        #: the warm engine's MatchContext reuse (keyed on graph identity
        #: + revision) works across a session's refinement rounds
        self.graphs: Dict[str, object] = {}
        self._engine = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def engine(self):
        """The session's warm engine (thread executor mode), built lazily."""
        if self._engine is None:
            from ..harmony.engine import HarmonyEngine

            self._engine = HarmonyEngine(
                config=self.config.resolved_engine_config())
        return self._engine

    def get_graph(self, schema_name: str):
        """A schema graph by name — session cache first, blackboard second."""
        graph = self.graphs.get(schema_name)
        if graph is None:
            if not self.manager.blackboard.has_schema(schema_name):
                raise ServingError(
                    f"session {self.name!r} has no schema {schema_name!r}")
            graph = self.manager.blackboard.get_schema(schema_name)
            self.graphs[schema_name] = graph
        return graph

    def close(self) -> None:
        """Idempotent: roll back open work and release the durable layer."""
        with self.lock:
            if self._closed:
                return
            self._closed = True
            self._engine = None
            self.graphs.clear()
            self.manager.close()


class SessionRegistry:
    """The server's session table."""

    def __init__(self, config: ServingConfig) -> None:
        self._config = config
        self._lock = threading.Lock()
        self._sessions: Dict[str, WorkbenchSession] = {}

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def get(self, name: str) -> WorkbenchSession:
        with self._lock:
            session = self._sessions.get(name)
        if session is None or session.closed:
            raise SessionNotFoundError(f"no session named {name!r}")
        return session

    def get_or_create(self, name: str) -> WorkbenchSession:
        if not _NAME_RE.match(name):
            raise ServingError(
                f"invalid session name {name!r} (letters, digits, '._-', "
                f"max 64 chars)")
        with self._lock:
            session = self._sessions.get(name)
            if session is not None and not session.closed:
                return session
            limit = self._config.max_sessions
            live = sum(1 for s in self._sessions.values() if not s.closed)
            if limit is not None and live >= limit:
                raise ServingError(
                    f"session limit reached ({limit}); close one first")
            session = WorkbenchSession(name, self._config)
            self._sessions[name] = session
            return session

    def close_session(self, name: str) -> None:
        with self._lock:
            session = self._sessions.pop(name, None)
        if session is None:
            raise SessionNotFoundError(f"no session named {name!r}")
        session.close()

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()
