"""Client-side transports: the in-process reference client and the
JSON gateway every wire transport shares.

:class:`WorkbenchClient` is the reference transport — it talks to a
:class:`~repro.serving.server.WorkbenchServer` directly, in process,
and exposes both blocking sugar (``client.match(...)`` waits for the
result) and asyncio integration (``await client.result_async(handle)``
wraps the job future into the running event loop).

:func:`handle_request` is the transport seam: one JSON-able request
dict in, one JSON-able response dict out.  The TCP transport
(:mod:`repro.serving.tcp`) is nothing but length-prefixed frames around
this function, and any other wire protocol can reuse it the same way.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Dict, Optional

from ..core.matrix import MappingMatrix
from ..workbench.evolution import RematchReport
from .jobs import (
    JobHandle,
    QueueFullError,
    ServingError,
)
from .server import WorkbenchServer


class WorkbenchClient:
    """The in-process reference transport."""

    def __init__(self, server: WorkbenchServer) -> None:
        self.server = server

    # -- raw submission (returns handles) ------------------------------------

    def submit(self, session: str, kind: str, **params: Any) -> JobHandle:
        return self.server.submit(session, kind, **params)

    def submit_with_retry(
        self,
        session: str,
        kind: str,
        attempts: int = 8,
        **params: Any,
    ) -> JobHandle:
        """Submit, honouring backpressure: on :class:`QueueFullError`
        sleep the server's retry-after hint and try again."""
        for attempt in range(attempts):
            try:
                return self.server.submit(session, kind, **params)
            except QueueFullError as error:
                if attempt == attempts - 1:
                    raise
                time.sleep(error.retry_after_s)
        raise AssertionError("unreachable")

    # -- blocking sugar (submit + wait) ---------------------------------------

    def put_schema(self, session: str, graph,
                   timeout: Optional[float] = None) -> str:
        return self.server.put_schema(session, graph).result(timeout)

    def load_schema(self, session: str, text: str, format: str,
                    schema_name: Optional[str] = None,
                    timeout: Optional[float] = None) -> str:
        return self.server.load_schema(
            session, text, format, schema_name).result(timeout)

    def match(self, session: str, source_schema: str, target_schema: str,
              matrix_name: Optional[str] = None,
              timeout: Optional[float] = None) -> MappingMatrix:
        return self.server.match(
            session, source_schema, target_schema, matrix_name,
        ).result(timeout)

    def evolve(self, session: str, new_graph, matrix_name: str,
               side: str = "source", other_schema: Optional[str] = None,
               timeout: Optional[float] = None) -> RematchReport:
        return self.server.evolve(
            session, new_graph, matrix_name, side, other_schema,
        ).result(timeout)

    def query(self, session: str, name: str,
              timeout: Optional[float] = None, **params: Any):
        return self.server.query(session, name, **params).result(timeout)

    def update_cell(self, session: str, matrix_name: str, source_id: str,
                    target_id: str, confidence: float,
                    user_defined: bool = False,
                    timeout: Optional[float] = None):
        return self.server.update_cell(
            session, matrix_name, source_id, target_id, confidence,
            user_defined).result(timeout)

    def get_matrix(self, session: str, matrix_name: str,
                   timeout: Optional[float] = None) -> MappingMatrix:
        return self.server.get_matrix(session, matrix_name).result(timeout)

    def stats(self) -> Dict[str, Any]:
        return self.server.stats()

    # -- asyncio integration ---------------------------------------------------

    async def result_async(self, handle: JobHandle):
        """Await a job from inside an event loop without blocking it."""
        return await asyncio.wrap_future(handle.future)

    async def match_async(self, session: str, source_schema: str,
                          target_schema: str,
                          matrix_name: Optional[str] = None):
        handle = self.server.match(
            session, source_schema, target_schema, matrix_name)
        return await self.result_async(handle)


# -- the JSON gateway (the transport seam) ------------------------------------

#: job kinds whose parameters survive JSON — what wire transports accept
WIRE_KINDS = (
    "load_schema", "match", "evolve", "query", "update_cell", "cell",
    "get_matrix", "ping",
)


def _jsonify(result: Any) -> Any:
    """Job results as JSON-able values (summaries for rich objects)."""
    if isinstance(result, MappingMatrix):
        return {
            "matrix": result.name,
            "rows": len(result.row_ids),
            "columns": len(result.column_ids),
            "cells": result.cell_count(),
        }
    if isinstance(result, RematchReport):
        return {
            "axes_removed": len(result.axes_removed),
            "axes_added": len(result.axes_added),
            "suggestions_reset": len(result.suggestions_reset),
            "decisions_kept": len(result.decisions_kept),
            "decisions_lost": len(result.decisions_lost),
        }
    if isinstance(result, tuple):
        return [_jsonify(item) for item in result]
    if isinstance(result, list):
        return [_jsonify(item) for item in result]
    return result


def _error(error: BaseException) -> Dict[str, Any]:
    response: Dict[str, Any] = {
        "ok": False,
        "error": type(error).__name__,
        "message": str(error),
    }
    if isinstance(error, QueueFullError):
        response["retry_after_s"] = error.retry_after_s
    return response


def handle_request(server: WorkbenchServer,
                   request: Dict[str, Any]) -> Dict[str, Any]:
    """One request dict in, one response dict out — both JSON-able.

    Operations: ``create_session``, ``close_session``, ``submit``
    (``kind`` limited to :data:`WIRE_KINDS`), ``status``, ``result``
    (blocks up to ``timeout`` seconds; a terminal result is returned
    once and then forgotten), ``cancel``, ``stats``.
    """
    try:
        op = request.get("op")
        if op == "create_session":
            session = server.sessions.get_or_create(request["session"])
            return {"ok": True, "session": session.name}
        if op == "close_session":
            server.sessions.close_session(request["session"])
            return {"ok": True}
        if op == "submit":
            kind = request.get("kind")
            if kind not in WIRE_KINDS:
                raise ServingError(
                    f"kind {kind!r} is not wire-transportable; one of "
                    f"{sorted(WIRE_KINDS)}")
            handle = server.submit(
                request["session"], kind,
                priority=request.get("priority"),
                retain=True,
                **request.get("params", {}))
            return {"ok": True, "job_id": handle.job_id}
        if op == "status":
            job = server.job(request["job_id"])
            return {"ok": True, "status": job.status.value}
        if op == "result":
            job = server.job(request["job_id"])
            try:
                result = job.future.result(
                    timeout=request.get("timeout", 30.0))
            except FuturesTimeoutError:
                # not terminal yet: keep the job retained for re-polling
                return {"ok": False, "error": "Timeout",
                        "message": "job still running",
                        "status": job.status.value}
            except BaseException as error:  # noqa: BLE001 — wire isolation
                server.forget(job.job_id)
                response = _error(error)
                response["status"] = job.status.value
                return response
            server.forget(job.job_id)
            return {"ok": True, "status": job.status.value,
                    "result": _jsonify(result)}
        if op == "cancel":
            job = server.job(request["job_id"])
            return {"ok": True, "cancelled": job.cancel()}
        if op == "stats":
            return {"ok": True, "stats": server.stats()}
        raise ServingError(f"unknown op {op!r}")
    except BaseException as error:  # noqa: BLE001 — wire isolation
        return _error(error)
