"""Warm per-process match workers (the PR-6 N-way pattern, serving-side).

In ``executor="process"`` mode match compute is shipped to a
``ProcessPoolExecutor`` whose initializer builds one
:class:`~repro.harmony.engine.HarmonyEngine` per process; the engine
(and the process-wide kernel memo caches under it) stays warm across
every job the worker receives.  The parent ships the picklable inputs —
both schema graphs and the current matrix, user decisions included — and
writes the returned matrix back to the session blackboard itself, so
durability and events stay in one place.

Matching is a pure function of ``(source, target, matrix, config)``
(the N-way differential harness proves warm-engine results bit-identical
to cold serial runs), so process scheduling can never leak into results.
"""

from __future__ import annotations

from typing import Dict

#: per-worker-process state, set once by the pool initializer
_WORKER_STATE: Dict[str, object] = {}


def init_serving_worker(engine_config) -> None:
    """Pool initializer: one warm engine per worker process."""
    from ..harmony.engine import HarmonyEngine

    _WORKER_STATE["engine"] = HarmonyEngine(config=engine_config)


def match_in_worker(source, target, matrix):
    """Run one match job on this worker's warm engine.

    Returns the filled matrix (pickled back to the parent, which owns
    the blackboard write)."""
    engine = _WORKER_STATE["engine"]
    engine.match(source, target, matrix=matrix)
    return matrix
