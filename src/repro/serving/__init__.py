"""Match-as-a-service: the concurrent multi-session serving layer.

The ROADMAP's "millions of users" axis made concrete: named sessions
with isolated (optionally durable) blackboards, a bounded session-fair
job queue with priorities, cancellation and reject-with-retry-after
backpressure, and a worker pool whose match compute stays warm across
jobs — per-session engines in thread mode, per-process engines (the
PR-6 N-way pattern) in process mode.  Transport is pluggable: the
in-process :class:`WorkbenchClient` is the reference, and
:mod:`repro.serving.tcp` wraps the same JSON gateway in length-prefixed
frames.  See ``docs/SERVING.md``.
"""

from .config import ServingConfig
from .client import WorkbenchClient, handle_request
from .jobs import (
    Job,
    JobCancelledError,
    JobHandle,
    JobStatus,
    QueueFullError,
    ServerClosedError,
    ServingError,
    SessionNotFoundError,
)
from .queue import JobQueue
from .server import WorkbenchServer
from .sessions import SessionRegistry, WorkbenchSession
from .tcp import TcpWorkbenchClient, TcpWorkbenchServer, serve_tcp

__all__ = [
    "Job",
    "JobCancelledError",
    "JobHandle",
    "JobQueue",
    "JobStatus",
    "QueueFullError",
    "ServerClosedError",
    "ServingConfig",
    "ServingError",
    "SessionNotFoundError",
    "SessionRegistry",
    "TcpWorkbenchClient",
    "TcpWorkbenchServer",
    "WorkbenchClient",
    "WorkbenchServer",
    "WorkbenchSession",
    "handle_request",
    "serve_tcp",
]
