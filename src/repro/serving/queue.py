"""The bounded, session-fair job queue.

Scheduling policy (documented in ``docs/SERVING.md``):

* **fairness first** — with ``fair_scheduling`` (the default) sessions
  with queued work take turns round-robin, so one chatty session cannot
  starve the others however many jobs it submits;
* **priority second** — within a session, jobs run in ``(priority,
  arrival)`` order (lower priority value first);
* **backpressure** — the queue is bounded; a push beyond
  ``queue_limit`` raises :class:`~repro.serving.jobs.QueueFullError`
  with a retry-after hint instead of queueing unboundedly.

With ``fair_scheduling=False`` the queue degrades to one global
``(priority, arrival)`` order across all sessions.

Jobs cancelled while queued stay in their heap (cancellation already
resolved their future) and are discarded, not returned, when a worker
reaches them.
"""

from __future__ import annotations

import heapq
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .jobs import Job, JobStatus, QueueFullError, ServerClosedError

#: heap entry: (priority, seq, job) — seq is unique, so jobs never compare
_Entry = Tuple[int, int, Job]


class JobQueue:
    """Bounded priority queue with per-session round-robin fairness."""

    def __init__(
        self,
        limit: int,
        retry_after_s: float = 0.05,
        fair: bool = True,
    ) -> None:
        self._limit = limit
        self._retry_after_s = retry_after_s
        self._fair = fair
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heaps: Dict[str, List[_Entry]] = {}
        #: sessions with a (possibly all-cancelled) non-empty heap, in
        #: round-robin order
        self._rotation: Deque[str] = deque()
        self._size = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def pending(self) -> int:
        """Queued jobs, including cancelled-but-undrained entries."""
        with self._lock:
            return self._size

    def push(self, job: Job) -> None:
        with self._not_empty:
            if self._closed:
                raise ServerClosedError("server is shutting down")
            if self._size >= self._limit:
                raise QueueFullError(self._retry_after_s)
            heap = self._heaps.get(job.session)
            if heap is None:
                heap = self._heaps[job.session] = []
                self._rotation.append(job.session)
            heapq.heappush(heap, (job.priority, job.seq, job))
            self._size += 1
            self._not_empty.notify()

    def _pop_live(self, session: str) -> Optional[Job]:
        """Next non-cancelled job of one session; drops cancelled entries."""
        heap = self._heaps[session]
        while heap:
            _, _, job = heapq.heappop(heap)
            self._size -= 1
            if job.status is JobStatus.CANCELLED:
                continue
            return job
        return None

    def _take(self) -> Optional[Job]:
        """One scheduling decision; caller holds the lock."""
        if self._fair:
            while self._rotation:
                session = self._rotation.popleft()
                job = self._pop_live(session)
                if self._heaps[session]:
                    self._rotation.append(session)
                else:
                    del self._heaps[session]
                if job is not None:
                    return job
            return None
        # strict global (priority, arrival) order
        while True:
            best: Optional[str] = None
            best_key: Optional[Tuple[int, int]] = None
            for session, heap in self._heaps.items():
                # clear cancelled entries off the head first
                while heap and heap[0][2].status is JobStatus.CANCELLED:
                    heapq.heappop(heap)
                    self._size -= 1
                if not heap:
                    continue
                key = (heap[0][0], heap[0][1])
                if best_key is None or key < best_key:
                    best, best_key = session, key
            for session in [s for s, h in self._heaps.items() if not h]:
                del self._heaps[session]
                try:
                    self._rotation.remove(session)
                except ValueError:
                    pass
            if best is None:
                return None
            job = self._pop_live(best)
            if job is not None:
                return job

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job to run, or None on timeout / drained-and-closed.

        After :meth:`close`, remaining jobs keep coming out (so a
        draining shutdown can finish them); None means empty+closed.
        """
        with self._not_empty:
            while True:
                job = self._take()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout):
                    return self._take()

    def close(self) -> None:
        """Stop accepting pushes and wake every blocked pop."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def cancel_pending(self) -> int:
        """Cancel every queued job (a non-draining shutdown). Returns
        how many were cancelled."""
        with self._not_empty:
            cancelled = 0
            for heap in self._heaps.values():
                for _, _, job in heap:
                    if job.cancel():
                        cancelled += 1
            self._not_empty.notify_all()
            return cancelled
