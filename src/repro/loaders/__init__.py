"""Schema loaders: import native formats into the canonical graph.

Section 5.2.1: *"Loaders are used during schema preparation to parse a
schema from a file, database or metadata repository (including ancillary
information such as definitions from a data dictionary) into the internal
representation used by the IB."*
"""

from .base import (
    CANONICAL_TYPES,
    TYPE_COMPATIBILITY,
    SchemaLoader,
    normalize_type,
    types_compatible,
)
from .data_dictionary import (
    EnrichmentReport,
    apply_dictionary,
    define_domain,
    enrich_from_text,
    parse_dictionary,
)
from .er_model import ErModelLoader, load_er
from .json_schema import JsonSchemaLoader, load_json_schema
from .registry_loader import MetadataRegistry, RegistryLoader, load_registry
from .sql_ddl import SqlDdlLoader, load_sql, tokenize_sql
from .xsd import XsdLoader, load_xsd

__all__ = [
    "CANONICAL_TYPES",
    "EnrichmentReport",
    "ErModelLoader",
    "JsonSchemaLoader",
    "MetadataRegistry",
    "RegistryLoader",
    "SchemaLoader",
    "SqlDdlLoader",
    "TYPE_COMPATIBILITY",
    "XsdLoader",
    "apply_dictionary",
    "define_domain",
    "enrich_from_text",
    "load_er",
    "load_json_schema",
    "load_registry",
    "load_sql",
    "load_xsd",
    "normalize_type",
    "parse_dictionary",
    "tokenize_sql",
    "types_compatible",
]
