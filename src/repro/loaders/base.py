"""Loader interface and canonical datatype normalization.

Task 1 of the task model: *"imports the source schemata into the
integration platform.  If the source schemata are not in a format
compatible with the platform, this step also includes any necessary
syntactic transformations."*  Every loader produces a
:class:`~repro.core.graph.SchemaGraph` — the platform's one canonical
representation — and normalizes native datatypes into a small canonical
set so the datatype match voter can compare across metamodels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

from ..core.graph import SchemaGraph

#: Canonical datatypes shared by every metamodel.
CANONICAL_TYPES = frozenset(
    {
        "string",
        "integer",
        "decimal",
        "float",
        "boolean",
        "date",
        "time",
        "datetime",
        "binary",
        "identifier",
    }
)

#: Native type name (lowercased, parenthesized args stripped) → canonical.
_TYPE_MAP: Dict[str, str] = {
    # SQL
    "char": "string", "varchar": "string", "varchar2": "string",
    "nchar": "string", "nvarchar": "string", "text": "string",
    "clob": "string", "character": "string", "string": "string",
    "int": "integer", "integer": "integer", "smallint": "integer",
    "bigint": "integer", "tinyint": "integer", "serial": "integer",
    "number": "decimal", "numeric": "decimal", "decimal": "decimal",
    "money": "decimal",
    "float": "float", "real": "float", "double": "float",
    "double precision": "float",
    "bool": "boolean", "boolean": "boolean", "bit": "boolean",
    "date": "date",
    "time": "time",
    "timestamp": "datetime", "datetime": "datetime",
    "blob": "binary", "binary": "binary", "varbinary": "binary",
    "bytea": "binary", "raw": "binary",
    "uuid": "identifier", "rowid": "identifier",
    # XML Schema built-ins (xs: prefix stripped by the XSD loader)
    "normalizedstring": "string", "token": "string", "anyuri": "string",
    "qname": "string", "id": "identifier", "idref": "identifier",
    "nonnegativeinteger": "integer", "positiveinteger": "integer",
    "negativeinteger": "integer", "nonpositiveinteger": "integer",
    "long": "integer", "short": "integer", "byte": "integer",
    "unsignedint": "integer", "unsignedlong": "integer",
    "unsignedshort": "integer", "unsignedbyte": "integer",
    "gyear": "date", "gmonth": "date", "gday": "date",
    "gyearmonth": "date", "gmonthday": "date",
    "duration": "string",
    "hexbinary": "binary", "base64binary": "binary",
    # JSON Schema
    "object": "string", "array": "string", "null": "string",
}


def normalize_type(native: Optional[str]) -> Optional[str]:
    """Map a native type name to a canonical one.

    Parenthesized length/precision arguments and common prefixes
    (``xs:``, ``xsd:``) are stripped.  Unknown types pass through
    lowercased so no information is silently destroyed.

    >>> normalize_type("VARCHAR(30)")
    'string'
    >>> normalize_type("xs:decimal")
    'decimal'
    """
    if native is None:
        return None
    cleaned = native.strip().lower()
    for prefix in ("xs:", "xsd:"):
        if cleaned.startswith(prefix):
            cleaned = cleaned[len(prefix):]
    if "(" in cleaned:
        cleaned = cleaned[: cleaned.index("(")].strip()
    if cleaned in CANONICAL_TYPES:
        return cleaned
    return _TYPE_MAP.get(cleaned, cleaned)


#: Compatibility groups for the datatype match voter: types in the same
#: group can plausibly hold corresponding values.
TYPE_COMPATIBILITY = {
    "string": {"string", "identifier"},
    "integer": {"integer", "decimal", "float", "identifier"},
    "decimal": {"decimal", "integer", "float"},
    "float": {"float", "decimal", "integer"},
    "boolean": {"boolean", "integer", "string"},
    "date": {"date", "datetime"},
    "time": {"time", "datetime"},
    "datetime": {"datetime", "date", "time"},
    "binary": {"binary"},
    "identifier": {"identifier", "string", "integer"},
}


def types_compatible(a: Optional[str], b: Optional[str]) -> bool:
    """Can values of canonical type *a* populate type *b* (or vice versa)?

    Unknown or missing types are treated as compatible — absence of type
    information must never veto a correspondence.
    """
    if a is None or b is None:
        return True
    if a == b:
        return True
    return b in TYPE_COMPATIBILITY.get(a, {a}) or a in TYPE_COMPATIBILITY.get(b, {b})


class SchemaLoader(ABC):
    """A schema importer (Section 5.2.1 "loaders").

    Implementations parse one native format and emit a canonical
    :class:`SchemaGraph`.  They raise
    :class:`~repro.core.errors.LoaderError` on malformed input.
    """

    #: Short format name ("sql", "xsd", "er", "json-schema").
    format_name: str = ""

    @abstractmethod
    def load(self, text: str, schema_name: Optional[str] = None) -> SchemaGraph:
        """Parse *text* into a canonical schema graph."""

    def load_file(self, path: str, schema_name: Optional[str] = None) -> SchemaGraph:
        """Parse a file on disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.load(handle.read(), schema_name=schema_name)
