"""SQL DDL loader: a hand-written tokenizer and recursive-descent parser.

Parses the CREATE TABLE dialect common to the systems the paper targets,
plus ``COMMENT ON`` statements — Section 2 stresses that documentation
matters, and in SQL it arrives via comments.  Supported surface:

* ``CREATE TABLE name (col type [constraints], ..., table constraints)``
* column constraints: ``NOT NULL``, ``NULL``, ``PRIMARY KEY``, ``UNIQUE``,
  ``DEFAULT <literal>``, ``REFERENCES table (col)``, ``CHECK (...)``
* table constraints: ``PRIMARY KEY (...)``, ``UNIQUE (...)``,
  ``FOREIGN KEY (...) REFERENCES table (...)``, ``CHECK (...)``,
  ``CONSTRAINT name <constraint>``
* ``COMMENT ON TABLE t IS '...'`` and ``COMMENT ON COLUMN t.c IS '...'``
* ``--`` line comments and ``/* */`` block comments become documentation
  when they immediately precede a table or column definition.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.elements import ElementKind, SchemaElement
from ..core.errors import LoaderError
from ..core.graph import (
    HAS_KEY,
    KEY_ATTRIBUTE,
    REFERENCES,
    SchemaGraph,
)
from .base import SchemaLoader, normalize_type

# -- tokenizer ----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<line_comment>--[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<string>'(?:[^']|'')*')
  | (?P<quoted_ident>"[^"]+"|`[^`]+`|\[[^\]]+\])
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<punct>[(),.;*=<>+-])
  | (?P<space>\s+)
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str      # 'ident', 'string', 'number', 'punct', 'comment'
    value: str     # normalized value (idents upper-cased in .upper)
    line: int

    @property
    def upper(self) -> str:
        return self.value.upper()


def tokenize_sql(text: str) -> Tuple[List[Token], List[Tuple[int, str]]]:
    """Tokenize DDL; returns (tokens, comments) where comments keep their
    line numbers so they can be attached as documentation."""
    tokens: List[Token] = []
    comments: List[Tuple[int, str]] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise LoaderError(f"unexpected character {text[pos]!r}", line=line)
        kind = match.lastgroup
        value = match.group(0)
        if kind == "space":
            pass
        elif kind == "line_comment":
            comments.append((line, value[2:].strip()))
        elif kind == "block_comment":
            body = value[2:-2].strip()
            comments.append((line, " ".join(body.split())))
        elif kind == "string":
            tokens.append(Token("string", value[1:-1].replace("''", "'"), line))
        elif kind == "quoted_ident":
            tokens.append(Token("ident", value[1:-1], line))
        elif kind == "number":
            tokens.append(Token("number", value, line))
        elif kind == "ident":
            tokens.append(Token("ident", value, line))
        else:
            tokens.append(Token("punct", value, line))
        line += value.count("\n")
        pos = match.end()
    return tokens, comments


# -- parser -------------------------------------------------------------------

@dataclass
class _Column:
    name: str
    datatype: str
    nullable: bool = True
    is_primary: bool = False
    is_unique: bool = False
    default: Optional[str] = None
    references: Optional[Tuple[str, str]] = None  # (table, column)
    line: int = 0
    documentation: str = ""


@dataclass
class _Table:
    name: str
    columns: List[_Column] = field(default_factory=list)
    primary_key: List[str] = field(default_factory=list)
    unique_keys: List[List[str]] = field(default_factory=list)
    foreign_keys: List[Tuple[List[str], str, List[str]]] = field(default_factory=list)
    line: int = 0
    documentation: str = ""

    def column(self, name: str) -> Optional[_Column]:
        for col in self.columns:
            if col.name.lower() == name.lower():
                return col
        return None


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- primitives -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._index + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            raise LoaderError("unexpected end of input", line=last.line if last else 0)
        self._index += 1
        return token

    def _expect(self, value: str) -> Token:
        token = self._next()
        if token.upper != value.upper():
            raise LoaderError(
                f"expected {value!r}, found {token.value!r}", line=token.line
            )
        return token

    def _accept(self, value: str) -> bool:
        token = self._peek()
        if token is not None and token.upper == value.upper():
            self._index += 1
            return True
        return False

    def _at_keyword(self, *values: str) -> bool:
        token = self._peek()
        return token is not None and token.upper in {v.upper() for v in values}

    def _skip_balanced_parens(self) -> str:
        """Consume a '('-balanced region, returning its raw text."""
        self._expect("(")
        depth = 1
        parts: List[str] = []
        while depth > 0:
            token = self._next()
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth -= 1
                if depth == 0:
                    break
            parts.append(token.value)
        return " ".join(parts)

    def _identifier(self) -> Token:
        token = self._next()
        if token.kind != "ident":
            raise LoaderError(
                f"expected identifier, found {token.value!r}", line=token.line
            )
        return token

    def _qualified_name(self) -> str:
        """name or schema.name — keeps only the last component."""
        name = self._identifier().value
        while self._accept("."):
            name = self._identifier().value
        return name

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> Tuple[List[_Table], List[Tuple[str, Optional[str], str]]]:
        tables: List[_Table] = []
        comment_stmts: List[Tuple[str, Optional[str], str]] = []
        while self._peek() is not None:
            if self._at_keyword("CREATE"):
                self._next()
                if self._at_keyword("TABLE"):
                    self._next()
                    tables.append(self._create_table())
                else:
                    self._skip_statement()
            elif self._at_keyword("COMMENT"):
                comment_stmts.append(self._comment_on())
            else:
                self._skip_statement()
        return tables, comment_stmts

    def _skip_statement(self) -> None:
        while True:
            token = self._peek()
            if token is None:
                return
            self._index += 1
            if token.value == ";":
                return
            if token.value == "(":
                self._index -= 1
                self._skip_balanced_parens()

    def _create_table(self) -> _Table:
        if self._at_keyword("IF"):
            self._next()
            self._expect("NOT")
            self._expect("EXISTS")
        start = self._peek()
        name = self._qualified_name()
        table = _Table(name=name, line=start.line if start else 0)
        self._expect("(")
        while True:
            if self._at_keyword("PRIMARY", "UNIQUE", "FOREIGN", "CHECK", "CONSTRAINT", "KEY"):
                self._table_constraint(table)
            else:
                table.columns.append(self._column_def(table))
            if self._accept(","):
                continue
            self._expect(")")
            break
        # trailing options (ENGINE=... etc.) up to the semicolon
        self._skip_statement()
        return table

    def _column_def(self, table: _Table) -> _Column:
        name_token = self._identifier()
        type_token = self._identifier()
        datatype = type_token.value
        token = self._peek()
        if token is not None and token.value == "(":
            args = self._skip_balanced_parens().replace(" ", "")
            datatype = f"{datatype}({args})"
        column = _Column(name=name_token.value, datatype=datatype, line=name_token.line)
        while True:
            if self._accept("NOT"):
                self._expect("NULL")
                column.nullable = False
            elif self._accept("NULL"):
                column.nullable = True
            elif self._at_keyword("PRIMARY"):
                self._next()
                self._expect("KEY")
                column.is_primary = True
                table.primary_key = [column.name]
            elif self._accept("UNIQUE"):
                column.is_unique = True
            elif self._accept("DEFAULT"):
                column.default = self._next().value
            elif self._accept("REFERENCES"):
                ref_table = self._qualified_name()
                ref_column = ""
                if self._peek() is not None and self._peek().value == "(":
                    ref_column = self._skip_balanced_parens().strip()
                column.references = (ref_table, ref_column)
            elif self._accept("CHECK"):
                self._skip_balanced_parens()
            elif self._at_keyword("AUTO_INCREMENT", "AUTOINCREMENT", "IDENTITY"):
                self._next()
            elif self._accept("COMMENT"):
                token = self._next()
                column.documentation = token.value
            elif self._accept("CONSTRAINT"):
                self._identifier()  # constraint name; the constraint follows
            else:
                break
        return column

    def _table_constraint(self, table: _Table) -> None:
        if self._accept("CONSTRAINT"):
            self._identifier()
        if self._accept("PRIMARY"):
            self._expect("KEY")
            cols = self._skip_balanced_parens()
            table.primary_key = _split_columns(cols)
            for col_name in table.primary_key:
                column = table.column(col_name)
                if column is not None:
                    column.is_primary = True
        elif self._accept("UNIQUE"):
            self._accept("KEY")
            if self._peek() is not None and self._peek().kind == "ident":
                self._identifier()  # index name
            cols = self._skip_balanced_parens()
            table.unique_keys.append(_split_columns(cols))
        elif self._accept("FOREIGN"):
            self._expect("KEY")
            local = _split_columns(self._skip_balanced_parens())
            self._expect("REFERENCES")
            ref_table = self._qualified_name()
            remote: List[str] = []
            if self._peek() is not None and self._peek().value == "(":
                remote = _split_columns(self._skip_balanced_parens())
            table.foreign_keys.append((local, ref_table, remote))
            while self._at_keyword("ON"):
                self._next()   # ON
                self._next()   # DELETE / UPDATE
                self._next()   # CASCADE / RESTRICT / SET
                self._accept("NULL")
                self._accept("DEFAULT")
        elif self._accept("CHECK"):
            self._skip_balanced_parens()
        elif self._accept("KEY"):
            if self._peek() is not None and self._peek().kind == "ident":
                self._identifier()
            self._skip_balanced_parens()
        else:
            token = self._peek()
            raise LoaderError(
                f"unsupported table constraint near {token.value!r}",
                line=token.line if token else 0,
            )

    def _comment_on(self) -> Tuple[str, Optional[str], str]:
        """COMMENT ON TABLE t IS '...'; COMMENT ON COLUMN t.c IS '...'"""
        self._expect("COMMENT")
        self._expect("ON")
        kind = self._next().upper
        if kind == "TABLE":
            table = self._qualified_name()
            self._expect("IS")
            text = self._next().value
            self._accept(";")
            return (table, None, text)
        if kind == "COLUMN":
            first = self._identifier().value
            parts = [first]
            while self._accept("."):
                parts.append(self._identifier().value)
            if len(parts) < 2:
                raise LoaderError("COMMENT ON COLUMN needs table.column")
            self._expect("IS")
            text = self._next().value
            self._accept(";")
            return (".".join(parts[:-1]).split(".")[-1], parts[-1], text)
        raise LoaderError(f"unsupported COMMENT ON {kind}")


def _split_columns(raw: str) -> List[str]:
    return [c.strip() for c in raw.split(",") if c.strip()]


# -- loader -------------------------------------------------------------------

class SqlDdlLoader(SchemaLoader):
    """Loads relational schemata from SQL DDL text.

    The resulting graph uses the paper's relational layout: a DATABASE
    element under the schema root, ``contains-table`` edges to TABLE
    elements, ``contains-attribute`` edges to column ATTRIBUTEs, KEY
    elements via ``has-key``/``key-attribute``, and ``references`` edges
    for foreign keys.
    """

    format_name = "sql"

    def load(self, text: str, schema_name: Optional[str] = None) -> SchemaGraph:
        tokens, comments = tokenize_sql(text)
        tables, comment_stmts = _Parser(tokens).parse()
        if not tables:
            raise LoaderError("no CREATE TABLE statements found")
        name = schema_name or "database"
        graph = SchemaGraph.create(name)
        db_id = f"{name}/db"
        graph.add_child(
            name,
            SchemaElement(db_id, name, ElementKind.DATABASE),
            label="contains-element",
        )

        comment_by_line = _CommentIndex(comments)
        table_ids = {}
        for table in tables:
            table_id = f"{name}/{table.name}"
            table_ids[table.name.lower()] = table_id
            doc = table.documentation or comment_by_line.before(table.line)
            graph.add_child(
                db_id,
                SchemaElement(table_id, table.name, ElementKind.TABLE, documentation=doc),
            )
            for column in table.columns:
                col_id = f"{table_id}/{column.name}"
                element = SchemaElement(
                    col_id,
                    column.name,
                    ElementKind.ATTRIBUTE,
                    datatype=normalize_type(column.datatype),
                    documentation=column.documentation or comment_by_line.before(column.line),
                )
                element.annotate("nullable", column.nullable)
                element.annotate("native_type", column.datatype.lower())
                if column.default is not None:
                    element.annotate("default", column.default)
                graph.add_child(table_id, element)
            if table.primary_key:
                key_id = f"{table_id}/#pk"
                graph.add_child(
                    table_id,
                    SchemaElement(key_id, f"{table.name}_pk", ElementKind.KEY),
                    label=HAS_KEY,
                )
                for col_name in table.primary_key:
                    col_id = f"{table_id}/{_match_column(table, col_name)}"
                    if col_id.split("/")[-1]:
                        graph.add_edge(key_id, KEY_ATTRIBUTE, col_id)

        # second pass: foreign keys (tables must all exist first)
        for table in tables:
            table_id = table_ids[table.name.lower()]
            for column in table.columns:
                if column.references is not None:
                    ref_table, ref_column = column.references
                    target = self._fk_target(graph, table_ids, ref_table, ref_column)
                    if target:
                        graph.add_edge(f"{table_id}/{column.name}", REFERENCES, target)
            for local, ref_table, remote in table.foreign_keys:
                for i, col_name in enumerate(local):
                    ref_column = remote[i] if i < len(remote) else ""
                    target = self._fk_target(graph, table_ids, ref_table, ref_column)
                    actual = _match_column(table, col_name)
                    if target and actual:
                        graph.add_edge(f"{table_id}/{actual}", REFERENCES, target)

        # COMMENT ON statements override inline comments
        for table_name, column_name, doc in comment_stmts:
            table_id = table_ids.get(table_name.lower())
            if table_id is None:
                continue
            if column_name is None:
                graph.element(table_id).documentation = doc
            else:
                for element in graph.children(table_id):
                    if element.name.lower() == column_name.lower():
                        element.documentation = doc
        return graph

    @staticmethod
    def _fk_target(graph, table_ids, ref_table: str, ref_column: str) -> Optional[str]:
        table_id = table_ids.get(ref_table.lower())
        if table_id is None:
            return None
        if ref_column:
            for element in graph.children(table_id):
                if element.name.lower() == ref_column.strip().lower():
                    return element.element_id
        return table_id


def _match_column(table: _Table, name: str) -> str:
    column = table.column(name)
    return column.name if column is not None else name


class _CommentIndex:
    """Attach ``--``/``/* */`` comments to the definition on the next line."""

    def __init__(self, comments: List[Tuple[int, str]]) -> None:
        self._by_line = {}
        for line, text in comments:
            if text:
                self._by_line[line] = text

    def before(self, line: int) -> str:
        """The comment attached to a definition at *line*: a trailing
        comment on the same line, or the comment block immediately above."""
        if line in self._by_line:
            return self._by_line.pop(line)
        parts: List[str] = []
        probe = line - 1
        while probe in self._by_line:
            parts.append(self._by_line.pop(probe))
            probe -= 1
        return " ".join(reversed(parts))


def load_sql(text: str, schema_name: Optional[str] = None) -> SchemaGraph:
    """Convenience wrapper: parse DDL text into a schema graph."""
    return SqlDdlLoader().load(text, schema_name=schema_name)
