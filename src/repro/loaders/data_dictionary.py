"""Data-dictionary enrichment.

Task 1 includes gathering *"ancillary information such as definitions from
a data dictionary"* (Section 5.2.1), and the schema-preparation phase lets
one *"enrich the schemata, e.g., by defining coding schemes as domains, or
documenting constraints that are not documented in the actual system"*
(Section 3.1).  This module applies such enrichments to an already-loaded
schema graph.

Dictionary format (CSV-like, ``#`` comments allowed)::

    element_path,definition
    Employee,A person employed by the organization.
    Employee.salary,Annual gross salary in US dollars.

Element paths are matched against element names and dotted name paths,
case-insensitively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..core.elements import ElementKind, SchemaElement
from ..core.errors import LoaderError
from ..core.graph import HAS_DOMAIN, SchemaGraph


@dataclass
class EnrichmentReport:
    """What an enrichment pass changed."""

    documented: List[str] = field(default_factory=list)
    unmatched: List[str] = field(default_factory=list)
    domains_defined: List[str] = field(default_factory=list)

    @property
    def applied(self) -> int:
        return len(self.documented) + len(self.domains_defined)


def parse_dictionary(text: str) -> Dict[str, str]:
    """Parse ``path,definition`` lines into a mapping."""
    entries: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "," not in line:
            raise LoaderError("dictionary line needs 'path,definition'", line=lineno)
        path, _, definition = line.partition(",")
        path = path.strip()
        definition = definition.strip().strip('"')
        if not path:
            raise LoaderError("empty element path", line=lineno)
        entries[path] = definition
    return entries


def _name_paths(graph: SchemaGraph, element: SchemaElement) -> List[str]:
    """All dotted suffixes of the element's name path, most specific first."""
    path = graph.path(element.element_id)
    suffixes = []
    for start in range(len(path)):
        suffixes.append(".".join(path[start:]).lower())
    return suffixes


def apply_dictionary(
    graph: SchemaGraph,
    entries: Dict[str, str],
    overwrite: bool = False,
) -> EnrichmentReport:
    """Attach dictionary definitions to matching elements.

    Existing documentation is preserved unless *overwrite* is set — the
    dictionary supplements, it does not silently replace.
    """
    report = EnrichmentReport()
    index: Dict[str, List[SchemaElement]] = {}
    for element in graph:
        for suffix in _name_paths(graph, element):
            index.setdefault(suffix, []).append(element)
    for path, definition in entries.items():
        matches = index.get(path.lower(), [])
        if not matches:
            report.unmatched.append(path)
            continue
        for element in matches:
            if element.documentation and not overwrite:
                continue
            element.documentation = definition
            report.documented.append(element.element_id)
    return report


def define_domain(
    graph: SchemaGraph,
    domain_name: str,
    values: Iterable[Tuple[str, str]],
    attach_to: Iterable[str] = (),
    datatype: str = "string",
    documentation: str = "",
) -> str:
    """Define a coding scheme as a semantic DOMAIN and attach it to attributes.

    This is the enrichment Section 2 recommends: *"A better solution would
    be to define semantic domains for each coding scheme so that
    integration tools could more easily identify domain correspondences."*

    Returns the new domain's element id.
    """
    root_id = graph.root.element_id
    domain_id = f"{root_id}/domain:{domain_name}"
    if domain_id in graph:
        raise LoaderError(f"domain {domain_name!r} already defined")
    graph.add_child(
        root_id,
        SchemaElement(
            domain_id, domain_name, ElementKind.DOMAIN,
            datatype=datatype, documentation=documentation,
        ),
        label="contains-element",
    )
    for code, doc in values:
        graph.add_child(
            domain_id,
            SchemaElement(f"{domain_id}/{code}", code, ElementKind.DOMAIN_VALUE,
                          documentation=doc),
        )
    for attribute_id in attach_to:
        element = graph.element(attribute_id)
        if element.kind is not ElementKind.ATTRIBUTE:
            raise LoaderError(
                f"can only attach domains to attributes, {attribute_id!r} is "
                f"{element.kind.value}"
            )
        graph.add_edge(attribute_id, HAS_DOMAIN, domain_id)
    return domain_id


def enrich_from_text(
    graph: SchemaGraph, dictionary_text: str, overwrite: bool = False
) -> EnrichmentReport:
    """Parse + apply in one step."""
    return apply_dictionary(graph, parse_dictionary(dictionary_text), overwrite=overwrite)
