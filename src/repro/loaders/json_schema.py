"""JSON Schema loader (draft-07 core subset).

Not in the 2006 paper — JSON Schema did not exist yet — but the workbench
is explicitly *open and extensible*: any format with a loader joins the
ecosystem.  This loader demonstrates exactly that extension point and is
used by the examples.

Supported: ``object`` properties (nested), ``array`` items, scalar types,
``enum`` (→ DOMAIN elements), ``required``, ``description``, local
``$ref`` into ``definitions``/``$defs``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..core.elements import ElementKind, SchemaElement
from ..core.errors import LoaderError
from ..core.graph import HAS_DOMAIN, SchemaGraph
from .base import SchemaLoader, normalize_type


class JsonSchemaLoader(SchemaLoader):
    """Loads JSON Schema documents into canonical schema graphs."""

    format_name = "json-schema"

    def load(self, text: str, schema_name: Optional[str] = None) -> SchemaGraph:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LoaderError(f"malformed JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise LoaderError("JSON Schema must be a JSON object")
        return self.load_dict(data, schema_name=schema_name)

    def load_dict(self, data: Dict[str, Any], schema_name: Optional[str] = None) -> SchemaGraph:
        name = schema_name or data.get("title") or "json-schema"
        name = name.replace(" ", "_")
        graph = SchemaGraph.create(name, documentation=data.get("description", ""))
        self._graph = graph
        self._root_doc = data
        self._prefix = name
        self._domain_count = 0
        root_name = data.get("title", "root").replace(" ", "_")
        self._load_node(data, parent_id=name, node_name=root_name, depth=0)
        return graph

    def _resolve_ref(self, ref: str) -> Dict[str, Any]:
        if not ref.startswith("#/"):
            raise LoaderError(f"only local $ref supported, got {ref!r}")
        node: Any = self._root_doc
        for part in ref[2:].split("/"):
            if not isinstance(node, dict) or part not in node:
                raise LoaderError(f"unresolved $ref {ref!r}")
            node = node[part]
        if not isinstance(node, dict):
            raise LoaderError(f"$ref {ref!r} does not point at a schema object")
        return node

    def _load_node(
        self, spec: Dict[str, Any], parent_id: str, node_name: str, depth: int
    ) -> None:
        if depth > 32:
            raise LoaderError("JSON Schema nesting too deep (cycle via $ref?)")
        if "$ref" in spec:
            resolved = dict(self._resolve_ref(spec["$ref"]))
            resolved.setdefault("description", spec.get("description", ""))
            spec = resolved
        node_type = spec.get("type", "object")
        doc = spec.get("description", "")
        element_id = f"{parent_id}/{node_name}"
        if element_id in self._graph:
            return

        if node_type == "object":
            element = SchemaElement(element_id, node_name, ElementKind.ELEMENT, documentation=doc)
            self._graph.add_child(parent_id, element, label="contains-element")
            required = set(spec.get("required", []))
            for prop_name, prop_spec in spec.get("properties", {}).items():
                if not isinstance(prop_spec, dict):
                    raise LoaderError(f"property {prop_name!r} is not a schema object")
                child_spec = dict(prop_spec)
                child_spec["_required"] = prop_name in required
                self._load_node(child_spec, element_id, prop_name, depth + 1)
        elif node_type == "array":
            element = SchemaElement(element_id, node_name, ElementKind.ELEMENT, documentation=doc)
            element.annotate("repeating", True)
            self._graph.add_child(parent_id, element, label="contains-element")
            items = spec.get("items")
            if isinstance(items, dict):
                self._load_node(items, element_id, "item", depth + 1)
        else:
            element = SchemaElement(
                element_id, node_name, ElementKind.ATTRIBUTE,
                datatype=normalize_type(_scalar_type(spec)),
                documentation=doc,
            )
            if not spec.get("_required", False):
                element.annotate("nullable", True)
            self._graph.add_child(parent_id, element, label="contains-attribute")
            if "enum" in spec:
                self._attach_enum_domain(element_id, node_name, spec["enum"])

    def _attach_enum_domain(self, element_id: str, node_name: str, values) -> None:
        domain_id = f"{self._prefix}/domain:{node_name}Values"
        if domain_id not in self._graph:
            self._graph.add_child(
                self._prefix,
                SchemaElement(domain_id, f"{node_name}Values", ElementKind.DOMAIN),
                label="contains-element",
            )
            for value in values:
                code = str(value)
                self._graph.add_child(
                    domain_id,
                    SchemaElement(f"{domain_id}/{code}", code, ElementKind.DOMAIN_VALUE),
                )
        self._graph.add_edge(element_id, HAS_DOMAIN, domain_id)


def _scalar_type(spec: Dict[str, Any]) -> str:
    node_type = spec.get("type", "string")
    if isinstance(node_type, list):
        concrete = [t for t in node_type if t != "null"]
        node_type = concrete[0] if concrete else "string"
    if node_type == "number":
        return "float"
    return str(node_type)


def load_json_schema(data, schema_name: Optional[str] = None) -> SchemaGraph:
    """Convenience wrapper: accepts JSON text or an already-parsed dict."""
    loader = JsonSchemaLoader()
    if isinstance(data, dict):
        return loader.load_dict(data, schema_name=schema_name)
    return loader.load(data, schema_name=schema_name)
