"""Entity-relationship model loader (the ERWin stand-in).

Harmony supports *"entity-relationship schemata from ERWin, a popular
modeling tool"* (Section 4).  ERWin's native format is proprietary, so we
define a self-contained JSON ER format carrying the same information the
paper's registry holds: entities and relationships with one-sentence
definitions, attributes with datatypes and definitions, and semantic
domains (coding schemes) with documented values.

Format::

    {
      "name": "air_traffic",
      "documentation": "...",
      "entities": [
        {"name": "Aircraft", "documentation": "...",
         "attributes": [
            {"name": "tailNumber", "type": "string", "documentation": "...",
             "key": true, "domain": "AircraftType"}]}
      ],
      "relationships": [
        {"name": "operates", "documentation": "...",
         "from": "Carrier", "to": "Flight",
         "attributes": [...]}
      ],
      "domains": [
        {"name": "AircraftType", "type": "string", "documentation": "...",
         "values": [{"code": "B737", "documentation": "..."}]}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.elements import ElementKind, SchemaElement
from ..core.errors import LoaderError
from ..core.graph import HAS_DOMAIN, HAS_KEY, KEY_ATTRIBUTE, REFERENCES, SchemaGraph
from .base import SchemaLoader, normalize_type


class ErModelLoader(SchemaLoader):
    """Loads JSON ER models into canonical schema graphs."""

    format_name = "er"

    def load(self, text: str, schema_name: Optional[str] = None) -> SchemaGraph:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LoaderError(f"malformed JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise LoaderError("ER model must be a JSON object")
        return self.load_dict(data, schema_name=schema_name)

    def load_dict(self, data: Dict[str, Any], schema_name: Optional[str] = None) -> SchemaGraph:
        """Load from an already-parsed dictionary."""
        name = schema_name or data.get("name")
        if not name:
            raise LoaderError("ER model needs a 'name'")
        graph = SchemaGraph.create(name, documentation=data.get("documentation", ""))

        # domains first so attributes can reference them
        for domain in data.get("domains", []):
            self._load_domain(graph, name, domain)
        entity_ids: Dict[str, str] = {}
        for entity in data.get("entities", []):
            entity_ids[entity.get("name", "")] = self._load_entity(
                graph, name, entity, ElementKind.ENTITY
            )
        for rel in data.get("relationships", []):
            rel_id = self._load_entity(graph, name, rel, ElementKind.RELATIONSHIP)
            for endpoint in ("from", "to"):
                ref = rel.get(endpoint)
                if ref:
                    if ref not in entity_ids:
                        raise LoaderError(
                            f"relationship {rel.get('name')!r} references unknown entity {ref!r}"
                        )
                    graph.add_edge(rel_id, REFERENCES, entity_ids[ref])
        if len(graph) == 1:
            raise LoaderError("ER model has no entities")
        return graph

    def _load_domain(self, graph: SchemaGraph, prefix: str, spec: Dict[str, Any]) -> None:
        domain_name = spec.get("name")
        if not domain_name:
            raise LoaderError("domain without a name")
        domain_id = f"{prefix}/domain:{domain_name}"
        graph.add_child(
            prefix,
            SchemaElement(
                domain_id, domain_name, ElementKind.DOMAIN,
                datatype=normalize_type(spec.get("type", "string")),
                documentation=spec.get("documentation", ""),
            ),
            label="contains-element",
        )
        for value in spec.get("values", []):
            if isinstance(value, str):
                code, doc = value, ""
            else:
                code, doc = value.get("code", ""), value.get("documentation", "")
            graph.add_child(
                domain_id,
                SchemaElement(
                    f"{domain_id}/{code}", code, ElementKind.DOMAIN_VALUE,
                    documentation=doc,
                ),
            )

    def _load_entity(
        self, graph: SchemaGraph, prefix: str, spec: Dict[str, Any], kind: ElementKind
    ) -> str:
        entity_name = spec.get("name")
        if not entity_name:
            raise LoaderError(f"{kind.value} without a name")
        entity_id = f"{prefix}/{entity_name}"
        graph.add_child(
            prefix,
            SchemaElement(
                entity_id, entity_name, kind,
                documentation=spec.get("documentation", ""),
            ),
            label="contains-element",
        )
        key_attrs: List[str] = []
        for attr in spec.get("attributes", []):
            attr_name = attr.get("name")
            if not attr_name:
                raise LoaderError(f"attribute without a name in {entity_name!r}")
            attr_id = f"{entity_id}/{attr_name}"
            element = SchemaElement(
                attr_id, attr_name, ElementKind.ATTRIBUTE,
                datatype=normalize_type(attr.get("type", "string")),
                documentation=attr.get("documentation", ""),
            )
            if "nullable" in attr:
                element.annotate("nullable", bool(attr["nullable"]))
            if "units" in attr:
                element.annotate("units", attr["units"])
            if "instance_values" in attr:
                element.annotate("instance_values", list(attr["instance_values"]))
            graph.add_child(entity_id, element)
            if attr.get("key"):
                key_attrs.append(attr_id)
            domain_ref = attr.get("domain")
            if domain_ref:
                domain_id = f"{prefix}/domain:{domain_ref}"
                if domain_id not in graph:
                    raise LoaderError(
                        f"attribute {attr_name!r} references unknown domain {domain_ref!r}"
                    )
                graph.add_edge(attr_id, HAS_DOMAIN, domain_id)
        if key_attrs:
            key_id = f"{entity_id}/#pk"
            graph.add_child(
                entity_id,
                SchemaElement(key_id, f"{entity_name}_pk", ElementKind.KEY),
                label=HAS_KEY,
            )
            for attr_id in key_attrs:
                graph.add_edge(key_id, KEY_ATTRIBUTE, attr_id)
        return entity_id


def load_er(data, schema_name: Optional[str] = None) -> SchemaGraph:
    """Convenience wrapper: accepts JSON text or an already-parsed dict."""
    loader = ErModelLoader()
    if isinstance(data, dict):
        return loader.load_dict(data, schema_name=schema_name)
    return loader.load(data, schema_name=schema_name)
