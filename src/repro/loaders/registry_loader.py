"""Metadata-registry loader.

Section 2 works from *"a collection of 265 conceptual (ER) models from the
Department of Defense metadata registry (which contains schemata only, no
instances!)"*.  A registry here is a named collection of ER models (see
:mod:`repro.loaders.er_model` for the per-model format)::

    {"name": "dod-registry", "models": [ <er model>, ... ]}

:mod:`repro.registry` generates synthetic registries in this format; this
loader turns them into schema graphs for matching and statistics.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

from ..core.errors import LoaderError
from ..core.graph import SchemaGraph
from .er_model import ErModelLoader


@dataclass
class MetadataRegistry:
    """A loaded registry: named schema graphs plus source dictionaries."""

    name: str
    schemas: List[SchemaGraph] = field(default_factory=list)
    raw_models: List[Dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.schemas)

    def __iter__(self) -> Iterator[SchemaGraph]:
        return iter(self.schemas)

    def schema(self, name: str) -> SchemaGraph:
        for graph in self.schemas:
            if graph.name == name:
                return graph
        raise LoaderError(f"registry {self.name!r} has no schema {name!r}")

    @property
    def schema_names(self) -> List[str]:
        return [g.name for g in self.schemas]


class RegistryLoader:
    """Loads a JSON metadata registry into schema graphs."""

    def load(self, text: str) -> MetadataRegistry:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LoaderError(f"malformed JSON: {exc}") from exc
        return self.load_dict(data)

    def load_dict(self, data: Dict[str, Any]) -> MetadataRegistry:
        if not isinstance(data, dict) or "models" not in data:
            raise LoaderError("registry must be an object with a 'models' list")
        registry = MetadataRegistry(name=data.get("name", "registry"))
        er_loader = ErModelLoader()
        seen: Dict[str, int] = {}
        for i, model in enumerate(data["models"]):
            if not isinstance(model, dict):
                raise LoaderError(f"model #{i} is not an object")
            model_name = model.get("name") or f"model{i}"
            # registries may repeat model names; disambiguate deterministically
            if model_name in seen:
                seen[model_name] += 1
                model = dict(model)
                model["name"] = f"{model_name}#{seen[model_name]}"
            else:
                seen[model_name] = 1
            registry.schemas.append(er_loader.load_dict(model))
            registry.raw_models.append(model)
        return registry

    def load_file(self, path: str) -> MetadataRegistry:
        with open(path, "r", encoding="utf-8") as handle:
            return self.load(handle.read())


def load_registry(data) -> MetadataRegistry:
    """Convenience wrapper: accepts JSON text or an already-parsed dict."""
    loader = RegistryLoader()
    if isinstance(data, dict):
        return loader.load_dict(data)
    return loader.load(data)
