"""XML Schema (XSD) loader.

Harmony *"currently supports XML schemata"* (Section 4); the paper's
Figure 2 schemas are XML.  This loader handles the XSD core used by
message formats: global and local element declarations, named and
anonymous complex types, sequences/choices/all, attributes, simple types
with enumeration restrictions (which become DOMAIN elements — Section 2's
coding schemes), and ``xs:annotation/xs:documentation`` text.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from ..core.elements import ElementKind, SchemaElement
from ..core.errors import LoaderError
from ..core.graph import HAS_DOMAIN, SchemaGraph
from .base import SchemaLoader, normalize_type

XS = "{http://www.w3.org/2001/XMLSchema}"


def _local(tag: str) -> str:
    return tag.split("}")[-1]


def _documentation(node: ET.Element) -> str:
    parts: List[str] = []
    for annotation in node.findall(f"{XS}annotation"):
        for doc in annotation.findall(f"{XS}documentation"):
            if doc.text:
                parts.append(" ".join(doc.text.split()))
    return " ".join(parts)


class XsdLoader(SchemaLoader):
    """Loads XML Schema documents into canonical schema graphs.

    Layout: the schema root contains each global element; complex content
    nests via ``contains-element``; attributes and simple-typed leaves via
    ``contains-attribute``; enumerated simple types become DOMAIN elements
    with DOMAIN_VALUE children, linked from their uses via ``has-domain``.
    """

    format_name = "xsd"

    def load(self, text: str, schema_name: Optional[str] = None) -> SchemaGraph:
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise LoaderError(f"malformed XML: {exc}") from exc
        if _local(root.tag) != "schema":
            raise LoaderError(f"expected xs:schema root, found {_local(root.tag)}")

        name = schema_name or root.get("targetNamespace", "xml-schema").rsplit("/", 1)[-1] or "xml-schema"
        graph = SchemaGraph.create(name, documentation=_documentation(root))
        self._graph = graph
        self._prefix = name
        self._complex_types: Dict[str, ET.Element] = {}
        self._simple_types: Dict[str, ET.Element] = {}
        self._domain_ids: Dict[str, str] = {}
        self._global_elements: Dict[str, ET.Element] = {}

        for child in root:
            tag = _local(child.tag)
            if tag == "complexType" and child.get("name"):
                self._complex_types[child.get("name")] = child
            elif tag == "simpleType" and child.get("name"):
                self._simple_types[child.get("name")] = child
            elif tag == "element" and child.get("name"):
                self._global_elements[child.get("name")] = child

        # materialize named enumerated simple types as shared domains
        for type_name, node in self._simple_types.items():
            self._ensure_domain(type_name, node)

        for element in self._global_elements.values():
            self._load_element(element, parent_id=name, seen_types=())
        if len(graph) == 1:
            raise LoaderError("schema contains no global element declarations")
        return graph

    # -- elements -------------------------------------------------------------

    def _load_element(self, node: ET.Element, parent_id: str, seen_types: tuple) -> None:
        ref = node.get("ref")
        if ref is not None:
            target = self._global_elements.get(_strip_prefix(ref))
            if target is None:
                raise LoaderError(f"unresolved element reference {ref!r}")
            node = target
        elem_name = node.get("name")
        if not elem_name:
            raise LoaderError("element declaration without a name")
        element_id = self._child_id(parent_id, elem_name)
        type_attr = node.get("type")
        doc = _documentation(node)

        inline_complex = node.find(f"{XS}complexType")
        inline_simple = node.find(f"{XS}simpleType")

        if inline_complex is not None:
            element = SchemaElement(element_id, elem_name, ElementKind.ELEMENT, documentation=doc)
            self._graph.add_child(parent_id, element, label="contains-element")
            self._load_complex(inline_complex, element_id, seen_types)
        elif type_attr is not None and _strip_prefix(type_attr) in self._complex_types:
            type_name = _strip_prefix(type_attr)
            element = SchemaElement(element_id, elem_name, ElementKind.ELEMENT, documentation=doc)
            self._graph.add_child(parent_id, element, label="contains-element")
            if type_name not in seen_types:  # guard against recursive types
                self._load_complex(
                    self._complex_types[type_name], element_id, seen_types + (type_name,)
                )
        else:
            # simple-typed leaf -> attribute-like node
            datatype, domain_id = self._resolve_simple(type_attr, inline_simple, elem_name)
            element = SchemaElement(
                element_id, elem_name, ElementKind.ATTRIBUTE,
                datatype=datatype, documentation=doc,
            )
            if node.get("minOccurs") == "0":
                element.annotate("nullable", True)
            self._graph.add_child(parent_id, element, label="contains-attribute")
            if domain_id is not None:
                self._graph.add_edge(element_id, HAS_DOMAIN, domain_id)

    def _load_complex(self, node: ET.Element, parent_id: str, seen_types: tuple) -> None:
        for child in node:
            tag = _local(child.tag)
            if tag in ("sequence", "choice", "all"):
                self._load_particle(child, parent_id, seen_types)
            elif tag == "attribute":
                self._load_attribute(child, parent_id)
            elif tag in ("simpleContent", "complexContent"):
                for ext in child:
                    if _local(ext.tag) in ("extension", "restriction"):
                        base = ext.get("base")
                        if base and _strip_prefix(base) in self._complex_types:
                            base_name = _strip_prefix(base)
                            if base_name not in seen_types:
                                self._load_complex(
                                    self._complex_types[base_name],
                                    parent_id,
                                    seen_types + (base_name,),
                                )
                        self._load_complex(ext, parent_id, seen_types)

    def _load_particle(self, node: ET.Element, parent_id: str, seen_types: tuple) -> None:
        for child in node:
            tag = _local(child.tag)
            if tag == "element":
                self._load_element(child, parent_id, seen_types)
            elif tag in ("sequence", "choice", "all"):
                self._load_particle(child, parent_id, seen_types)

    def _load_attribute(self, node: ET.Element, parent_id: str) -> None:
        attr_name = node.get("name")
        if not attr_name:
            return
        datatype, domain_id = self._resolve_simple(
            node.get("type"), node.find(f"{XS}simpleType"), attr_name
        )
        element_id = self._child_id(parent_id, f"@{attr_name}")
        element = SchemaElement(
            element_id, attr_name, ElementKind.ATTRIBUTE,
            datatype=datatype, documentation=_documentation(node),
        )
        if node.get("use") != "required":
            element.annotate("nullable", True)
        self._graph.add_child(parent_id, element, label="contains-attribute")
        if domain_id is not None:
            self._graph.add_edge(element_id, HAS_DOMAIN, domain_id)

    # -- simple types & domains -------------------------------------------------

    def _resolve_simple(
        self,
        type_attr: Optional[str],
        inline: Optional[ET.Element],
        context_name: str,
    ):
        """Returns (canonical datatype, optional domain element id)."""
        if inline is not None:
            domain_id = self._ensure_domain(f"{context_name}Type", inline, anonymous=True)
            return self._simple_base_type(inline), domain_id
        if type_attr is not None:
            type_name = _strip_prefix(type_attr)
            if type_name in self._simple_types:
                node = self._simple_types[type_name]
                return self._simple_base_type(node), self._domain_ids.get(type_name)
            return normalize_type(type_attr), None
        return "string", None

    def _simple_base_type(self, node: ET.Element) -> str:
        restriction = node.find(f"{XS}restriction")
        if restriction is not None and restriction.get("base"):
            return normalize_type(restriction.get("base")) or "string"
        return "string"

    def _ensure_domain(
        self, type_name: str, node: ET.Element, anonymous: bool = False
    ) -> Optional[str]:
        """Create a DOMAIN element for an enumerated simple type."""
        restriction = node.find(f"{XS}restriction")
        if restriction is None:
            return None
        enums = restriction.findall(f"{XS}enumeration")
        if not enums:
            return None
        if type_name in self._domain_ids:
            return self._domain_ids[type_name]
        domain_id = f"{self._prefix}/domain:{type_name}"
        if domain_id in self._graph:
            return domain_id
        domain = SchemaElement(
            domain_id, type_name, ElementKind.DOMAIN,
            datatype=self._simple_base_type(node),
            documentation=_documentation(node),
        )
        self._graph.add_child(self._prefix, domain, label="contains-element")
        for enum in enums:
            value = enum.get("value", "")
            value_id = f"{domain_id}/{value}"
            if value_id in self._graph:
                continue
            self._graph.add_child(
                domain_id,
                SchemaElement(
                    value_id, value, ElementKind.DOMAIN_VALUE,
                    documentation=_documentation(enum),
                ),
            )
        if not anonymous:
            self._domain_ids[type_name] = domain_id
        return domain_id

    def _child_id(self, parent_id: str, name: str) -> str:
        base = f"{parent_id}/{name}"
        candidate = base
        suffix = 2
        while candidate in self._graph:
            candidate = f"{base}#{suffix}"
            suffix += 1
        return candidate


def _strip_prefix(qname: str) -> str:
    return qname.split(":")[-1]


def load_xsd(text: str, schema_name: Optional[str] = None) -> SchemaGraph:
    """Convenience wrapper: parse XSD text into a schema graph."""
    return XsdLoader().load(text, schema_name=schema_name)
