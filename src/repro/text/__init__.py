"""Linguistic substrate: tokenization, stemming, thesaurus, similarity, TF-IDF.

Harmony's match engine *"begins with linguistic preprocessing (e.g.,
tokenization, stop-word removal, and stemming) of element names and any
associated documentation"* (Section 4).  Everything here is implemented
from scratch — no external NLP dependencies.
"""

from . import kernels
from .similarity import (
    blended_name_similarity,
    dice_similarity,
    edit_similarity,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    longest_common_substring,
    monge_elkan,
    ngram_similarity,
    substring_similarity,
)
from .stemmer import stem, stem_all
from .stopwords import STOP_WORDS, is_stop_word, remove_stop_words
from .tfidf import CorpusSnapshot, TfIdfCorpus, cosine_of_counts, preprocess
from .tfidf_sparse import SparseTfIdf, sparse_from_snapshot
from .thesaurus import DEFAULT_ABBREVIATIONS, DEFAULT_SYNSETS, Thesaurus
from .tokenize import name_tokens, ngrams, sentences, split_identifier, word_tokens

__all__ = [
    "CorpusSnapshot",
    "DEFAULT_ABBREVIATIONS",
    "DEFAULT_SYNSETS",
    "STOP_WORDS",
    "SparseTfIdf",
    "TfIdfCorpus",
    "Thesaurus",
    "blended_name_similarity",
    "cosine_of_counts",
    "dice_similarity",
    "edit_similarity",
    "is_stop_word",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "kernels",
    "levenshtein_distance",
    "longest_common_substring",
    "monge_elkan",
    "name_tokens",
    "ngram_similarity",
    "ngrams",
    "preprocess",
    "remove_stop_words",
    "sentences",
    "sparse_from_snapshot",
    "split_identifier",
    "stem",
    "stem_all",
    "substring_similarity",
    "word_tokens",
]
