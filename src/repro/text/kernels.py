"""Optimized string-similarity kernels: memoized, early-exit, bounded.

Drop-in mirrors of the hot functions in :mod:`repro.text.similarity`,
which stays the clarity-first **reference oracle**.  The differential
harness (``tests/text/test_kernels_differential.py``) proves the two
agree to within 1e-12 on hypothesis-generated inputs and on a frozen
golden corpus of real schema tokens, so the Harmony engine can switch
between them (``EngineConfig.similarity_kernels``) without moving a
single F1 digit.

What makes these fast:

* **process-wide token memo** — ``jaro_winkler_similarity`` caches its
  result keyed on the interned lowercase token pair (unordered: the
  measure is exactly symmetric).  Schema token vocabularies are tiny and
  recur across every candidate pair, so steady-state hit rates on the
  A12-large benchmark exceed 95%.
* **early-exit bounds** — ``jaro_winkler_upper_bound`` gives a cheap
  length-ratio cap (matches cannot exceed the shorter string), and
  ``levenshtein_distance(..., max_distance=k)`` runs a band-limited DP
  that aborts once the distance provably exceeds *k*; ``edit_similarity``
  exposes this as a ``cutoff``.  Bounded calls return an *upper bound*
  (guaranteed below the cutoff) instead of the exact value — exactness
  holds whenever the true value is at or above the cutoff.
* **Monge-Elkan row memo** — the per-token best-match row
  ``max(base(x, y) for y in ys)`` is cached against the interned token
  tuple ``ys``, so repeated path/name token lists (the structure voter
  compares every source path with every target path) cost one row each.
* **batch entry points** — ``score_pairs(pairs, measure)`` scores many
  pairs through the caches in one call, with an optional ``cutoff``.

Cache statistics are exposed via :func:`cache_stats` (the perf smoke
gate asserts on the token-cache hit rate) and reset via
:func:`clear_caches`.

>>> edit_similarity("NAME", "name")
1.0
>>> score_pairs([("name", "name"), ("po", "order")], measure="jaro_winkler")[0]
1.0
"""

from __future__ import annotations

import math
from sys import intern
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import similarity as reference
from .similarity import (  # noqa: F401  (re-exported: already near-optimal)
    dice_similarity,
    jaccard_similarity,
    longest_common_substring,
    substring_similarity,
)
from .tokenize import ngrams as _ngrams

__all__ = [
    "MongeElkanKernel",
    "blended_name_similarity",
    "cache_stats",
    "clear_caches",
    "dice_similarity",
    "edit_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaro_winkler_upper_bound",
    "levenshtein_distance",
    "longest_common_substring",
    "monge_elkan",
    "ngram_similarity",
    "note_cache_event",
    "score_pairs",
    "substring_similarity",
]

#: caches reset (not trimmed) when they outgrow this — far above any real
#: schema-token vocabulary, it is a leak backstop for pathological inputs.
MAX_CACHE_ENTRIES = 1_000_000


class CacheStats:
    """Hit/miss/eviction counters for one kernel cache."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


_token_jw_stats = CacheStats()
_me_row_stats = CacheStats()
_ngram_stats = CacheStats()
_cosine_stats = CacheStats()

_jw_cache: Dict[Tuple[str, str, float], float] = {}
_me_row_cache: Dict[Tuple[str, Tuple[str, ...]], float] = {}
_ngram_cache: Dict[Tuple[str, int], frozenset] = {}


def cache_stats() -> Dict[str, Dict[str, float]]:
    """Counters for every kernel cache, keyed by cache name.

    ``cosine`` counts the per-context documentation-cosine memo (see
    ``MatchContext.cosine``); the rest are process-wide.
    """
    out: Dict[str, Dict[str, float]] = {}
    for name, stats, cache in (
        ("token_jw", _token_jw_stats, _jw_cache),
        ("monge_elkan_rows", _me_row_stats, _me_row_cache),
        ("ngram_sets", _ngram_stats, _ngram_cache),
        ("cosine", _cosine_stats, None),
    ):
        out[name] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "hit_rate": round(stats.hit_rate, 4),
            "size": len(cache) if cache is not None else 0,
        }
    return out


def clear_caches() -> None:
    """Drop every process-wide cache and zero all statistics."""
    _jw_cache.clear()
    _me_row_cache.clear()
    _ngram_cache.clear()
    for stats in (_token_jw_stats, _me_row_stats, _ngram_stats, _cosine_stats):
        stats.reset()


def note_cache_event(cache: str, hit: bool) -> None:
    """Record a hit/miss for an externally-held kernel cache.

    ``MatchContext`` keeps its documentation-cosine memo per context
    (entries die with the context) but reports through here so one
    ``cache_stats()`` call covers the whole kernel layer.
    """
    stats = {"cosine": _cosine_stats}[cache]
    if hit:
        stats.hits += 1
    else:
        stats.misses += 1


# -- Levenshtein / edit similarity ------------------------------------------------


def levenshtein_distance(a: str, b: str, max_distance: Optional[int] = None) -> int:
    """Edit distance; band-limited when *max_distance* is given.

    Without *max_distance* the result equals the reference exactly.  With
    it, the DP only fills the diagonal band of width ``2k+1`` and aborts
    as soon as every band cell exceeds *k*; the contract is:

    * true distance ``<= max_distance`` → exact distance;
    * true distance ``>  max_distance`` → ``max_distance + 1``.

    >>> levenshtein_distance("kitten", "sitting")
    3
    >>> levenshtein_distance("kitten", "sitting", max_distance=1)
    2
    """
    if a == b:
        return 0
    len_a, len_b = len(a), len(b)
    if not len_a:
        return len_b
    if not len_b:
        return len_a
    if max_distance is None:
        return _levenshtein_full(a, b)
    k = max_distance
    if k < 0:
        raise ValueError("max_distance must be >= 0")
    if abs(len_a - len_b) > k:
        return k + 1
    infinity = k + 1
    previous = [j if j <= k else infinity for j in range(len_b + 1)]
    for i in range(1, len_a + 1):
        ch_a = a[i - 1]
        lo = max(1, i - k)
        hi = min(len_b, i + k)
        current = [infinity] * (len_b + 1)
        current[0] = i if i <= k else infinity
        band_min = current[0] if lo == 1 else infinity
        for j in range(lo, hi + 1):
            cost = 0 if ch_a == b[j - 1] else 1
            value = previous[j - 1] + cost
            if previous[j] + 1 < value:
                value = previous[j] + 1
            if current[j - 1] + 1 < value:
                value = current[j - 1] + 1
            if value > infinity:
                value = infinity
            current[j] = value
            if value < band_min:
                band_min = value
        if band_min >= infinity:
            return infinity
        previous = current
    return previous[len_b] if previous[len_b] <= k else infinity


def _levenshtein_full(a: str, b: str) -> int:
    """Unbounded DP, inner loop tightened (locals, no per-cell min() call)."""
    if len(a) < len(b):
        a, b = b, a  # fewer rows allocated; distance is symmetric
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        append = current.append
        left = i
        for j, ch_b in enumerate(b, start=1):
            value = previous[j - 1] + (0 if ch_a == ch_b else 1)
            up = previous[j] + 1
            if up < value:
                value = up
            if left + 1 < value:
                value = left + 1
            append(value)
            left = value
        previous = current
    return previous[-1]


def edit_similarity(a: str, b: str, cutoff: Optional[float] = None) -> float:
    """1 - normalized edit distance, case-insensitive.

    With *cutoff*, the Levenshtein DP is band-limited: when the true
    similarity is ``>= cutoff`` the exact value is returned; otherwise
    some value strictly below *cutoff* (an upper bound) comes back and
    the quadratic DP is cut short.

    >>> edit_similarity("NAME", "name")
    1.0
    >>> edit_similarity("abcdefgh", "zzzzzzzz", cutoff=0.9) < 0.9
    True
    """
    a, b = a.lower(), b.lower()
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if cutoff is None or cutoff <= 0.0:
        return 1.0 - levenshtein_distance(a, b) / longest
    max_distance = int(math.floor((1.0 - cutoff) * longest + 1e-9))
    distance = levenshtein_distance(a, b, max_distance=max_distance)
    return 1.0 - distance / longest


# -- Jaro / Jaro-Winkler ----------------------------------------------------------


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity, case-insensitive; bit-identical to the reference.

    The match scan is O(|a| + |b|) instead of O(|a| · window): per-character
    position lists over *b* with monotone pointers replace the reference's
    inner window scan, selecting exactly the same greedy leftmost-unused
    matches (the window floor only ever grows, so a skipped position can
    never become eligible again).
    """
    a, b = a.lower(), b.lower()
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    len_a, len_b = len(a), len(b)
    window = max(len_a, len_b) // 2 - 1
    if window < 0:
        window = 0
    positions: Dict[str, List[int]] = {}
    for j, ch in enumerate(b):
        positions.setdefault(ch, []).append(j)
    pointers: Dict[str, int] = {}
    a_flags = [False] * len_a
    b_flags = [False] * len_b
    matches = 0
    for i, ch in enumerate(a):
        plist = positions.get(ch)
        if plist is None:
            continue
        p = pointers.get(ch, 0)
        count = len(plist)
        lo = i - window
        while p < count and plist[p] < lo:
            p += 1
        if p < count and plist[p] <= i + window:
            j = plist[p]
            a_flags[i] = b_flags[j] = True
            matches += 1
            p += 1
        pointers[ch] = p
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if a_flags[i]:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    # keep the exact expression (and evaluation order) of the reference
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_upper_bound(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Cheap O(1) upper bound on ``jaro_winkler_similarity(a, b)``.

    At most ``min(|a|, |b|)`` characters can match, so Jaro is capped at
    ``(min/max + 2) / 3``; the Winkler boost is capped by a full 4-char
    prefix.  Used by :func:`score_pairs` to skip hopeless pairs when a
    *cutoff* is supplied.
    """
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    shorter, longer = sorted((len(a), len(b)))
    jaro_cap = (shorter / longer + 2.0) / 3.0
    prefix_cap = min(4, shorter)
    return jaro_cap + prefix_cap * prefix_scale * (1.0 - jaro_cap)


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Memoized Jaro-Winkler over interned lowercase token pairs.

    The measure is exactly symmetric, so the cache key is the unordered
    pair; schema token vocabularies recur constantly across candidate
    pairs, which is where the speedup comes from.
    """
    a = intern(a.lower())
    b = intern(b.lower())
    key = (a, b, prefix_scale) if a <= b else (b, a, prefix_scale)
    value = _jw_cache.get(key)
    if value is not None:
        _token_jw_stats.hits += 1
        return value
    _token_jw_stats.misses += 1
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b or prefix == 4:
            break
        prefix += 1
    value = jaro + prefix * prefix_scale * (1.0 - jaro)
    if len(_jw_cache) >= MAX_CACHE_ENTRIES:
        _jw_cache.clear()
        _token_jw_stats.evictions += 1
    _jw_cache[key] = value
    return value


# -- n-gram similarity ------------------------------------------------------------


def _ngram_set(text: str, n: int) -> frozenset:
    key = (text, n)
    value = _ngram_cache.get(key)
    if value is not None:
        _ngram_stats.hits += 1
        return value
    _ngram_stats.misses += 1
    value = frozenset(_ngrams(text, n))
    if len(_ngram_cache) >= MAX_CACHE_ENTRIES:
        _ngram_cache.clear()
        _ngram_stats.evictions += 1
    _ngram_cache[key] = value
    return value


def ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Dice coefficient over cached character n-gram sets."""
    set_a = _ngram_set(a, n)
    set_b = _ngram_set(b, n)
    if not set_a and not set_b:
        return 1.0
    denom = len(set_a) + len(set_b)
    if denom == 0:
        return 1.0
    return 2.0 * len(set_a & set_b) / denom


# -- Monge-Elkan ------------------------------------------------------------------


def _row_best(token: str, others: Tuple[str, ...]) -> float:
    """``max(jaro_winkler(token, y) for y in others)``, memoized per row."""
    key = (token, others)
    value = _me_row_cache.get(key)
    if value is not None:
        _me_row_stats.hits += 1
        return value
    _me_row_stats.misses += 1
    value = max(jaro_winkler_similarity(token, y) for y in others)
    if len(_me_row_cache) >= MAX_CACHE_ENTRIES:
        _me_row_cache.clear()
        _me_row_stats.evictions += 1
    _me_row_cache[key] = value
    return value


def monge_elkan(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    base: Optional[Callable[[str, str], float]] = None,
) -> float:
    """Monge-Elkan with per-token best-match rows memoized.

    *base* defaults to the memoized Jaro-Winkler; passing the reference
    ``jaro_winkler_similarity`` selects the same fast path (they are
    differentially proven equal).  Any other *base* falls back to direct
    evaluation — wrap it in a :class:`MongeElkanKernel` to memoize.
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    if base is None or base is jaro_winkler_similarity or base is reference.jaro_winkler_similarity:
        ta = tuple(intern(t.lower()) for t in tokens_a)
        tb = tuple(intern(t.lower()) for t in tokens_b)
        forward = sum(_row_best(x, tb) for x in ta) / len(ta)
        backward = sum(_row_best(y, ta) for y in tb) / len(tb)
        return (forward + backward) / 2.0

    def directed(xs: Sequence[str], ys: Sequence[str]) -> float:
        return sum(max(base(x, y) for y in ys) for x in xs) / len(xs)

    return (directed(tokens_a, tokens_b) + directed(tokens_b, tokens_a)) / 2.0


class MongeElkanKernel:
    """Monge-Elkan around a caller-supplied token measure, fully memoized.

    For bases that are not the stock Jaro-Winkler (Cupid's thesaurus
    token measure, say) the process-wide caches cannot be shared — two
    matchers may carry different thesauri.  Each kernel instance owns a
    token-pair memo and a best-match row memo instead; both die with the
    instance.  The pair memo keys on the *ordered* pair because arbitrary
    bases need not be symmetric.
    """

    def __init__(self, base: Callable[[str, str], float]) -> None:
        self.base = base
        self._pairs: Dict[Tuple[str, str], float] = {}
        self._rows: Dict[Tuple[str, Tuple[str, ...]], float] = {}
        self.hits = 0
        self.misses = 0

    def _pair(self, a: str, b: str) -> float:
        key = (a, b)
        value = self._pairs.get(key)
        if value is None:
            value = self.base(a, b)
            self._pairs[key] = value
        return value

    def _row(self, token: str, others: Tuple[str, ...]) -> float:
        key = (token, others)
        value = self._rows.get(key)
        if value is not None:
            self.hits += 1
            return value
        self.misses += 1
        value = max(self._pair(token, y) for y in others)
        self._rows[key] = value
        return value

    def similarity(self, tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
        if not tokens_a and not tokens_b:
            return 1.0
        if not tokens_a or not tokens_b:
            return 0.0
        ta, tb = tuple(tokens_a), tuple(tokens_b)
        forward = sum(self._row(x, tb) for x in ta) / len(ta)
        backward = sum(self._row(y, ta) for y in tb) / len(tb)
        return (forward + backward) / 2.0

    def cache_info(self) -> Dict[str, int]:
        return {
            "pairs": len(self._pairs),
            "rows": len(self._rows),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._pairs.clear()
        self._rows.clear()
        self.hits = 0
        self.misses = 0


def blended_name_similarity(
    a: str,
    b: str,
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
) -> float:
    """The name voter's four-measure max, with exact early exits.

    Returns a value equal to the reference blend (the plain ``max`` of
    edit, Jaro-Winkler, trigram and Monge-Elkan similarity) while doing
    less work: measures run cheapest-first with a running best, the
    whole-string Jaro-Winkler is skipped when its length-ratio upper
    bound cannot beat the best so far, and the edit DP is band-limited at
    the best so far.  Both shortcuts only suppress values that a ``max``
    would discard anyway, so the result is exact — the differential
    harness checks this blend directly.
    """
    best = ngram_similarity(a, b)
    monge = monge_elkan(tokens_a, tokens_b)
    if monge > best:
        best = monge
    if jaro_winkler_upper_bound(a, b) > best:
        winkler = jaro_winkler_similarity(a, b)
        if winkler > best:
            best = winkler
    edit = edit_similarity(a, b, cutoff=best)
    if edit > best:
        best = edit
    return best


# -- batch entry points -----------------------------------------------------------

#: measures usable with :func:`score_pairs`
_STRING_MEASURES: Dict[str, Callable[..., float]] = {
    "jaro": jaro_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "edit": edit_similarity,
    "ngram": ngram_similarity,
}


def score_pairs(
    pairs: Sequence[Tuple[Sequence[str], Sequence[str]]],
    measure: str = "jaro_winkler",
    cutoff: Optional[float] = None,
) -> List[float]:
    """Score many pairs through the kernel caches in one call.

    *measure* is one of ``jaro``, ``jaro_winkler``, ``edit``, ``ngram``
    (string pairs) or ``monge_elkan`` (token-sequence pairs).  With
    *cutoff*, pairs whose cheap upper bound already falls below it are
    skipped: the returned value is then that upper bound (strictly below
    *cutoff*), not the exact similarity — callers thresholding at
    *cutoff* see identical accept/reject decisions either way.
    """
    if measure == "monge_elkan":
        return [monge_elkan(a, b) for a, b in pairs]
    try:
        func = _STRING_MEASURES[measure]
    except KeyError:
        raise ValueError(
            f"unknown measure {measure!r}; expected one of "
            f"{sorted(_STRING_MEASURES) + ['monge_elkan']}"
        ) from None
    out: List[float] = []
    for a, b in pairs:
        if cutoff is not None:
            if measure in ("jaro", "jaro_winkler"):
                bound = jaro_winkler_upper_bound(a, b)
                if bound < cutoff:
                    out.append(bound)
                    continue
            elif measure == "edit":
                out.append(edit_similarity(a, b, cutoff=cutoff))
                continue
        out.append(func(a, b))
    return out
