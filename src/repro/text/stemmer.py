"""Porter stemmer (M.F. Porter, 1980), implemented from scratch.

Harmony's linguistic preprocessing stems tokens so that ``shipping`` /
``shipped`` / ``ships`` all compare equal.  This is a faithful
implementation of the original algorithm's five steps.
"""

from __future__ import annotations

from typing import Iterable, List

_VOWELS = frozenset("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The Porter measure m: the number of VC sequences in C?(VC){m}V?."""
    forms = ""
    for i in range(len(stem)):
        forms += "c" if _is_consonant(stem, i) else "v"
    m = 0
    i = 0
    # skip initial consonants
    while i < len(forms) and forms[i] == "c":
        i += 1
    while i < len(forms):
        # consume vowels
        while i < len(forms) and forms[i] == "v":
            i += 1
        if i < len(forms):  # a consonant cluster follows -> one VC
            m += 1
            while i < len(forms) and forms[i] == "c":
                i += 1
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """*o: stem ends cvc where the final c is not w, x or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str, m_min: int) -> str:
    """If *word* ends with *suffix* and the stem's measure > m_min, swap it."""
    stem = word[: -len(suffix)]
    if _measure(stem) > m_min:
        return stem + replacement
    return word


_STEP2 = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
)

_STEP3 = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4 = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment",
    "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def stem(word: str) -> str:
    """Stem one lowercase word.

    >>> stem("shipping")
    'ship'
    >>> stem("relational")
    'relat'
    >>> stem("aviation")
    'aviat'
    """
    word = word.lower()
    if len(word) <= 2:
        return word

    # Step 1a: plurals
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies"):
        word = word[:-2]
    elif word.endswith("ss"):
        pass
    elif word.endswith("s"):
        word = word[:-1]

    # Step 1b: -ed / -ing
    if word.endswith("eed"):
        if _measure(word[:-3]) > 0:
            word = word[:-1]
    else:
        flag = False
        if word.endswith("ed") and _contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and _contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                word += "e"
            elif _ends_double_consonant(word) and word[-1] not in "lsz":
                word = word[:-1]
            elif _measure(word) == 1 and _ends_cvc(word):
                word += "e"

    # Step 1c: y -> i
    if word.endswith("y") and _contains_vowel(word[:-1]):
        word = word[:-1] + "i"

    # Step 2
    for suffix, replacement in _STEP2:
        if word.endswith(suffix):
            word = _replace_suffix(word, suffix, replacement, 0)
            break

    # Step 3
    for suffix, replacement in _STEP3:
        if word.endswith(suffix):
            word = _replace_suffix(word, suffix, replacement, 0)
            break

    # Step 4
    for suffix in _STEP4:
        if word.endswith(suffix):
            stem_part = word[: -len(suffix)]
            if suffix == "ion" and not stem_part.endswith(("s", "t")):
                continue
            if _measure(stem_part) > 1:
                word = stem_part
            break

    # Step 5a: remove final e
    if word.endswith("e"):
        stem_part = word[:-1]
        m = _measure(stem_part)
        if m > 1 or (m == 1 and not _ends_cvc(stem_part)):
            word = stem_part

    # Step 5b: ll -> l
    if word.endswith("ll") and _measure(word) > 1:
        word = word[:-1]

    return word


def stem_all(tokens: Iterable[str]) -> List[str]:
    """Stem every token in a stream."""
    return [stem(t) for t in tokens]
