"""Sparse TF-IDF vectors over interned term ids.

:class:`~repro.text.tfidf.TfIdfCorpus` is the clarity-first reference:
one ``{term: weight}`` dict per document, cosine as a dict probe per
term.  That representation is what profiling shows the documentation
voter spending its time in once the string kernels are memoized — every
candidate pair pays hash lookups over string keys, and pairs that share
no vocabulary at all still pay the full probe loop.

:class:`SparseTfIdf` is the packed mirror the fast match path runs on:

* terms are interned to integer ids in a corpus-level vocabulary;
* each document becomes parallel *sorted* ``array('l')`` (term ids) /
  ``array('d')`` (L2-normalized weights) arrays with its norm
  precomputed, so cosine is a sorted merge over machine integers;
* a postings list (inverted index: term id → documents containing it)
  backs :meth:`top_k_similar` and :meth:`all_pairs`, which only ever
  touch document pairs sharing at least one term — pairs that share
  nothing are never visited and have cosine exactly ``0.0`` (the
  preprocessing pipeline already dropped stop words, so co-occurrence
  means a real content word is shared).

IDF and the learned ``word_weights`` (Section 4.3 feedback) fold into a
single id-indexed ``idf · weight`` array.  Staleness is tracked against
the corpus's two revision counters: ``revision`` (document set changed →
rebuild vocabulary + structure) and ``weights_revision`` (feedback moved
a word weight → refresh weights and norms only, structure survives).

:meth:`SparseTfIdf.all_pairs` — the documentation voter's one-sweep
cross-partition scoring — additionally routes through an optional-NumPy
seam mirroring the flooding ``SweepBackend`` pattern: when NumPy is
importable (``all_pairs_backend="auto"``, the default), the per-document
postings walk is replaced by a CSR-style sparse matmul — indptr/indices/
data arrays assembled zero-copy from the interned term-id arrays, then
multiplied per vocabulary chunk into the document-pair similarity
matrix.  The sorted-merge path stays the dependency-free reference;
agreement is differentially tested to ≤1e-12 (accumulation order
differs, so CSR is near- but not bit-identical).

The differential harness (``tests/text/test_tfidf_sparse_differential
.py``) proves agreement with the reference ``TfIdfCorpus.cosine`` to
within 1e-12 on hypothesis-generated corpora and the golden schema
corpus, and engine-level equivalence of mapping matrices.
"""

from __future__ import annotations

import heapq
import math
from array import array
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from .tfidf import CorpusSnapshot, TfIdfCorpus

__all__ = [
    "ALL_PAIRS_BACKENDS",
    "SparseTfIdf",
    "all_pairs_stats",
    "reset_all_pairs_stats",
    "sparse_from_snapshot",
]

#: valid ``SparseTfIdf(all_pairs_backend=...)`` selectors
ALL_PAIRS_BACKENDS = ("auto", "merge", "csr")

#: past this many document-pair cells the CSR path would allocate
#: oversized dense similarity/co-occurrence matrices; ``"auto"`` falls
#: back to the sorted merge instead (recorded in the stats below — no
#: silent cap)
_CSR_DENSE_CELL_LIMIT = 4_000_000

#: vocabulary chunk width for the blocked CSR matmul
_CSR_TERM_CHUNK = 2048

#: process-wide all_pairs routing counters — which implementation ran
#: each sweep; surfaced via :meth:`HarmonyEngine.fastpath_stats` and
#: asserted in perf_smoke.py
_ALL_PAIRS_STATS = {
    "allpairs_csr_sweeps": 0,
    "allpairs_merge_sweeps": 0,
    "allpairs_csr_oversize_fallbacks": 0,
}


def all_pairs_stats() -> Dict[str, int]:
    """A snapshot of the ``all_pairs`` routing counters."""
    return dict(_ALL_PAIRS_STATS)


def reset_all_pairs_stats() -> None:
    for key in _ALL_PAIRS_STATS:
        _ALL_PAIRS_STATS[key] = 0


def _probe_numpy():
    """Import numpy if available, else ``None`` (never raises)."""
    try:
        import numpy
    except Exception:
        return None
    return numpy


def sparse_from_snapshot(
    snapshot: CorpusSnapshot, doc_ids: Optional[Iterable[str]] = None
) -> "SparseTfIdf":
    """A warm :class:`SparseTfIdf` over a :class:`CorpusSnapshot` subset.

    The per-worker rehydration path of N-way matching: the parent ships
    one snapshot of every schema's preprocessed documentation, and each
    worker builds its per-pair sparse engine from the relevant *doc_ids*
    without re-running the linguistic pipeline.  The packed structure is
    built eagerly so the first ``all_pairs`` sweep pays no lazy-build
    latency inside a timed section.
    """
    sparse = SparseTfIdf(snapshot.rehydrate(doc_ids))
    sparse._ensure_current()
    return sparse


class SparseTfIdf:
    """A packed, id-interned view of a :class:`TfIdfCorpus`.

    The view is lazy and self-validating: every public method first
    checks the corpus's revision counters and rebuilds exactly the
    layer (structure or weights) that went stale.
    """

    def __init__(
        self, corpus: TfIdfCorpus, all_pairs_backend: str = "auto"
    ) -> None:
        if all_pairs_backend not in ALL_PAIRS_BACKENDS:
            raise ValueError(
                f"unknown all_pairs backend {all_pairs_backend!r}; "
                f"expected one of {ALL_PAIRS_BACKENDS}"
            )
        self.corpus = corpus
        self._all_pairs_backend = all_pairs_backend
        self._structure_rev: Optional[int] = None
        self._weights_rev: Optional[int] = None
        #: corpus-level vocabulary: term → interned integer id
        self._term_ids: Dict[str, int] = {}
        self._doc_ids: List[str] = []
        self._doc_index: Dict[str, int] = {}
        #: per document: sorted term ids and the parallel 1+log(tf) factors
        self._doc_terms: List[array] = []
        self._doc_tfs: List[array] = []
        #: per document: L2-normalized weights parallel to ``_doc_terms``
        self._doc_weights: List[array] = []
        #: per document: the raw L2 norm the weights were divided by
        self._doc_norms: List[float] = []
        #: postings: term id → (doc indexes, their normalized weights)
        self._postings_docs: Dict[int, array] = {}
        self._postings_weights: Dict[int, array] = {}
        #: rebuild counters (tests assert invalidation granularity)
        self.structure_builds: int = 0
        self.weight_refreshes: int = 0

    # -- staleness -----------------------------------------------------------

    def _ensure_current(self) -> None:
        if self._structure_rev != self.corpus.revision:
            self._build_structure()
            self._structure_rev = self.corpus.revision
            self._weights_rev = None
        if self._weights_rev != self.corpus.weights_revision:
            self._refresh_weights()
            self._weights_rev = self.corpus.weights_revision

    def _build_structure(self) -> None:
        """Intern the vocabulary and pack per-document term-id arrays."""
        corpus = self.corpus
        self._term_ids = {
            term: tid for tid, term in enumerate(sorted(corpus._document_frequency))
        }
        self._doc_ids = list(corpus._documents)
        self._doc_index = {doc: i for i, doc in enumerate(self._doc_ids)}
        self._doc_terms = []
        self._doc_tfs = []
        term_ids = self._term_ids
        for doc in self._doc_ids:
            items = sorted(
                (term_ids[term], 1.0 + math.log(tf))
                for term, tf in corpus._documents[doc].items()
            )
            self._doc_terms.append(array("l", (tid for tid, _ in items)))
            self._doc_tfs.append(array("d", (factor for _, factor in items)))
        self.structure_builds += 1

    def _refresh_weights(self) -> None:
        """Fold IDF and learned word weights into the packed arrays."""
        corpus = self.corpus
        term_weight = array("d", bytes(8 * len(self._term_ids)))
        for term, tid in self._term_ids.items():
            term_weight[tid] = corpus.idf(term) * corpus.weight(term)
        self._doc_weights = []
        self._doc_norms = []
        for terms, tfs in zip(self._doc_terms, self._doc_tfs):
            weights = array(
                "d", (tf * term_weight[tid] for tid, tf in zip(terms, tfs))
            )
            norm = math.sqrt(sum(value * value for value in weights))
            if norm > 0:
                for i in range(len(weights)):
                    weights[i] /= norm
            self._doc_weights.append(weights)
            self._doc_norms.append(norm)
        postings_docs: Dict[int, array] = {}
        postings_weights: Dict[int, array] = {}
        for index, (terms, weights) in enumerate(
            zip(self._doc_terms, self._doc_weights)
        ):
            for tid, weight in zip(terms, weights):
                docs = postings_docs.get(tid)
                if docs is None:
                    docs = postings_docs[tid] = array("l")
                    postings_weights[tid] = array("d")
                docs.append(index)
                postings_weights[tid].append(weight)
        self._postings_docs = postings_docs
        self._postings_weights = postings_weights
        self.weight_refreshes += 1

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_current()
        return len(self._doc_ids)

    @property
    def vocabulary_size(self) -> int:
        self._ensure_current()
        return len(self._term_ids)

    def vector(self, doc_id: str) -> Tuple[array, array]:
        """The document's (sorted term ids, normalized weights) arrays."""
        self._ensure_current()
        index = self._doc_index.get(doc_id)
        if index is None:
            return array("l"), array("d")
        return self._doc_terms[index], self._doc_weights[index]

    def norm(self, doc_id: str) -> float:
        """The raw L2 norm of the document's unnormalized weight vector."""
        self._ensure_current()
        index = self._doc_index.get(doc_id)
        return self._doc_norms[index] if index is not None else 0.0

    def stats(self) -> Dict[str, int]:
        self._ensure_current()
        return {
            "documents": len(self._doc_ids),
            "vocabulary": len(self._term_ids),
            "postings": sum(len(docs) for docs in self._postings_docs.values()),
            "structure_builds": self.structure_builds,
            "weight_refreshes": self.weight_refreshes,
        }

    # -- similarity ----------------------------------------------------------

    def cosine(self, doc_a: str, doc_b: str) -> float:
        """Cosine similarity via a sorted merge over interned term ids."""
        self._ensure_current()
        index_a = self._doc_index.get(doc_a)
        index_b = self._doc_index.get(doc_b)
        if index_a is None or index_b is None:
            return 0.0
        return self._dot(index_a, index_b)

    def _dot(self, index_a: int, index_b: int) -> float:
        terms_a, weights_a = self._doc_terms[index_a], self._doc_weights[index_a]
        terms_b, weights_b = self._doc_terms[index_b], self._doc_weights[index_b]
        i = j = 0
        len_a, len_b = len(terms_a), len(terms_b)
        total = 0.0
        while i < len_a and j < len_b:
            ta = terms_a[i]
            tb = terms_b[j]
            if ta == tb:
                total += weights_a[i] * weights_b[j]
                i += 1
                j += 1
            elif ta < tb:
                i += 1
            else:
                j += 1
        return total

    def top_k_similar(
        self, doc_id: str, k: int, min_sim: float = 0.0
    ) -> List[Tuple[str, float]]:
        """The *k* most similar documents, strongest first.

        Only documents sharing at least one term with *doc_id* are ever
        scored (one postings walk); ties break deterministically on the
        document id.
        """
        self._ensure_current()
        index = self._doc_index.get(doc_id)
        if index is None or k <= 0:
            return []
        accumulator: Dict[int, float] = {}
        for tid, weight in zip(self._doc_terms[index], self._doc_weights[index]):
            docs = self._postings_docs[tid]
            doc_weights = self._postings_weights[tid]
            for other, other_weight in zip(docs, doc_weights):
                if other != index:
                    accumulator[other] = (
                        accumulator.get(other, 0.0) + weight * other_weight
                    )
        scored = [
            (sim, self._doc_ids[other])
            for other, sim in accumulator.items()
            if sim >= min_sim
        ]
        best = heapq.nsmallest(k, scored, key=lambda item: (-item[0], item[1]))
        return [(doc, sim) for sim, doc in best]

    def all_pairs(
        self,
        min_sim: float = 0.0,
        group_of: Optional[Callable[[str], Hashable]] = None,
    ) -> Dict[Tuple[str, str], float]:
        """Cosine for every document pair sharing at least one term.

        Returns ``{(doc_i, doc_j): sim}`` where ``doc_i`` precedes
        ``doc_j`` in corpus insertion order.  Pairs absent from the
        result have cosine exactly ``0.0`` (no shared vocabulary), so a
        caller can treat the table as total.  With *group_of*, only
        pairs whose groups differ are scored — the documentation voter
        passes the source/target partition so same-schema pairs are
        never touched.

        Routing follows the instance's ``all_pairs_backend``:
        ``"merge"`` always runs the postings sorted-merge reference;
        ``"csr"`` demands the NumPy CSR matmul (raising
        :class:`ImportError` with the install remedy when NumPy is
        absent); ``"auto"`` (default) picks CSR when NumPy is importable
        and the corpus fits the dense pair-matrix budget, silently the
        merge otherwise.  Both implementations agree to ≤1e-12.
        """
        self._ensure_current()
        groups = (
            [group_of(doc) for doc in self._doc_ids]
            if group_of is not None
            else None
        )
        selector = self._all_pairs_backend
        if selector != "merge":
            np = _probe_numpy()
            if np is None:
                if selector == "csr":
                    raise ImportError(
                        "all_pairs_backend='csr' requires NumPy, which is "
                        "not importable; install it with `pip install "
                        ".[fast]` (or `pip install numpy`), or use "
                        "all_pairs_backend='auto' to fall back to the "
                        "sorted-merge sweep silently"
                    )
            else:
                n = len(self._doc_ids)
                if selector == "csr" or n * n <= _CSR_DENSE_CELL_LIMIT:
                    _ALL_PAIRS_STATS["allpairs_csr_sweeps"] += 1
                    return self._all_pairs_csr(np, min_sim, groups)
                _ALL_PAIRS_STATS["allpairs_csr_oversize_fallbacks"] += 1
        _ALL_PAIRS_STATS["allpairs_merge_sweeps"] += 1
        return self._all_pairs_merge(min_sim, groups)

    def _all_pairs_merge(
        self,
        min_sim: float,
        groups: Optional[List[Hashable]],
    ) -> Dict[Tuple[str, str], float]:
        """The dependency-free postings-walk reference implementation."""
        out: Dict[Tuple[str, str], float] = {}
        postings_docs = self._postings_docs
        postings_weights = self._postings_weights
        for index, (terms, weights) in enumerate(
            zip(self._doc_terms, self._doc_weights)
        ):
            group = groups[index] if groups is not None else None
            accumulator: Dict[int, float] = {}
            get = accumulator.get
            for tid, weight in zip(terms, weights):
                docs = postings_docs[tid]
                doc_weights = postings_weights[tid]
                for position in range(len(docs)):
                    other = docs[position]
                    if other > index and (groups is None or groups[other] != group):
                        accumulator[other] = (
                            get(other, 0.0) + weight * doc_weights[position]
                        )
            if not accumulator:
                continue
            doc_id = self._doc_ids[index]
            doc_ids = self._doc_ids
            for other, sim in accumulator.items():
                if sim >= min_sim:
                    out[(doc_id, doc_ids[other])] = sim
        return out

    def _all_pairs_csr(
        self,
        np,
        min_sim: float,
        groups: Optional[List[Hashable]],
    ) -> Dict[Tuple[str, str], float]:
        """CSR-style sparse matmul over the interned term-id arrays.

        The packed per-document arrays concatenate (zero-copy via
        ``np.frombuffer``) into the canonical CSR triple — ``indptr``
        (document row offsets), ``indices`` (term ids), ``data``
        (normalized weights) — and X·Xᵀ is evaluated per vocabulary
        chunk: each chunk scatters its CSR entries into a dense
        (documents × chunk) block and one matmul accumulates the
        document-pair similarity matrix.  A parallel 0/1-pattern matmul
        (float32 — the counts are small integers, exact well past any
        real document length) counts shared terms, so the result's
        *membership* (pairs sharing at least one term) matches the merge
        path exactly; values agree to ≤1e-12 (summation order differs
        across chunks).

        A two-way *groups* partition — the documentation voter's
        source/target split — takes a rectangular fast path: only the
        (group A × group B) cross block is ever scattered or multiplied,
        a ~4× FLOP cut over the square product at an even split.
        """
        n = len(self._doc_ids)
        if n == 0:
            return {}
        lengths = np.fromiter(
            (len(terms) for terms in self._doc_terms), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        nnz = int(indptr[n])
        if nnz == 0:
            return {}
        int_dtype = np.dtype(f"i{self._doc_terms[0].itemsize or 8}")
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            if hi > lo:
                indices[lo:hi] = np.frombuffer(self._doc_terms[i], dtype=int_dtype)
                data[lo:hi] = np.frombuffer(self._doc_weights[i], dtype=np.float64)
        rows = np.repeat(np.arange(n, dtype=np.int64), lengths)

        group_ids = None
        if groups is not None:
            interned: Dict[Hashable, int] = {}
            group_ids = np.fromiter(
                (interned.setdefault(group, len(interned)) for group in groups),
                dtype=np.int64,
                count=n,
            )
            if len(interned) == 2:
                return self._all_pairs_csr_bipartite(
                    np, min_sim, group_ids, indices, data, rows
                )

        vocabulary = len(self._term_ids)
        sims = np.zeros((n, n))
        cooc = np.zeros((n, n), dtype=np.float32)
        for lo in range(0, vocabulary, _CSR_TERM_CHUNK):
            hi = min(vocabulary, lo + _CSR_TERM_CHUNK)
            mask = (indices >= lo) & (indices < hi)
            if not mask.any():
                continue
            block_rows = rows[mask]
            block_cols = indices[mask] - lo
            block = np.zeros((n, hi - lo))
            block[block_rows, block_cols] = data[mask]
            sims += block @ block.T
            pattern = np.zeros((n, hi - lo), dtype=np.float32)
            pattern[block_rows, block_cols] = 1.0
            cooc += pattern @ pattern.T

        keep = np.triu(cooc > 0.0, k=1)
        if min_sim > 0.0:
            keep &= sims >= min_sim
        if group_ids is not None:
            keep &= group_ids[:, None] != group_ids[None, :]
        doc_ids = self._doc_ids
        left, right = np.nonzero(keep)
        values = sims[keep]
        return {
            (doc_ids[i], doc_ids[j]): float(sim)
            for i, j, sim in zip(left.tolist(), right.tolist(), values.tolist())
        }

    def _all_pairs_csr_bipartite(
        self, np, min_sim, group_ids, indices, data, rows
    ) -> Dict[Tuple[str, str], float]:
        """The rectangular (group A × group B) CSR product.

        Each side's CSR entries scatter into their own dense chunk block
        and one ``A @ Bᵀ`` per chunk accumulates exactly the cross-group
        slice of the pair matrix — same chunk summation order as the
        square path restricted to the kept cells, so values are
        identical to it.  Result keys keep the corpus-insertion-order
        orientation the merge path produces.
        """
        in_a = group_ids == group_ids[0]
        a_docs = np.nonzero(in_a)[0]
        b_docs = np.nonzero(~in_a)[0]
        na, nb = len(a_docs), len(b_docs)
        if na == 0 or nb == 0:
            return {}
        remap = np.zeros(len(group_ids), dtype=np.int64)
        remap[a_docs] = np.arange(na)
        remap[b_docs] = np.arange(nb)
        entry_in_a = in_a[rows]
        entry_rows = remap[rows]

        vocabulary = len(self._term_ids)
        sims = np.zeros((na, nb))
        cooc = np.zeros((na, nb), dtype=np.float32)
        for lo in range(0, vocabulary, _CSR_TERM_CHUNK):
            hi = min(vocabulary, lo + _CSR_TERM_CHUNK)
            mask = (indices >= lo) & (indices < hi)
            a_mask = mask & entry_in_a
            b_mask = mask & ~entry_in_a
            if not a_mask.any() or not b_mask.any():
                continue
            a_block = np.zeros((na, hi - lo))
            a_block[entry_rows[a_mask], indices[a_mask] - lo] = data[a_mask]
            b_block = np.zeros((nb, hi - lo))
            b_block[entry_rows[b_mask], indices[b_mask] - lo] = data[b_mask]
            sims += a_block @ b_block.T
            a_pattern = np.zeros((na, hi - lo), dtype=np.float32)
            a_pattern[entry_rows[a_mask], indices[a_mask] - lo] = 1.0
            b_pattern = np.zeros((nb, hi - lo), dtype=np.float32)
            b_pattern[entry_rows[b_mask], indices[b_mask] - lo] = 1.0
            cooc += a_pattern @ b_pattern.T

        keep = cooc > 0.0
        if min_sim > 0.0:
            keep &= sims >= min_sim
        doc_ids = self._doc_ids
        a_orig = a_docs.tolist()
        b_orig = b_docs.tolist()
        left, right = np.nonzero(keep)
        values = sims[keep]
        out: Dict[Tuple[str, str], float] = {}
        for i, j, sim in zip(left.tolist(), right.tolist(), values.tolist()):
            a, b = a_orig[i], b_orig[j]
            if a < b:
                out[(doc_ids[a], doc_ids[b])] = sim
            else:
                out[(doc_ids[b], doc_ids[a])] = sim
        return out

    def __repr__(self) -> str:
        return (
            f"SparseTfIdf(documents={len(self.corpus)}, "
            f"structure_builds={self.structure_builds})"
        )
