"""Stop-word list for linguistic preprocessing.

A compact English list tuned for schema documentation: function words plus
a handful of words that are ubiquitous in data-dictionary definitions
("identifies", "code", "value" are *kept* — they are discriminative for
domain elements — but pure glue like "the", "of", "which" is dropped).
"""

from __future__ import annotations

from typing import Iterable, List

STOP_WORDS = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by can did do does doing down
    during each few for from further had has have having he her here hers him
    his how i if in into is it its itself just me more most my no nor not of
    off on once only or other our ours out over own same she should so some
    such than that the their theirs them then there these they this those
    through to too under until up very was we were what when where which while
    who whom why will with you your yours
    """.split()
)


def remove_stop_words(tokens: Iterable[str]) -> List[str]:
    """Drop stop words (and bare single letters) from a token stream."""
    return [
        t for t in tokens
        if t not in STOP_WORDS and not (len(t) == 1 and t.isalpha())
    ]


def is_stop_word(token: str) -> bool:
    return token in STOP_WORDS
