"""String and set similarity measures used by the match voters.

All functions return values in ``[0, 1]`` where 1 means identical.  They
are written for clarity first; the inputs are schema names and token sets,
which are short.  This module is the **reference oracle** for the
optimized mirrors in :mod:`repro.text.kernels` — the differential harness
(``tests/text/test_kernels_differential.py``) asserts the two agree to
within 1e-12 on every pair, so keep any semantic change here in lockstep
with the kernels.

Normalization conventions, uniform across every *string* measure
(``edit_similarity``, ``jaro_similarity``, ``jaro_winkler_similarity``,
``ngram_similarity``, ``substring_similarity``):

* **case-insensitive** — both inputs are lowercased before comparison
  (schema identifiers differ in convention, not meaning);
* **two empty strings are identical** — similarity 1.0;
* **exactly one empty string matches nothing** — similarity 0.0
  (for ``ngram_similarity`` both rules apply to the alphanumeric squash
  the n-grams are computed on, so a string of pure punctuation behaves
  as empty).

``levenshtein_distance`` and ``longest_common_substring`` are raw,
case-sensitive building blocks and deliberately exempt: they return
counts, not similarities.  The set measures (``jaccard_similarity``,
``dice_similarity``) compare whatever hashables they are given and do not
touch case.
"""

from __future__ import annotations

from typing import Collection, Sequence

from .tokenize import ngrams


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance (insert / delete / substitute, unit costs)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + cost, # substitution
                )
            )
        previous = current
    return previous[-1]


def edit_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance, case-insensitive.

    >>> edit_similarity("name", "name")
    1.0
    """
    a, b = a.lower(), b.lower()
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity — robust to transpositions in short strings.

    Case-insensitive, like every string measure in this module.

    >>> jaro_similarity("NAME", "name")
    1.0
    """
    a, b = a.lower(), b.lower()
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, ch in enumerate(a):
        lo = max(0, i - window)
        hi = min(len(b), i + window + 1)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ch:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len(a)):
        if a_flags[i]:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted for common prefixes (length ≤ 4)."""
    a, b = a.lower(), b.lower()
    jaro = jaro_similarity(a, b)
    prefix = 0
    for ch_a, ch_b in zip(a, b):
        if ch_a != ch_b or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def jaccard_similarity(a: Collection[str], b: Collection[str]) -> float:
    """Jaccard coefficient of two token collections.

    >>> jaccard_similarity({"first", "name"}, {"name"})
    0.5
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


def dice_similarity(a: Collection[str], b: Collection[str]) -> float:
    """Sørensen–Dice coefficient of two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    denom = len(set_a) + len(set_b)
    if denom == 0:
        return 1.0
    return 2.0 * len(set_a & set_b) / denom


def ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Dice coefficient over character n-grams — catches shared substrings
    that token-level measures miss (``lastname`` vs ``lname``)."""
    return dice_similarity(ngrams(a, n), ngrams(b, n))


def monge_elkan(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    base=jaro_winkler_similarity,
) -> float:
    """Monge-Elkan: average best-match similarity of a's tokens against b's.

    Symmetrized by averaging both directions so the result is order-free.
    """
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0

    def directed(xs: Sequence[str], ys: Sequence[str]) -> float:
        return sum(max(base(x, y) for y in ys) for x in xs) / len(xs)

    return (directed(tokens_a, tokens_b) + directed(tokens_b, tokens_a)) / 2.0


def blended_name_similarity(
    a: str,
    b: str,
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
) -> float:
    """The name voter's blend: the best of whole-string edit / Jaro-Winkler
    similarity, character trigrams and token-level Monge-Elkan — any one
    kind of agreement is evidence."""
    return max(
        edit_similarity(a, b),
        jaro_winkler_similarity(a, b),
        ngram_similarity(a, b),
        monge_elkan(tokens_a, tokens_b),
    )


def longest_common_substring(a: str, b: str) -> int:
    """Length of the longest common substring (dynamic programming)."""
    if not a or not b:
        return 0
    best = 0
    previous = [0] * (len(b) + 1)
    for ch_a in a:
        current = [0] * (len(b) + 1)
        for j, ch_b in enumerate(b, start=1):
            if ch_a == ch_b:
                current[j] = previous[j - 1] + 1
                best = max(best, current[j])
        previous = current
    return best


def substring_similarity(a: str, b: str) -> float:
    """Longest common substring normalized by the shorter string length."""
    a, b = a.lower(), b.lower()
    if not a or not b:
        return 1.0 if a == b else 0.0
    return longest_common_substring(a, b) / min(len(a), len(b))
