"""Tokenization of schema identifiers and documentation text.

Harmony's engine *"begins with linguistic preprocessing (e.g., tokenization,
stop-word removal, and stemming) of element names and any associated
documentation"* (Section 4).  Schema names need identifier-aware splitting:
``shippingInfo`` → ``shipping info``, ``FIRST_NAME`` → ``first name``,
``POLine2`` → ``po line 2``.
"""

from __future__ import annotations

import re
from typing import List

_CAMEL_BOUNDARY = re.compile(
    r"""
    (?<=[a-z0-9])(?=[A-Z])        # fooBar -> foo|Bar
    | (?<=[A-Z])(?=[A-Z][a-z])    # HTTPServer -> HTTP|Server
    | (?<=[A-Za-z])(?=[0-9])      # line2 -> line|2
    | (?<=[0-9])(?=[A-Za-z])      # 2nd stays; 2line -> 2|line
    """,
    re.VERBOSE,
)

_NON_WORD = re.compile(r"[^A-Za-z0-9]+")
_WORD = re.compile(r"[A-Za-z]+|[0-9]+")
_SENTENCE_END = re.compile(r"(?<=[.!?])\s+")


def split_identifier(identifier: str) -> List[str]:
    """Split a schema identifier into lowercase word tokens.

    Handles camelCase, PascalCase, snake_case, kebab-case, dotted.paths and
    digit boundaries.

    >>> split_identifier("shippingInfo")
    ['shipping', 'info']
    >>> split_identifier("FIRST_NAME")
    ['first', 'name']
    >>> split_identifier("POLine2")
    ['po', 'line', '2']
    """
    pieces = [p for p in _NON_WORD.split(identifier) if p]
    tokens: List[str] = []
    for piece in pieces:
        tokens.extend(t.lower() for t in _CAMEL_BOUNDARY.split(piece) if t)
    return tokens


def word_tokens(text: str) -> List[str]:
    """Extract lowercase word/number tokens from free text.

    >>> word_tokens("Converts feet to meters (approx.)")
    ['converts', 'feet', 'to', 'meters', 'approx']
    """
    return [m.group(0).lower() for m in _WORD.finditer(text)]


def sentences(text: str) -> List[str]:
    """Split documentation into sentences (period/question/exclamation)."""
    text = text.strip()
    if not text:
        return []
    return [s.strip() for s in _SENTENCE_END.split(text) if s.strip()]


def name_tokens(name: str, documentation: str = "") -> List[str]:
    """All tokens a matcher should consider for an element: identifier
    tokens followed by documentation word tokens."""
    tokens = split_identifier(name)
    if documentation:
        tokens.extend(word_tokens(documentation))
    return tokens


def ngrams(text: str, n: int = 3) -> List[str]:
    """Character n-grams of a lowercased, squashed string.

    >>> ngrams("name", 3)
    ['nam', 'ame']
    """
    squashed = _NON_WORD.sub("", text.lower())
    if len(squashed) < n:
        return [squashed] if squashed else []
    return [squashed[i : i + n] for i in range(len(squashed) - n + 1)]
