"""A small TF-IDF vector space for documentation matching.

Harmony's bag-of-words matcher *"weights each word based on inverted
frequency"* (Section 4.3) and compares element definitions by cosine
similarity.  The corpus is the set of all element documentation strings in
the two schemata being matched, so IDF reflects which words actually
discriminate within this matching problem.

The word-weight dictionary is mutable on purpose: the feedback-learning
loop (Section 4.3) *"increases or decreases word weight based on which
words were most predictive"*.
"""

from __future__ import annotations

import math
from array import array
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Optional

from .stemmer import stem_all
from .stopwords import remove_stop_words
from .tokenize import word_tokens


def preprocess(text: str) -> List[str]:
    """The full linguistic pipeline: tokenize → stop-words → stem."""
    return stem_all(remove_stop_words(word_tokens(text)))


class CorpusSnapshot:
    """A compact, picklable capture of preprocessed documentation.

    N-way matching builds one TF-IDF corpus *per schema pair*, so every
    schema's documentation is re-preprocessed (tokenize → stop-words →
    stem) once per partner — O(N) redundant passes per schema across an
    N-way workload, and the single hottest part of a cold corpus build.
    A snapshot runs the pipeline exactly once per document and stores the
    result as interned term ids (one shared vocabulary list, one
    ``array('l')`` id/count pair per document), which makes it cheap to
    pickle into worker processes.

    Per-document term order is preserved exactly as ``Counter(preprocess
    (text))`` yields it (first occurrence order), so a corpus rehydrated
    from a snapshot is *bit-identical* to one built from the raw text —
    including the float-summation order inside
    :meth:`TfIdfCorpus.vector` norms.
    """

    __slots__ = ("_terms", "_doc_terms", "_doc_counts")

    def __init__(
        self,
        terms: List[str],
        doc_terms: Dict[str, array],
        doc_counts: Dict[str, array],
    ) -> None:
        self._terms = terms
        self._doc_terms = doc_terms
        self._doc_counts = doc_counts

    @classmethod
    def build(cls, documents: Mapping[str, str]) -> "CorpusSnapshot":
        """Preprocess *documents* (``{doc_id: raw text}``) once."""
        term_ids: Dict[str, int] = {}
        terms: List[str] = []
        doc_terms: Dict[str, array] = {}
        doc_counts: Dict[str, array] = {}
        for doc_id, text in documents.items():
            counts = Counter(preprocess(text))
            ids = array("l")
            tfs = array("l")
            for term, tf in counts.items():
                tid = term_ids.get(term)
                if tid is None:
                    tid = term_ids[term] = len(terms)
                    terms.append(term)
                ids.append(tid)
                tfs.append(tf)
            doc_terms[doc_id] = ids
            doc_counts[doc_id] = tfs
        return cls(terms, doc_terms, doc_counts)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_terms

    def __len__(self) -> int:
        return len(self._doc_terms)

    @property
    def vocabulary_size(self) -> int:
        return len(self._terms)

    def document_ids(self) -> List[str]:
        return list(self._doc_terms)

    def counts(self, doc_id: str) -> Counter:
        """The document's term counts, in original first-occurrence order."""
        terms = self._terms
        counts: Counter = Counter()
        for tid, tf in zip(self._doc_terms[doc_id], self._doc_counts[doc_id]):
            counts[terms[tid]] = tf
        return counts

    def rehydrate(self, doc_ids: Optional[Iterable[str]] = None) -> "TfIdfCorpus":
        """A :class:`TfIdfCorpus` over *doc_ids* (default: every document),
        identical to one built from the raw texts but with no preprocessing
        paid."""
        corpus = TfIdfCorpus()
        ids = self._doc_terms if doc_ids is None else doc_ids
        for doc_id in ids:
            corpus.add_document_counts(doc_id, self.counts(doc_id))
        return corpus

    def __repr__(self) -> str:
        return (
            f"CorpusSnapshot(documents={len(self._doc_terms)}, "
            f"vocabulary={len(self._terms)})"
        )


class TfIdfCorpus:
    """A corpus of documents with TF-IDF weighting and cosine similarity."""

    def __init__(self) -> None:
        self._documents: Dict[str, Counter] = {}
        self._document_frequency: Counter = Counter()
        #: multiplicative per-word adjustment learned from user feedback;
        #: 1.0 means "no adjustment".
        self.word_weights: Dict[str, float] = {}
        #: bumped whenever word weights change, so cached cosine-derived
        #: scores held outside the corpus know when to re-score.
        self.weights_revision: int = 0
        #: bumped whenever the document set changes (add or replace) —
        #: adding a document shifts every IDF, so cosine memos held
        #: outside the corpus must check this alongside
        #: ``weights_revision`` to stay valid.
        self.revision: int = 0
        self._vectors: Optional[Dict[str, Dict[str, float]]] = None

    def add_document(self, doc_id: str, text: str) -> None:
        """Add (or replace) a document; invalidates cached vectors."""
        self.add_document_counts(doc_id, Counter(preprocess(text)))

    def add_document_counts(self, doc_id: str, counts: Mapping[str, int]) -> None:
        """Add (or replace) a document from precomputed term counts.

        The preprocessed-counts entry point of :class:`CorpusSnapshot`:
        term iteration order of *counts* is preserved as the document's
        term order, so feeding back ``Counter(preprocess(text))`` is
        indistinguishable from :meth:`add_document`.
        """
        if doc_id in self._documents:
            for term in self._documents[doc_id]:
                self._document_frequency[term] -= 1
                if self._document_frequency[term] <= 0:
                    del self._document_frequency[term]
        counts = Counter(counts)
        self._documents[doc_id] = counts
        for term in counts:
            self._document_frequency[term] += 1
        self._vectors = None
        self.revision += 1

    def remove_document(self, doc_id: str) -> None:
        """Remove a document; invalidates cached vectors.

        Removing shifts every IDF just like adding does, so the document
        ``revision`` is bumped.  Unknown ids are a no-op.
        """
        counts = self._documents.pop(doc_id, None)
        if counts is None:
            return
        for term in counts:
            self._document_frequency[term] -= 1
            if self._document_frequency[term] <= 0:
                del self._document_frequency[term]
        self._vectors = None
        self.revision += 1

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._document_frequency)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency."""
        df = self._document_frequency.get(term, 0)
        return math.log((1 + len(self._documents)) / (1 + df)) + 1.0

    def weight(self, term: str) -> float:
        """Learned multiplicative weight for a term (default 1.0)."""
        return self.word_weights.get(term, 1.0)

    def adjust_weight(self, term: str, factor: float) -> None:
        """Multiply a term's learned weight by *factor*, clamped to
        [0.1, 10] so no single feedback round can zero a word out."""
        current = self.word_weights.get(term, 1.0) * factor
        self.word_weights[term] = max(0.1, min(10.0, current))
        self.weights_revision += 1
        self._vectors = None

    def vector(self, doc_id: str) -> Dict[str, float]:
        """The document's L2-normalized TF-IDF vector."""
        if self._vectors is None:
            self._vectors = {}
        if doc_id not in self._vectors:
            counts = self._documents.get(doc_id)
            if counts is None:
                return {}
            raw = {
                term: (1.0 + math.log(tf)) * self.idf(term) * self.weight(term)
                for term, tf in counts.items()
            }
            norm = math.sqrt(sum(v * v for v in raw.values()))
            if norm > 0:
                raw = {t: v / norm for t, v in raw.items()}
            self._vectors[doc_id] = raw
        return self._vectors[doc_id]

    def cosine(self, doc_a: str, doc_b: str) -> float:
        """Cosine similarity between two documents in the corpus."""
        vec_a = self.vector(doc_a)
        vec_b = self.vector(doc_b)
        if not vec_a or not vec_b:
            return 0.0
        if len(vec_b) < len(vec_a):
            vec_a, vec_b = vec_b, vec_a
        return sum(weight * vec_b.get(term, 0.0) for term, weight in vec_a.items())

    def terms(self, doc_id: str) -> List[str]:
        """The distinct (preprocessed) terms of a document."""
        return sorted(self._documents.get(doc_id, ()))

    def shared_terms(self, doc_a: str, doc_b: str) -> List[str]:
        a = self._documents.get(doc_a)
        b = self._documents.get(doc_b)
        if not a or not b:
            return []
        return sorted(set(a) & set(b))


def cosine_of_counts(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity of two raw term-weight mappings (no IDF)."""
    if not a or not b:
        return 0.0
    dot = sum(w * b.get(t, 0.0) for t, w in a.items())
    norm_a = math.sqrt(sum(w * w for w in a.values()))
    norm_b = math.sqrt(sum(w * w for w in b.values()))
    if norm_a == 0 or norm_b == 0:
        return 0.0
    return dot / (norm_a * norm_b)
