"""Thesaurus with synonym sets and abbreviation expansion.

One of Harmony's match voters *"expands the elements' names using a
thesaurus"* (Section 4).  Since WordNet is not available offline we ship a
compact built-in thesaurus biased toward data-modeling and the paper's
domains (commerce, personnel, air traffic control), and the class accepts
user-supplied synonym sets so domain thesauri can be plugged in.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

#: Built-in synonym sets.  Every word in a set is considered an exact
#: synonym of every other word in that set.
DEFAULT_SYNSETS: Tuple[FrozenSet[str], ...] = tuple(
    frozenset(group)
    for group in [
        # people & organizations
        {"person", "individual", "people", "human"},
        {"employee", "worker", "staff", "personnel"},
        {"customer", "client", "buyer", "purchaser", "patron"},
        {"vendor", "supplier", "seller", "provider"},
        {"company", "organization", "organisation", "firm", "corporation",
         "enterprise", "business"},
        {"department", "division", "unit", "section", "branch"},
        {"manager", "supervisor", "boss", "lead"},
        {"student", "pupil", "learner"},
        {"professor", "instructor", "teacher", "faculty", "lecturer"},
        # names & identity
        {"name", "title", "label", "designation"},
        {"id", "identifier", "key", "number", "code"},
        {"ssn", "social"},
        # commerce
        {"order", "purchase", "po"},
        {"item", "product", "good", "article", "merchandise"},
        {"line", "detail", "entry"},
        {"price", "cost", "amount", "charge", "fee"},
        {"total", "sum", "aggregate"},
        {"quantity", "count", "qty", "number"},
        {"invoice", "bill", "statement"},
        {"payment", "remittance"},
        {"discount", "rebate", "reduction"},
        {"tax", "levy", "duty"},
        {"ship", "shipping", "shipment", "delivery", "dispatch", "freight"},
        {"address", "location", "residence"},
        {"city", "town", "municipality"},
        {"state", "province", "region"},
        {"country", "nation"},
        {"zip", "postcode", "postal"},
        # time
        {"date", "day", "time"},
        {"birthdate", "birthday", "dob", "born"},
        {"start", "begin", "commence", "initiate"},
        {"end", "finish", "stop", "terminate", "complete"},
        {"year", "annual", "yearly"},
        # money & employment
        {"salary", "wage", "pay", "compensation", "earnings"},
        {"account", "acct"},
        {"balance", "remainder"},
        # air traffic control (the paper's running domain)
        {"aircraft", "airplane", "plane", "airframe"},
        {"airport", "aerodrome", "airfield"},
        {"runway", "airstrip", "strip"},
        {"flight", "sortie"},
        {"route", "routing", "path", "course", "airway"},
        {"facility", "installation", "site"},
        {"weather", "meteorology", "metar"},
        {"arrival", "arrive", "inbound"},
        {"departure", "depart", "outbound"},
        {"carrier", "airline", "operator"},
        {"altitude", "elevation", "height", "level"},
        {"speed", "velocity"},
        {"destination", "dest"},
        {"origin", "source"},
        # generic modeling vocabulary
        {"type", "kind", "category", "class", "classification"},
        {"status", "state", "condition"},
        {"description", "definition", "comment", "remark", "note", "text"},
        {"phone", "telephone", "tel"},
        {"email", "mail"},
        {"first", "given", "fore"},
        {"last", "family", "sur"},
        {"middle", "mid"},
    ]
)

#: Common schema abbreviations, expanded before synonym lookup.
DEFAULT_ABBREVIATIONS: Mapping[str, str] = {
    "acct": "account",
    "addr": "address",
    "amt": "amount",
    "avg": "average",
    "bal": "balance",
    "bday": "birthday",
    "cat": "category",
    "cd": "code",
    "co": "company",
    "cnt": "count",
    "ctry": "country",
    "cust": "customer",
    "dept": "department",
    "desc": "description",
    "descr": "description",
    "dest": "destination",
    "dob": "birthdate",
    "dt": "date",
    "emp": "employee",
    "fname": "firstname",
    "freq": "frequency",
    "govt": "government",
    "hr": "hour",
    "lname": "lastname",
    "loc": "location",
    "max": "maximum",
    "mgr": "manager",
    "min": "minimum",
    "mo": "month",
    "msg": "message",
    "no": "number",
    "nbr": "number",
    "num": "number",
    "org": "organization",
    "ord": "order",
    "pct": "percent",
    "phn": "phone",
    "po": "purchaseorder",
    "prod": "product",
    "qty": "quantity",
    "rte": "route",
    "sal": "salary",
    "seq": "sequence",
    "sess": "session",
    "ssn": "socialsecuritynumber",
    "st": "state",
    "std": "standard",
    "tel": "telephone",
    "tot": "total",
    "txn": "transaction",
    "typ": "type",
    "usr": "user",
    "val": "value",
    "wt": "weight",
    "yr": "year",
    "zip": "zipcode",
}


class Thesaurus:
    """Synonym lookup with abbreviation expansion.

    >>> t = Thesaurus.default()
    >>> t.are_synonyms("vendor", "supplier")
    True
    >>> t.expand_abbreviation("qty")
    'quantity'
    """

    def __init__(
        self,
        synsets: Iterable[Iterable[str]] = (),
        abbreviations: Mapping[str, str] = (),
    ) -> None:
        self._synset_of: Dict[str, Set[str]] = {}
        self._abbreviations: Dict[str, str] = dict(abbreviations or {})
        for group in synsets:
            self.add_synset(group)

    @classmethod
    def default(cls) -> "Thesaurus":
        """The built-in thesaurus shipped with this library."""
        return cls(DEFAULT_SYNSETS, DEFAULT_ABBREVIATIONS)

    @classmethod
    def empty(cls) -> "Thesaurus":
        return cls()

    # -- construction ------------------------------------------------------

    def add_synset(self, words: Iterable[str]) -> None:
        """Add a synonym set, merging with any overlapping existing sets."""
        group: Set[str] = {w.lower() for w in words}
        merged = set(group)
        for word in group:
            existing = self._synset_of.get(word)
            if existing is not None:
                merged |= existing
        for word in merged:
            self._synset_of[word] = merged

    def add_abbreviation(self, short: str, full: str) -> None:
        self._abbreviations[short.lower()] = full.lower()

    # -- lookup ---------------------------------------------------------------

    def expand_abbreviation(self, token: str) -> str:
        """Expand a known abbreviation, else return the token unchanged."""
        return self._abbreviations.get(token.lower(), token.lower())

    def synonyms(self, word: str) -> Set[str]:
        """All synonyms of *word* (including itself), after abbreviation
        expansion."""
        word = self.expand_abbreviation(word)
        return set(self._synset_of.get(word, {word}))

    def are_synonyms(self, a: str, b: str) -> bool:
        a = self.expand_abbreviation(a)
        b = self.expand_abbreviation(b)
        if a == b:
            return True
        return b in self._synset_of.get(a, ())

    def expand_tokens(self, tokens: Iterable[str]) -> List[str]:
        """Expand a token stream into tokens + all their synonyms (dedup,
        order-preserving)."""
        seen: Set[str] = set()
        out: List[str] = []
        for token in tokens:
            for word in sorted(self.synonyms(token)):
                if word not in seen:
                    seen.add(word)
                    out.append(word)
        return out

    def __len__(self) -> int:
        return len({id(s) for s in self._synset_of.values()})
