"""Hand-built base ER models for the evaluation scenarios.

Three domains the paper's narrative touches: commerce (purchase orders —
Figures 2/3), air traffic flow management (Section 4.1's sub-schema
example: facilities, weather, routing) and personnel (Section 3.3's
Professor/Employee/Student example).  Every element is documented in data-
dictionary register, and coding schemes are explicit domains — the
enterprise situation Section 2 describes.
"""

from __future__ import annotations

from typing import Any, Dict


def commerce_model() -> Dict[str, Any]:
    return {
        "name": "commerce",
        "documentation": "Purchase order processing for the supply directorate.",
        "entities": [
            {
                "name": "PurchaseOrder",
                "documentation": "A purchase order placed by a customer for one or more items.",
                "attributes": [
                    {"name": "orderNumber", "type": "integer", "key": True,
                     "documentation": "The unique number that identifies the purchase order."},
                    {"name": "orderDate", "type": "date",
                     "documentation": "The date on which the purchase order was placed."},
                    {"name": "status", "type": "string", "domain": "OrderStatus",
                     "documentation": "The code that denotes the lifecycle status of the order."},
                    {"name": "subtotal", "type": "decimal",
                     "documentation": "The sum of the line item prices before tax is applied."},
                    {"name": "comment", "type": "string", "nullable": True,
                     "documentation": "Free text remark supplied by the customer."},
                ],
            },
            {
                "name": "Customer",
                "documentation": "A person or organization that places purchase orders.",
                "attributes": [
                    {"name": "customerNumber", "type": "integer", "key": True,
                     "documentation": "The unique number that identifies the customer."},
                    {"name": "firstName", "type": "string",
                     "documentation": "The given name of the customer."},
                    {"name": "lastName", "type": "string",
                     "documentation": "The family name of the customer."},
                    {"name": "phone", "type": "string", "nullable": True,
                     "documentation": "The telephone number used to contact the customer."},
                ],
            },
            {
                "name": "OrderLine",
                "documentation": "One line of a purchase order identifying an ordered item.",
                "attributes": [
                    {"name": "lineNumber", "type": "integer", "key": True,
                     "documentation": "The sequence number of the line within the order."},
                    {"name": "itemCode", "type": "string",
                     "documentation": "The code that identifies the ordered product."},
                    {"name": "quantity", "type": "integer",
                     "documentation": "The count of units of the item that were ordered."},
                    {"name": "unitPrice", "type": "decimal",
                     "documentation": "The price charged for a single unit of the item."},
                ],
            },
            {
                "name": "ShippingAddress",
                "documentation": "The location to which an order is delivered.",
                "attributes": [
                    {"name": "street", "type": "string",
                     "documentation": "The street portion of the delivery address."},
                    {"name": "city", "type": "string",
                     "documentation": "The city portion of the delivery address."},
                    {"name": "state", "type": "string", "domain": "StateCode",
                     "documentation": "The code that denotes the state of the delivery address."},
                    {"name": "zip", "type": "string",
                     "documentation": "The postal code of the delivery address."},
                ],
            },
        ],
        "domains": [
            {"name": "OrderStatus", "type": "string",
             "documentation": "Lifecycle states of a purchase order.",
             "values": [
                 {"code": "OPEN", "documentation": "Order received, not shipped"},
                 {"code": "SHIP", "documentation": "Order shipped to customer"},
                 {"code": "CANC", "documentation": "Order cancelled"},
                 {"code": "HOLD", "documentation": "Order held pending review"},
             ]},
            {"name": "StateCode", "type": "string",
             "documentation": "United States state postal codes.",
             "values": [
                 {"code": "VA", "documentation": "Virginia"},
                 {"code": "MD", "documentation": "Maryland"},
                 {"code": "CA", "documentation": "California"},
                 {"code": "TX", "documentation": "Texas"},
                 {"code": "NY", "documentation": "New York"},
             ]},
        ],
    }


def air_traffic_model() -> Dict[str, Any]:
    return {
        "name": "air_traffic",
        "documentation": "Air traffic flow management: facilities, weather and routing.",
        "entities": [
            {
                "name": "Airport",
                "documentation": "A facility where aircraft arrive and depart.",
                "attributes": [
                    {"name": "airportCode", "type": "string", "key": True, "domain": "AirportCode",
                     "documentation": "The code that identifies the airport facility."},
                    {"name": "airportName", "type": "string",
                     "documentation": "The full name of the airport facility."},
                    {"name": "elevation", "type": "integer", "units": "feet",
                     "documentation": "The elevation of the airport above sea level in feet."},
                ],
            },
            {
                "name": "Runway",
                "documentation": "A strip at an airport where aircraft take off and land.",
                "attributes": [
                    {"name": "runwayDesignator", "type": "string", "key": True,
                     "documentation": "The designator that identifies the runway at its airport."},
                    {"name": "length", "type": "integer", "units": "feet",
                     "documentation": "The usable length of the runway in feet."},
                    {"name": "surfaceType", "type": "string", "domain": "SurfaceType",
                     "documentation": "The code that denotes the type of runway surface."},
                ],
            },
            {
                "name": "Flight",
                "documentation": "A scheduled movement of an aircraft between airports.",
                "attributes": [
                    {"name": "flightNumber", "type": "string", "key": True,
                     "documentation": "The number that identifies the flight."},
                    {"name": "departureTime", "type": "datetime",
                     "documentation": "The scheduled time of departure from the origin airport."},
                    {"name": "arrivalTime", "type": "datetime",
                     "documentation": "The scheduled time of arrival at the destination airport."},
                    {"name": "aircraftType", "type": "string", "domain": "AircraftType",
                     "documentation": "The code that denotes the type of aircraft flown."},
                ],
            },
            {
                "name": "WeatherReport",
                "documentation": "An observation of meteorological conditions at a facility.",
                "attributes": [
                    {"name": "observationTime", "type": "datetime", "key": True,
                     "documentation": "The time at which the weather observation was made."},
                    {"name": "visibility", "type": "decimal", "units": "miles",
                     "documentation": "The horizontal visibility at the facility in miles."},
                    {"name": "windSpeed", "type": "integer", "units": "knots",
                     "documentation": "The speed of the wind at the facility in knots."},
                ],
            },
            {
                "name": "Route",
                "documentation": "A path through the airspace between two facilities.",
                "attributes": [
                    {"name": "routeIdentifier", "type": "string", "key": True,
                     "documentation": "The identifier that designates the airspace route."},
                    {"name": "distance", "type": "decimal", "units": "miles",
                     "documentation": "The total distance of the route in nautical miles."},
                ],
            },
        ],
        "domains": [
            {"name": "AirportCode", "type": "string",
             "documentation": "International airport identifier codes.",
             "values": [
                 {"code": "IAD", "documentation": "Washington Dulles International"},
                 {"code": "DCA", "documentation": "Ronald Reagan Washington National"},
                 {"code": "BWI", "documentation": "Baltimore Washington International"},
                 {"code": "JFK", "documentation": "John F Kennedy International"},
             ]},
            {"name": "SurfaceType", "type": "string",
             "documentation": "Types of runway surface material.",
             "values": [
                 {"code": "ASPH", "documentation": "Asphalt surface"},
                 {"code": "CONC", "documentation": "Concrete surface"},
                 {"code": "TURF", "documentation": "Grass turf surface"},
                 {"code": "GRVL", "documentation": "Gravel surface"},
             ]},
            {"name": "AircraftType", "type": "string",
             "documentation": "Codes for types of aircraft.",
             "values": [
                 {"code": "B737", "documentation": "Boeing 737 narrow body"},
                 {"code": "B777", "documentation": "Boeing 777 wide body"},
                 {"code": "A320", "documentation": "Airbus A320 narrow body"},
                 {"code": "C130", "documentation": "Lockheed C-130 transport"},
             ]},
        ],
    }


def personnel_model() -> Dict[str, Any]:
    return {
        "name": "personnel",
        "documentation": "University personnel and course administration.",
        "entities": [
            {
                "name": "Employee",
                "documentation": "A person employed by the university in any capacity.",
                "attributes": [
                    {"name": "employeeNumber", "type": "integer", "key": True,
                     "documentation": "The unique number that identifies the employee."},
                    {"name": "fullName", "type": "string",
                     "documentation": "The family name and given name of the employee."},
                    {"name": "birthdate", "type": "date",
                     "documentation": "The date on which the employee was born."},
                    {"name": "salary", "type": "decimal",
                     "documentation": "The annual gross salary paid to the employee in dollars."},
                    {"name": "grade", "type": "string", "domain": "PayGrade",
                     "documentation": "The code that denotes the pay grade of the employee."},
                ],
            },
            {
                "name": "Professor",
                "documentation": "An employee who holds a faculty appointment and teaches.",
                "attributes": [
                    {"name": "facultyId", "type": "integer", "key": True,
                     "documentation": "The unique number that identifies the faculty member."},
                    {"name": "department", "type": "string",
                     "documentation": "The name of the department that holds the appointment."},
                    {"name": "tenured", "type": "boolean",
                     "documentation": "Whether the faculty member has been granted tenure."},
                ],
            },
            {
                "name": "Student",
                "documentation": "A person enrolled in courses at the university.",
                "attributes": [
                    {"name": "studentNumber", "type": "integer", "key": True,
                     "documentation": "The unique number that identifies the student."},
                    {"name": "major", "type": "string",
                     "documentation": "The name of the program of study the student pursues."},
                    {"name": "gpa", "type": "decimal",
                     "documentation": "The grade point average earned by the student."},
                ],
            },
            {
                "name": "Course",
                "documentation": "A unit of instruction offered by a department.",
                "attributes": [
                    {"name": "courseCode", "type": "string", "key": True,
                     "documentation": "The code that identifies the course offering."},
                    {"name": "title", "type": "string",
                     "documentation": "The descriptive title of the course."},
                    {"name": "credits", "type": "integer",
                     "documentation": "The count of credit hours awarded for the course."},
                ],
            },
        ],
        "domains": [
            {"name": "PayGrade", "type": "string",
             "documentation": "Pay grade codes for university employees.",
             "values": [
                 {"code": "GS7", "documentation": "General schedule grade seven"},
                 {"code": "GS9", "documentation": "General schedule grade nine"},
                 {"code": "GS11", "documentation": "General schedule grade eleven"},
                 {"code": "GS13", "documentation": "General schedule grade thirteen"},
             ]},
        ],
    }


BASE_MODELS = {
    "commerce": commerce_model,
    "air_traffic": air_traffic_model,
    "personnel": personnel_model,
}
