"""Matching-quality metrics.

Standard precision / recall / F1 over predicted vs true correspondences,
plus Melnik's *overall* metric (accuracy: how much post-match human work
remains).  Two selection strategies turn a confidence-scored matrix into
a predicted set: a confidence threshold, or best-match-per-source (the
GUI's maximal-confidence filter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.correspondence import Correspondence, top_correspondences
from ..core.matrix import MappingMatrix
from .groundtruth import Alignment, Pair

SELECT_THRESHOLD = "threshold"
SELECT_BEST_PER_SOURCE = "best-per-source"


@dataclass
class MatchQuality:
    """P/R/F1/overall for one prediction against one alignment."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def overall(self) -> float:
        """Melnik's overall = recall · (2 − 1/precision); can be negative
        when precision < 0.5 (fixing wrong matches costs more than they
        saved)."""
        p = self.precision
        if p == 0.0:
            return -float(self.false_positives) if self.false_positives else 0.0
        return self.recall * (2.0 - 1.0 / p)

    def row(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} "
            f"F1={self.f1:.3f} overall={self.overall:+.3f}"
        )


def evaluate_pairs(predicted: Iterable[Pair], truth: Alignment) -> MatchQuality:
    """Score a predicted pair set against the alignment."""
    predicted_set = set(predicted)
    tp = len(predicted_set & truth.pairs)
    fp = len(predicted_set - truth.pairs)
    fn = len(truth.pairs - predicted_set)
    return MatchQuality(true_positives=tp, false_positives=fp, false_negatives=fn)


def select_pairs(
    matrix: MappingMatrix,
    strategy: str = SELECT_BEST_PER_SOURCE,
    threshold: float = 0.0,
) -> List[Pair]:
    """Turn a scored matrix into a predicted correspondence set."""
    links = [c for c in matrix.cells() if c.confidence > threshold]
    if strategy == SELECT_THRESHOLD:
        return [c.pair for c in links]
    if strategy == SELECT_BEST_PER_SOURCE:
        return [c.pair for c in top_correspondences(links, per_source=True)]
    raise ValueError(f"unknown selection strategy {strategy!r}")


def evaluate_matrix(
    matrix: MappingMatrix,
    truth: Alignment,
    strategy: str = SELECT_BEST_PER_SOURCE,
    threshold: float = 0.0,
) -> MatchQuality:
    """Select + score in one step."""
    return evaluate_pairs(select_pairs(matrix, strategy, threshold), truth)


def precision_recall_curve(
    matrix: MappingMatrix,
    truth: Alignment,
    thresholds: Optional[List[float]] = None,
) -> List[Tuple[float, float, float]]:
    """(threshold, precision, recall) points across the confidence range."""
    if thresholds is None:
        thresholds = [i / 10 for i in range(0, 10)]
    curve = []
    for threshold in thresholds:
        quality = evaluate_matrix(matrix, truth, SELECT_THRESHOLD, threshold)
        curve.append((threshold, quality.precision, quality.recall))
    return curve
