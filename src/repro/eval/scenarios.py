"""Synthetic matching scenarios with known ground truth.

A scenario takes a base ER model (the "source") and derives a plausibly
independent "target" schema by controlled perturbation — synonym renames,
abbreviations, naming-convention changes, documentation paraphrase,
attribute drops and noise additions — while recording the true alignment.
The knobs mirror the paper's pragmatic considerations so the ablation
benches can sweep them:

* ``documentation`` — both sides documented / source only / none
  (Section 2: documentation is usually available; A1/A4 sweep this);
* ``keep_domains`` — coding schemes present or stripped (A5);
* ``attach_instances`` — sample values present or absent (Section 2:
  instance data is often unavailable; A4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.graph import SchemaGraph
from ..loaders.er_model import ErModelLoader
from ..text.thesaurus import DEFAULT_ABBREVIATIONS, Thesaurus
from ..text.tokenize import split_identifier
from .base_models import BASE_MODELS
from .groundtruth import Alignment

DOC_BOTH = "both"
DOC_SOURCE_ONLY = "source-only"
DOC_NONE = "none"


@dataclass
class ScenarioConfig:
    """Perturbation knobs."""

    seed: int = 7
    #: probability a name token is replaced by a thesaurus synonym
    synonym_rate: float = 0.35
    #: probability a name token is abbreviated (quantity → qty)
    abbreviation_rate: float = 0.2
    #: probability an element name flips naming convention (camel → snake)
    convention_flip_rate: float = 0.5
    #: probability an attribute is dropped from the target
    drop_rate: float = 0.1
    #: noise attributes added per entity (expected)
    noise_attributes: float = 0.7
    #: documentation availability (see module docstring)
    documentation: str = DOC_BOTH
    #: fraction of documentation words kept when paraphrasing
    paraphrase_keep: float = 0.7
    #: keep coding-scheme domains in the target
    keep_domains: bool = True
    #: fraction of a domain's codes preserved in the target
    domain_code_keep: float = 0.8
    #: attach shared instance samples to aligned attributes
    attach_instances: bool = False
    instance_sample_size: int = 12


@dataclass
class Scenario:
    """One matching problem with its reference alignment."""

    name: str
    source: SchemaGraph
    target: SchemaGraph
    alignment: Alignment
    config: ScenarioConfig


# -- name perturbation ------------------------------------------------------------

_REVERSE_ABBREVIATIONS: Dict[str, str] = {}
for _short, _full in DEFAULT_ABBREVIATIONS.items():
    # prefer the shortest abbreviation per full form
    if _full not in _REVERSE_ABBREVIATIONS or len(_short) < len(_REVERSE_ABBREVIATIONS[_full]):
        _REVERSE_ABBREVIATIONS[_full] = _short


def _perturb_name(name: str, rng: random.Random, config: ScenarioConfig,
                  thesaurus: Thesaurus) -> str:
    tokens = split_identifier(name)
    new_tokens: List[str] = []
    for token in tokens:
        replaced = token
        if rng.random() < config.synonym_rate:
            synonyms = sorted(thesaurus.synonyms(token) - {token})
            if synonyms:
                replaced = synonyms[rng.randrange(len(synonyms))]
        if replaced == token and rng.random() < config.abbreviation_rate:
            replaced = _REVERSE_ABBREVIATIONS.get(token, token)
        new_tokens.append(replaced)
    if not new_tokens:
        return name
    if rng.random() < config.convention_flip_rate:
        return "_".join(new_tokens)  # snake_case
    return new_tokens[0] + "".join(t.title() for t in new_tokens[1:])  # camelCase


def _paraphrase(doc: str, rng: random.Random, config: ScenarioConfig) -> str:
    """Keep most content words, vary the phrasing slightly."""
    words = doc.rstrip(".").split()
    kept = [w for w in words if rng.random() < config.paraphrase_keep]
    if not kept:
        kept = words[:3]
    if rng.random() < 0.5 and len(kept) > 2:
        # rotate a clause to vary word order
        pivot = rng.randrange(1, len(kept))
        kept = kept[pivot:] + kept[:pivot]
    fillers = ["recorded", "value", "for", "this", "element"]
    while rng.random() < 0.3:
        kept.append(fillers[rng.randrange(len(fillers))])
    text = " ".join(kept)
    return text[0].upper() + text[1:] + "."


_VALUE_POOLS = {
    "integer": lambda rng, i: str(rng.randrange(1, 10_000)),
    "decimal": lambda rng, i: f"{rng.uniform(1, 5000):.2f}",
    "float": lambda rng, i: f"{rng.uniform(0, 100):.3f}",
    "date": lambda rng, i: f"200{rng.randrange(6)}-{rng.randrange(1,13):02d}-{rng.randrange(1,29):02d}",
    "datetime": lambda rng, i: f"2006-{rng.randrange(1,13):02d}-{rng.randrange(1,29):02d}T{rng.randrange(24):02d}:00:00",
    "boolean": lambda rng, i: rng.choice(["true", "false"]),
    "string": lambda rng, i: rng.choice(
        ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"]
    ) + str(i),
}


def _instance_values(rng: random.Random, datatype: str, count: int) -> List[str]:
    generator = _VALUE_POOLS.get(datatype or "string", _VALUE_POOLS["string"])
    return [generator(rng, i) for i in range(count)]


# -- scenario generation ----------------------------------------------------------------


def generate_scenario(
    base: Dict[str, Any],
    config: Optional[ScenarioConfig] = None,
    name: Optional[str] = None,
) -> Scenario:
    """Derive a (source, target, alignment) triple from a base ER model."""
    config = config or ScenarioConfig()
    rng = random.Random(config.seed)
    thesaurus = Thesaurus.default()
    # work on a private copy: perturbation annotates it (instance samples)
    # and the caller's base model must stay pristine
    import copy

    source_dict = copy.deepcopy(base)
    if config.documentation == DOC_NONE:
        source_dict = _strip_docs(source_dict, strip=True)
    source_name = base["name"]
    target_name = f"{source_name}_prime"

    target_dict: Dict[str, Any] = {"name": target_name, "entities": [], "domains": []}
    alignment = Alignment()
    domain_name_map: Dict[str, str] = {}
    target_docs = config.documentation == DOC_BOTH

    for domain in source_dict.get("domains", []):
        if not config.keep_domains:
            continue
        new_domain_name = _perturb_name(domain["name"], rng, config, thesaurus)
        domain_name_map[domain["name"]] = new_domain_name
        values = []
        for value in domain.get("values", []):
            code = value["code"] if isinstance(value, dict) else value
            if rng.random() > config.domain_code_keep:
                continue
            entry: Dict[str, str] = {"code": code}
            if target_docs and isinstance(value, dict) and value.get("documentation"):
                entry["documentation"] = _paraphrase(value["documentation"], rng, config)
            values.append(entry)
        if len(values) < 2:  # a scheme needs at least two codes to be one
            continue
        new_domain = {"name": new_domain_name, "type": domain.get("type", "string"),
                      "values": values}
        if target_docs and domain.get("documentation"):
            new_domain["documentation"] = _paraphrase(domain["documentation"], rng, config)
        target_dict["domains"].append(new_domain)
        alignment.add(
            f"{source_name}/domain:{domain['name']}",
            f"{target_name}/domain:{new_domain_name}",
        )
        for value in values:  # preserved codes correspond value-to-value
            alignment.add(
                f"{source_name}/domain:{domain['name']}/{value['code']}",
                f"{target_name}/domain:{new_domain_name}/{value['code']}",
            )

    noise_counter = 0
    for entity in source_dict.get("entities", []):
        new_entity_name = _perturb_name(entity["name"], rng, config, thesaurus)
        new_entity: Dict[str, Any] = {"name": new_entity_name, "attributes": []}
        if target_docs and entity.get("documentation"):
            new_entity["documentation"] = _paraphrase(entity["documentation"], rng, config)
        alignment.add(f"{source_name}/{entity['name']}",
                      f"{target_name}/{new_entity_name}")
        for attribute in entity.get("attributes", []):
            if rng.random() < config.drop_rate and not attribute.get("key"):
                continue
            new_attr_name = _perturb_name(attribute["name"], rng, config, thesaurus)
            new_attr: Dict[str, Any] = {
                "name": new_attr_name,
                "type": attribute.get("type", "string"),
            }
            if attribute.get("key"):
                new_attr["key"] = True
            if target_docs and attribute.get("documentation"):
                new_attr["documentation"] = _paraphrase(attribute["documentation"], rng, config)
            domain_ref = attribute.get("domain")
            if domain_ref and config.keep_domains and domain_ref in domain_name_map:
                mapped = domain_name_map[domain_ref]
                if any(d["name"] == mapped for d in target_dict["domains"]):
                    new_attr["domain"] = mapped
            if config.attach_instances:
                shared = _instance_values(
                    rng, attribute.get("type", "string"), config.instance_sample_size
                )
                attribute.setdefault("instance_values", shared)
                # target sees an overlapping (not identical) sample
                overlap = shared[: int(len(shared) * 0.7)]
                extra = _instance_values(rng, attribute.get("type", "string"), 4)
                new_attr["instance_values"] = overlap + extra
            new_entity["attributes"].append(new_attr)
            alignment.add(
                f"{source_name}/{entity['name']}/{attribute['name']}",
                f"{target_name}/{new_entity_name}/{new_attr_name}",
            )
        # noise attributes: exist only in the target
        while rng.random() < config.noise_attributes / (1 + config.noise_attributes):
            noise_counter += 1
            new_entity["attributes"].append(
                {"name": f"auxiliary{noise_counter}", "type": "string",
                 "documentation": "Reserved for future use by the target system."
                 if target_docs else ""}
            )
            break
        target_dict["entities"].append(new_entity)

    loader = ErModelLoader()
    source_graph = loader.load_dict(source_dict)
    target_graph = loader.load_dict(target_dict)
    # prune alignment pairs whose elements were lost to perturbation edge cases
    alignment = alignment.restrict(
        source_ids=source_graph.element_ids, target_ids=target_graph.element_ids
    )
    return Scenario(
        name=name or f"{source_name}->{target_name}",
        source=source_graph,
        target=target_graph,
        alignment=alignment,
        config=config,
    )


def _strip_docs(model: Dict[str, Any], strip: bool) -> Dict[str, Any]:
    if not strip:
        return model
    import copy

    clone = copy.deepcopy(model)
    clone.pop("documentation", None)
    for entity in clone.get("entities", []) + clone.get("relationships", []):
        entity.pop("documentation", None)
        for attribute in entity.get("attributes", []):
            attribute.pop("documentation", None)
    for domain in clone.get("domains", []):
        domain.pop("documentation", None)
        for value in domain.get("values", []):
            if isinstance(value, dict):
                value.pop("documentation", None)
    return clone


def standard_suite(
    seeds: Tuple[int, ...] = (7, 19, 42),
    config: Optional[ScenarioConfig] = None,
) -> List[Scenario]:
    """The default evaluation suite: every base model × every seed."""
    config = config or ScenarioConfig()
    scenarios = []
    for model_name, factory in sorted(BASE_MODELS.items()):
        for seed in seeds:
            scenario_config = replace(config, seed=seed)
            scenarios.append(
                generate_scenario(
                    factory(), scenario_config, name=f"{model_name}@{seed}"
                )
            )
    return scenarios
