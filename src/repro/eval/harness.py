"""Experiment harness: run matchers over scenario suites and tabulate.

The benches are thin wrappers over this module, so every experiment is
also runnable programmatically (and testable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.base import Matcher
from .groundtruth import Alignment
from .metrics import (
    SELECT_BEST_PER_SOURCE,
    MatchQuality,
    evaluate_matrix,
)
from .scenarios import Scenario


@dataclass
class RunResult:
    """One matcher on one scenario."""

    matcher: str
    scenario: str
    quality: MatchQuality


@dataclass
class SuiteResult:
    """All matchers over all scenarios, with aggregation and rendering."""

    runs: List[RunResult] = field(default_factory=list)

    def for_matcher(self, name: str) -> List[RunResult]:
        return [r for r in self.runs if r.matcher == name]

    def matcher_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for run in self.runs:
            seen.setdefault(run.matcher, None)
        return list(seen)

    def mean(self, name: str, metric: str) -> float:
        runs = self.for_matcher(name)
        if not runs:
            return 0.0
        return sum(getattr(r.quality, metric) for r in runs) / len(runs)

    def to_table(self, title: str = "") -> str:
        header = (
            f"{'matcher':<16} {'precision':>10} {'recall':>10} {'F1':>10} {'overall':>10}"
        )
        lines = []
        if title:
            lines.append(title)
        lines.append(header)
        lines.append("-" * len(header))
        for name in self.matcher_names():
            lines.append(
                f"{name:<16} {self.mean(name, 'precision'):>10.3f} "
                f"{self.mean(name, 'recall'):>10.3f} {self.mean(name, 'f1'):>10.3f} "
                f"{self.mean(name, 'overall'):>+10.3f}"
            )
        return "\n".join(lines)

    def to_detail_table(self) -> str:
        lines = [f"{'matcher':<16} {'scenario':<24} {'P':>7} {'R':>7} {'F1':>7}"]
        lines.append("-" * len(lines[0]))
        for run in self.runs:
            lines.append(
                f"{run.matcher:<16} {run.scenario:<24} "
                f"{run.quality.precision:>7.3f} {run.quality.recall:>7.3f} "
                f"{run.quality.f1:>7.3f}"
            )
        return "\n".join(lines)


def run_suite(
    matchers: Sequence[Matcher],
    scenarios: Sequence[Scenario],
    strategy: str = SELECT_BEST_PER_SOURCE,
    threshold: float = 0.0,
    matcher_factory: Optional[Callable[[Matcher], Matcher]] = None,
) -> SuiteResult:
    """Run each matcher on each scenario.

    When *matcher_factory* is given it is called per (matcher, scenario)
    so that stateful matchers (Harmony learns!) start fresh each time.
    """
    result = SuiteResult()
    for matcher in matchers:
        for scenario in scenarios:
            instance = matcher_factory(matcher) if matcher_factory else matcher
            matrix = instance.match(scenario.source, scenario.target)
            quality = evaluate_matrix(
                matrix, scenario.alignment, strategy=strategy, threshold=threshold
            )
            result.runs.append(
                RunResult(matcher=matcher.name, scenario=scenario.name, quality=quality)
            )
    return result
