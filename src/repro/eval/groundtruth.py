"""Ground-truth alignments for matcher evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Set, Tuple

Pair = Tuple[str, str]


@dataclass
class Alignment:
    """The reference set of true correspondences for one matching problem."""

    pairs: Set[Pair] = field(default_factory=set)

    def add(self, source_id: str, target_id: str) -> None:
        self.pairs.add((source_id, target_id))

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self.pairs

    def __iter__(self):
        return iter(sorted(self.pairs))

    def sources(self) -> Set[str]:
        return {s for s, _ in self.pairs}

    def targets(self) -> Set[str]:
        return {t for _, t in self.pairs}

    def restrict(
        self,
        source_ids: Optional[Iterable[str]] = None,
        target_ids: Optional[Iterable[str]] = None,
    ) -> "Alignment":
        """The sub-alignment touching only the given ids (both sides)."""
        source_set = set(source_ids) if source_ids is not None else None
        target_set = set(target_ids) if target_ids is not None else None
        kept = {
            (s, t)
            for s, t in self.pairs
            if (source_set is None or s in source_set)
            and (target_set is None or t in target_set)
        }
        return Alignment(pairs=kept)

    def union(self, other: "Alignment") -> "Alignment":
        return Alignment(pairs=set(self.pairs) | set(other.pairs))
