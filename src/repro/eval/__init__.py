"""Evaluation: metrics, ground truth, scenario generation, harness."""

from .base_models import BASE_MODELS, air_traffic_model, commerce_model, personnel_model
from .groundtruth import Alignment, Pair
from .harness import RunResult, SuiteResult, run_suite
from .metrics import (
    SELECT_BEST_PER_SOURCE,
    SELECT_THRESHOLD,
    MatchQuality,
    evaluate_matrix,
    evaluate_pairs,
    precision_recall_curve,
    select_pairs,
)
from .scenarios import (
    DOC_BOTH,
    DOC_NONE,
    DOC_SOURCE_ONLY,
    Scenario,
    ScenarioConfig,
    generate_scenario,
    standard_suite,
)

__all__ = [
    "Alignment",
    "BASE_MODELS",
    "DOC_BOTH",
    "DOC_NONE",
    "DOC_SOURCE_ONLY",
    "MatchQuality",
    "Pair",
    "RunResult",
    "SELECT_BEST_PER_SOURCE",
    "SELECT_THRESHOLD",
    "Scenario",
    "ScenarioConfig",
    "SuiteResult",
    "air_traffic_model",
    "commerce_model",
    "evaluate_matrix",
    "evaluate_pairs",
    "generate_scenario",
    "personnel_model",
    "precision_recall_curve",
    "run_suite",
    "select_pairs",
    "standard_suite",
]
