"""Namespaces and CURIE-style prefix handling."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .term import IRI


class Namespace:
    """An IRI prefix that mints terms via attribute or item access.

    >>> EX = Namespace("http://example.org/")
    >>> EX.thing.value
    'http://example.org/thing'
    >>> EX["odd name"].value
    'http://example.org/odd name'
    """

    def __init__(self, base: str) -> None:
        if not base:
            raise ValueError("namespace base must be non-empty")
        self.base = base

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return IRI(self.base + local)

    def __getitem__(self, local: str) -> IRI:
        return IRI(self.base + local)

    def term(self, local: str) -> IRI:
        return IRI(self.base + local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self.base)

    def local_name(self, iri: IRI) -> str:
        """The part of *iri* after this namespace's base."""
        if iri not in self:
            raise ValueError(f"{iri} is not in namespace {self.base}")
        return iri.value[len(self.base):]

    def __repr__(self) -> str:
        return f"Namespace({self.base!r})"


#: Standard namespaces.
RDF_NS = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS_NS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
#: The integration-workbench vocabulary namespace.
IW_NS = Namespace("http://mitre.org/integration-workbench#")


class PrefixMap:
    """Bidirectional prefix ↔ namespace registry for serialization."""

    def __init__(self) -> None:
        self._by_prefix: Dict[str, Namespace] = {}

    @classmethod
    def default(cls) -> "PrefixMap":
        pm = cls()
        pm.bind("rdf", RDF_NS)
        pm.bind("rdfs", RDFS_NS)
        pm.bind("xsd", XSD_NS)
        pm.bind("iw", IW_NS)
        return pm

    def bind(self, prefix: str, namespace: Namespace) -> None:
        self._by_prefix[prefix] = namespace

    def namespaces(self) -> Dict[str, Namespace]:
        return dict(self._by_prefix)

    def compact(self, iri: IRI) -> Optional[str]:
        """Render an IRI as ``prefix:local`` if a binding covers it and the
        local part is a simple name."""
        best: Optional[Tuple[str, Namespace]] = None
        for prefix, ns in self._by_prefix.items():
            if iri in ns and (best is None or len(ns.base) > len(best[1].base)):
                best = (prefix, ns)
        if best is None:
            return None
        local = best[1].local_name(iri)
        if not local or not all(c.isalnum() or c in "_-." for c in local):
            return None
        return f"{best[0]}:{local}"

    def expand(self, curie: str) -> IRI:
        """Expand ``prefix:local`` to an IRI."""
        prefix, _, local = curie.partition(":")
        if prefix not in self._by_prefix:
            raise KeyError(f"unbound prefix {prefix!r}")
        return self._by_prefix[prefix].term(local)
