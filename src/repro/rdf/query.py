"""Basic graph pattern (BGP) queries over the triple store.

The workbench manager *"processes ad hoc queries posed to the IB"*
(Section 5.2).  This module implements the conjunctive core of SPARQL:
a query is a list of triple patterns whose positions are terms or
:class:`Variable` placeholders, optionally post-filtered by Python
predicates, with ordering/limit/projection.

Two evaluators share the solution semantics:

* :func:`evaluate_reference` — the clarity-first oracle: patterns are
  solved left-to-right with a greedy reordering heuristic (most-bound
  pattern first), one store probe per pattern per binding.
* :func:`evaluate` (the default) — the cost-based planner: join order
  is chosen by *actual* cardinality estimates from the store's O(1)
  index statistics (:meth:`TripleStore.count_matching`), each distinct
  resolved pattern hits the store once (a pattern-result memo keyed on
  the store's mutation ``revision``), and patterns whose only unbound
  variable coincides are bind-joined by set intersection on the
  permutation indexes.  :func:`explain` reports the chosen order with
  estimated vs. actual cardinalities and memo hit counts.

The planner is differentially tested against the reference on random
stores and queries (tests/rdf/test_query_planner.py): both return the
same solution multiset, always.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.errors import QueryError
from .store import TripleStore
from .term import IRI, Literal, Object, Subject, Term, term_sort_key
from .triple import Triple


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, conventionally written ``?name``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


PatternPart = Union[Term, Variable]
Binding = Dict[Variable, Term]


@dataclass(frozen=True)
class TriplePattern:
    """One pattern in a BGP; any position may be a variable."""

    subject: PatternPart
    predicate: PatternPart
    object: PatternPart

    def variables(self) -> List[Variable]:
        return [p for p in (self.subject, self.predicate, self.object)
                if isinstance(p, Variable)]

    def bound_count(self, binding: Binding) -> int:
        """How many positions are concrete under *binding*."""
        count = 0
        for part in (self.subject, self.predicate, self.object):
            if not isinstance(part, Variable) or part in binding:
                count += 1
        return count

    def resolve(self, binding: Binding) -> Tuple[Optional[Term], ...]:
        """The pattern as a store-level match pattern (None = wildcard)."""
        out: List[Optional[Term]] = []
        for part in (self.subject, self.predicate, self.object):
            if isinstance(part, Variable):
                out.append(binding.get(part))
            else:
                out.append(part)
        return tuple(out)


@dataclass
class Query:
    """A conjunctive query: patterns + filters + projection/order/limit."""

    patterns: List[TriplePattern] = field(default_factory=list)
    filters: List[Callable[[Binding], bool]] = field(default_factory=list)
    select: Optional[List[Variable]] = None
    order_by: Optional[Variable] = None
    limit: Optional[int] = None
    distinct: bool = False

    def where(self, subject: PatternPart, predicate: PatternPart,
              obj: PatternPart) -> "Query":
        """Append a triple pattern (chainable)."""
        self.patterns.append(TriplePattern(subject, predicate, obj))
        return self

    def filter(self, predicate: Callable[[Binding], bool]) -> "Query":
        """Append a post-filter over complete bindings (chainable)."""
        self.filters.append(predicate)
        return self


def _invalid_resolution(
    subject: Optional[Term], predicate: Optional[Term]
) -> bool:
    """Whether a resolved pattern can be dismissed without a store probe."""
    if predicate is not None and not isinstance(predicate, IRI):
        return True  # a literal/blank bound into predicate position can't match
    if subject is not None and isinstance(subject, Literal):
        return True  # literals are never subjects
    return False


def _extend(
    pattern: TriplePattern, triple: Triple, binding: Binding
) -> Optional[Binding]:
    """Bind the pattern's variables against one matching triple, or None
    if a repeated variable would take two different values."""
    extended = dict(binding)
    for part, value in (
        (pattern.subject, triple.subject),
        (pattern.predicate, triple.predicate),
        (pattern.object, triple.object),
    ):
        if isinstance(part, Variable):
            bound = extended.get(part)
            if bound is None:
                extended[part] = value
            elif bound != value:
                return None
    return extended


def _match_pattern(
    store: TripleStore, pattern: TriplePattern, binding: Binding
) -> Iterator[Binding]:
    subject, predicate, obj = pattern.resolve(binding)
    if _invalid_resolution(subject, predicate):
        return
    for triple in store.match(subject, predicate, obj):
        extended = _extend(pattern, triple, binding)
        if extended is not None:
            yield extended


def _finalize(query: Query, solutions: List[Binding]) -> List[Binding]:
    """Apply filters / projection / distinct / order / limit — shared by
    the reference and the planned evaluator."""
    for flt in query.filters:
        solutions = [b for b in solutions if flt(b)]
    if query.select is not None:
        projected = []
        for binding in solutions:
            missing = [v for v in query.select if v not in binding]
            if missing:
                raise QueryError(
                    f"projection variable(s) {missing} not bound by the patterns"
                )
            projected.append({v: binding[v] for v in query.select})
        solutions = projected
    if query.distinct:
        seen = set()
        unique: List[Binding] = []
        for binding in solutions:
            key = tuple(sorted(((v.name, str(t)) for v, t in binding.items())))
            if key not in seen:
                seen.add(key)
                unique.append(binding)
        solutions = unique
    if query.order_by is not None:
        var = query.order_by
        for binding in solutions:
            if var not in binding:
                raise QueryError(
                    f"order_by variable {var} not bound by the solutions"
                )
        solutions.sort(key=lambda b: term_sort_key(b[var]))
    if query.limit is not None:
        solutions = solutions[: query.limit]
    return solutions


def evaluate_reference(store: TripleStore, query: Query) -> List[Binding]:
    """The oracle evaluator: greedy most-bound-first join order, one
    store probe per pattern per binding.  The planner is differentially
    tested against this."""
    solutions: List[Binding] = [{}]
    remaining = list(query.patterns)
    while remaining:
        # Greedy join order: prefer the pattern with most bound positions
        # under the first current binding (all bindings share variables).
        probe = solutions[0] if solutions else {}
        remaining.sort(key=lambda p: -p.bound_count(probe))
        pattern = remaining.pop(0)
        next_solutions: List[Binding] = []
        for binding in solutions:
            next_solutions.extend(_match_pattern(store, pattern, binding))
        solutions = next_solutions
        if not solutions:
            break
    return _finalize(query, solutions)


# -- cost-based planner -----------------------------------------------------


@dataclass
class PlanStep:
    """One executed join step of a planned evaluation."""

    pattern: TriplePattern
    #: planner's cardinality estimate when the step was chosen
    #: (``count_matching`` under the probe binding)
    estimated: int
    #: solutions alive after the step ran
    actual: int
    #: resolved-pattern memo hits while running the step
    memo_hits: int = 0
    #: patterns consumed together with this one by an index-set
    #: intersection bind-join (shared single unbound variable)
    fused: List[TriplePattern] = field(default_factory=list)


@dataclass
class QueryPlan:
    """What :func:`explain` returns: the executed plan plus statistics."""

    steps: List[PlanStep] = field(default_factory=list)
    #: patterns never executed because the solution set emptied first
    skipped: List[TriplePattern] = field(default_factory=list)
    #: solutions before filters/projection ran
    solutions: int = 0
    #: distinct resolved patterns probed against the store
    memo_entries: int = 0
    #: store mutation revision the plan ran against
    store_revision: int = 0

    @property
    def order(self) -> List[TriplePattern]:
        return [step.pattern for step in self.steps]

    @property
    def memo_hits(self) -> int:
        return sum(step.memo_hits for step in self.steps)

    def format(self) -> str:
        """A deterministic human-readable rendering (golden-tested)."""
        lines = [
            f"query plan (store revision {self.store_revision}, "
            f"{len(self.steps)} steps)"
        ]
        for number, step in enumerate(self.steps, start=1):
            lines.append(
                f"  {number}. {_pattern_str(step.pattern)}  "
                f"est={step.estimated} actual={step.actual} "
                f"memo_hits={step.memo_hits}"
            )
            for fused in step.fused:
                lines.append(f"     ∩ {_pattern_str(fused)}  (bind-join)")
        for pattern in self.skipped:
            lines.append(f"  -- {_pattern_str(pattern)}  (skipped: no solutions left)")
        lines.append(
            f"  solutions={self.solutions} memo_entries={self.memo_entries} "
            f"memo_hits={self.memo_hits}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def _pattern_str(pattern: TriplePattern) -> str:
    parts = " ".join(
        str(part) for part in (pattern.subject, pattern.predicate, pattern.object)
    )
    return f"({parts})"


def _estimate(store: TripleStore, pattern: TriplePattern, probe: Binding) -> int:
    """Cardinality estimate for a pattern under a representative binding."""
    subject, predicate, obj = pattern.resolve(probe)
    if _invalid_resolution(subject, predicate):
        return 0
    return store.count_matching(subject, predicate, obj)


def _single_unbound_var(
    pattern: TriplePattern, probe: Binding
) -> Optional[Variable]:
    """The pattern's only unbound variable, if it occupies exactly one
    position under *probe* — the precondition for an index-set bind-join."""
    unbound: List[Variable] = [
        part
        for part in (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(part, Variable) and part not in probe
    ]
    if len(unbound) == 1:
        return unbound[0]
    return None


def _candidate_set(
    store: TripleStore, pattern: TriplePattern, binding: Binding, var: Variable
) -> AbstractSet[Term]:
    """Values *var* can take for a pattern whose two other positions are
    concrete under *binding* — straight off one permutation index."""
    subject, predicate, obj = pattern.resolve(binding)
    if _invalid_resolution(subject, predicate):
        return frozenset()
    if subject is None:
        return store.subject_set(predicate, obj)
    if predicate is None:
        return store.predicate_set(subject, obj)
    return store.object_set(subject, predicate)


def evaluate_planned(
    store: TripleStore, query: Query, plan: Optional[QueryPlan] = None
) -> List[Binding]:
    """Evaluate with cost-based join ordering, pattern-result memoization
    and set-intersection bind-joins.

    Returns the same solution multiset as :func:`evaluate_reference`
    (solution *order* may differ; use ``order_by`` for a total order).
    Pass a :class:`QueryPlan` to collect the executed plan — that is all
    :func:`explain` does.
    """
    solutions: List[Binding] = [{}]
    remaining = list(query.patterns)
    #: resolved (s, p, o) pattern → matching triples; valid for one store
    #: revision, flushed if a filter (or listener) mutates mid-query.
    memo: Dict[Tuple[Optional[Term], ...], List[Triple]] = {}
    memo_revision = store.revision
    if plan is not None:
        plan.store_revision = store.revision
    while remaining and solutions:
        probe = solutions[0]
        best_index = min(
            range(len(remaining)),
            key=lambda i: (_estimate(store, remaining[i], probe), i),
        )
        pattern = remaining.pop(best_index)
        estimated = _estimate(store, pattern, probe)
        step = PlanStep(pattern=pattern, estimated=estimated, actual=0)
        # Bind-join fusion: other patterns whose only unbound variable is
        # the same one become set intersections on the permutation
        # indexes instead of separate join steps.
        join_var = _single_unbound_var(pattern, probe)
        if join_var is not None:
            for other in list(remaining):
                if _single_unbound_var(other, probe) == join_var:
                    step.fused.append(other)
                    remaining.remove(other)
        next_solutions: List[Binding] = []
        if step.fused:
            for binding in solutions:
                candidates = _candidate_set(store, pattern, binding, join_var)
                for other in step.fused:
                    if not candidates:
                        break
                    candidates = candidates & _candidate_set(
                        store, other, binding, join_var
                    )
                for value in sorted(candidates, key=term_sort_key):
                    extended = dict(binding)
                    extended[join_var] = value
                    next_solutions.append(extended)
        else:
            for binding in solutions:
                resolved = pattern.resolve(binding)
                if _invalid_resolution(resolved[0], resolved[1]):
                    continue
                if store.revision != memo_revision:
                    memo.clear()
                    memo_revision = store.revision
                triples = memo.get(resolved)
                if triples is None:
                    triples = list(store.match(*resolved))
                    memo[resolved] = triples
                else:
                    step.memo_hits += 1
                for triple in triples:
                    extended = _extend(pattern, triple, binding)
                    if extended is not None:
                        next_solutions.append(extended)
        solutions = next_solutions
        step.actual = len(solutions)
        if plan is not None:
            plan.steps.append(step)
            plan.memo_entries = len(memo)
    if plan is not None:
        plan.skipped = list(remaining)
        plan.solutions = len(solutions)
    return _finalize(query, solutions)


def evaluate(
    store: TripleStore, query: Query, use_planner: bool = True
) -> List[Binding]:
    """Evaluate a query, returning the list of solution bindings.

    The cost-based planner is the default; pass ``use_planner=False``
    for the reference left-to-right evaluator (same solution multiset —
    differentially tested — but no statistics, memo or bind-joins).
    """
    if use_planner:
        return evaluate_planned(store, query)
    return evaluate_reference(store, query)


def explain(store: TripleStore, query: Query) -> QueryPlan:
    """Run the planned evaluation and return the executed plan: join
    order, per-pattern estimated vs. actual cardinalities, memo hits and
    bind-join fusions — the manager's query service (Section 5.2)
    surfaces this for ad hoc queries."""
    plan = QueryPlan()
    evaluate_planned(store, query, plan=plan)
    return plan


def select(
    store: TripleStore,
    patterns: Sequence[Tuple[PatternPart, PatternPart, PatternPart]],
    select_vars: Optional[Sequence[Variable]] = None,
    **kwargs: Any,
) -> List[Binding]:
    """Convenience one-shot query.

    >>> # select(store, [(Variable('s'), RDF_TYPE, SCHEMA_CLASS)])
    """
    query = Query(
        patterns=[TriplePattern(*p) for p in patterns],
        select=list(select_vars) if select_vars is not None else None,
        **kwargs,
    )
    return evaluate(store, query)


def ask(
    store: TripleStore,
    patterns: Sequence[Tuple[PatternPart, PatternPart, PatternPart]],
) -> bool:
    """Does at least one solution exist?"""
    query = Query(patterns=[TriplePattern(*p) for p in patterns], limit=1)
    return bool(evaluate(store, query))


def values(
    store: TripleStore,
    patterns: Sequence[Tuple[PatternPart, PatternPart, PatternPart]],
    var: Variable,
) -> List[Term]:
    """All distinct bindings of one variable."""
    query = Query(
        patterns=[TriplePattern(*p) for p in patterns],
        select=[var],
        distinct=True,
        order_by=var,
    )
    return [b[var] for b in evaluate(store, query)]
