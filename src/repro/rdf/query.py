"""Basic graph pattern (BGP) queries over the triple store.

The workbench manager *"processes ad hoc queries posed to the IB"*
(Section 5.2).  This module implements the conjunctive core of SPARQL:
a query is a list of triple patterns whose positions are terms or
:class:`Variable` placeholders, optionally post-filtered by Python
predicates, with ordering/limit/projection.

Patterns are solved left-to-right with a greedy reordering heuristic
(most-bound pattern first), which keeps intermediate binding sets small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.errors import QueryError
from .store import TripleStore
from .term import IRI, Literal, Object, Subject, Term, term_sort_key


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, conventionally written ``?name``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __str__(self) -> str:
        return f"?{self.name}"


PatternPart = Union[Term, Variable]
Binding = Dict[Variable, Term]


@dataclass(frozen=True)
class TriplePattern:
    """One pattern in a BGP; any position may be a variable."""

    subject: PatternPart
    predicate: PatternPart
    object: PatternPart

    def variables(self) -> List[Variable]:
        return [p for p in (self.subject, self.predicate, self.object)
                if isinstance(p, Variable)]

    def bound_count(self, binding: Binding) -> int:
        """How many positions are concrete under *binding*."""
        count = 0
        for part in (self.subject, self.predicate, self.object):
            if not isinstance(part, Variable) or part in binding:
                count += 1
        return count

    def resolve(self, binding: Binding) -> Tuple[Optional[Term], ...]:
        """The pattern as a store-level match pattern (None = wildcard)."""
        out: List[Optional[Term]] = []
        for part in (self.subject, self.predicate, self.object):
            if isinstance(part, Variable):
                out.append(binding.get(part))
            else:
                out.append(part)
        return tuple(out)


@dataclass
class Query:
    """A conjunctive query: patterns + filters + projection/order/limit."""

    patterns: List[TriplePattern] = field(default_factory=list)
    filters: List[Callable[[Binding], bool]] = field(default_factory=list)
    select: Optional[List[Variable]] = None
    order_by: Optional[Variable] = None
    limit: Optional[int] = None
    distinct: bool = False

    def where(self, subject: PatternPart, predicate: PatternPart,
              obj: PatternPart) -> "Query":
        """Append a triple pattern (chainable)."""
        self.patterns.append(TriplePattern(subject, predicate, obj))
        return self

    def filter(self, predicate: Callable[[Binding], bool]) -> "Query":
        """Append a post-filter over complete bindings (chainable)."""
        self.filters.append(predicate)
        return self


def _match_pattern(
    store: TripleStore, pattern: TriplePattern, binding: Binding
) -> Iterator[Binding]:
    subject, predicate, obj = pattern.resolve(binding)
    if predicate is not None and not isinstance(predicate, IRI):
        return  # a literal/blank bound into predicate position can't match
    if subject is not None and isinstance(subject, Literal):
        return  # literals are never subjects
    for triple in store.match(subject, predicate, obj):
        extended = dict(binding)
        ok = True
        for part, value in (
            (pattern.subject, triple.subject),
            (pattern.predicate, triple.predicate),
            (pattern.object, triple.object),
        ):
            if isinstance(part, Variable):
                bound = extended.get(part)
                if bound is None:
                    extended[part] = value
                elif bound != value:
                    ok = False
                    break
        if ok:
            yield extended


def evaluate(store: TripleStore, query: Query) -> List[Binding]:
    """Evaluate a query, returning the list of solution bindings."""
    solutions: List[Binding] = [{}]
    remaining = list(query.patterns)
    while remaining:
        # Greedy join order: prefer the pattern with most bound positions
        # under the first current binding (all bindings share variables).
        probe = solutions[0] if solutions else {}
        remaining.sort(key=lambda p: -p.bound_count(probe))
        pattern = remaining.pop(0)
        next_solutions: List[Binding] = []
        for binding in solutions:
            next_solutions.extend(_match_pattern(store, pattern, binding))
        solutions = next_solutions
        if not solutions:
            break
    for flt in query.filters:
        solutions = [b for b in solutions if flt(b)]
    if query.select is not None:
        projected = []
        for binding in solutions:
            missing = [v for v in query.select if v not in binding]
            if missing:
                raise QueryError(
                    f"projection variable(s) {missing} not bound by the patterns"
                )
            projected.append({v: binding[v] for v in query.select})
        solutions = projected
    if query.distinct:
        seen = set()
        unique: List[Binding] = []
        for binding in solutions:
            key = tuple(sorted(((v.name, str(t)) for v, t in binding.items())))
            if key not in seen:
                seen.add(key)
                unique.append(binding)
        solutions = unique
    if query.order_by is not None:
        var = query.order_by
        solutions.sort(key=lambda b: term_sort_key(b[var]) if var in b else ((), (), ()))
    if query.limit is not None:
        solutions = solutions[: query.limit]
    return solutions


def select(
    store: TripleStore,
    patterns: Sequence[Tuple[PatternPart, PatternPart, PatternPart]],
    select_vars: Optional[Sequence[Variable]] = None,
    **kwargs: Any,
) -> List[Binding]:
    """Convenience one-shot query.

    >>> # select(store, [(Variable('s'), RDF_TYPE, SCHEMA_CLASS)])
    """
    query = Query(
        patterns=[TriplePattern(*p) for p in patterns],
        select=list(select_vars) if select_vars is not None else None,
        **kwargs,
    )
    return evaluate(store, query)


def ask(
    store: TripleStore,
    patterns: Sequence[Tuple[PatternPart, PatternPart, PatternPart]],
) -> bool:
    """Does at least one solution exist?"""
    query = Query(patterns=[TriplePattern(*p) for p in patterns], limit=1)
    return bool(evaluate(store, query))


def values(
    store: TripleStore,
    patterns: Sequence[Tuple[PatternPart, PatternPart, PatternPart]],
    var: Variable,
) -> List[Term]:
    """All distinct bindings of one variable."""
    query = Query(
        patterns=[TriplePattern(*p) for p in patterns],
        select=[var],
        distinct=True,
        order_by=var,
    )
    return [b[var] for b in evaluate(store, query)]
