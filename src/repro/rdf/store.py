"""An indexed in-memory triple store.

The store keeps three permutation indexes (SPO, POS, OSP) so any triple
pattern with at least one bound position resolves without a full scan —
the workbench manager's query service and the blackboard's delta logic
both lean on this.

Mutations can be observed: :meth:`subscribe` registers a callback invoked
with every added/removed triple, which is how blackboard transactions build
their undo logs and how the event service learns about changes.
"""

from __future__ import annotations

from collections import Counter
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.errors import StoreError
from .term import IRI, Object, Subject, Term
from .triple import Triple

#: (added?, triple) — True for insertion, False for removal.
StoreListener = Callable[[bool, Triple], None]
#: One callback per mutation batch; single mutations arrive as 1-element
#: batches.  Bulk loads pay one call instead of one per triple.
BatchListener = Callable[[Sequence[Tuple[bool, Triple]]], None]


class TripleStore:
    """Set semantics over triples with pattern matching."""

    def __init__(self) -> None:
        self._triples: Set[Triple] = set()
        self._spo: Dict[Subject, Dict[IRI, Set[Object]]] = {}
        self._pos: Dict[IRI, Dict[Object, Set[Subject]]] = {}
        self._osp: Dict[Object, Dict[Subject, Set[IRI]]] = {}
        self._listeners: List[StoreListener] = []
        self._batch_listeners: List[BatchListener] = []
        #: per-position triple counts, kept incrementally so single-bound
        #: cardinality estimates (`count_matching`) stay O(1).
        self._subject_counts: Dict[Subject, int] = {}
        self._predicate_counts: Dict[IRI, int] = {}
        self._object_counts: Dict[Object, int] = {}
        #: bumped by every successful add/remove; the query planner keys
        #: its pattern-result memo on this.
        self._revision: int = 0

    @property
    def revision(self) -> int:
        """Mutation counter: changes iff the store's contents changed.

        Invariant: the counter advances by exactly the number of
        *applied* changes, whatever the batching — ``add_many`` of *k*
        fresh triples and *k* single ``add`` calls land on the same
        value, and no-ops (duplicate inserts, absent removals) never
        move it.  WAL crash recovery and replica delta-shipping
        (:mod:`repro.rdf.durability`) depend on this: a replayed log of
        mixed bulk/single mutations must reproduce the primary's exact
        revision, and every frame carries the expected value as a
        divergence check.  Regression-tested in
        ``tests/rdf/test_store_bulk.py``.
        """
        return self._revision

    # -- mutation ------------------------------------------------------------

    def add(self, subject: Subject, predicate: IRI, obj: Object) -> bool:
        """Insert one triple.  Returns True if the store changed."""
        return self.add_triple(Triple(subject, predicate, obj))

    def add_triple(self, triple: Triple) -> bool:
        if not self._index_add(triple):
            return False
        self._notify(True, triple)
        return True

    def _index_add(self, triple: Triple) -> bool:
        """Insert into the permutation indexes without notifying."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._spo.setdefault(triple.subject, {}).setdefault(
            triple.predicate, set()
        ).add(triple.object)
        self._pos.setdefault(triple.predicate, {}).setdefault(
            triple.object, set()
        ).add(triple.subject)
        self._osp.setdefault(triple.object, {}).setdefault(
            triple.subject, set()
        ).add(triple.predicate)
        counts = self._subject_counts
        counts[triple.subject] = counts.get(triple.subject, 0) + 1
        counts = self._predicate_counts
        counts[triple.predicate] = counts.get(triple.predicate, 0) + 1
        counts = self._object_counts
        counts[triple.object] = counts.get(triple.object, 0) + 1
        self._revision += 1
        return True

    def add_many(self, triples: Iterable[Triple]) -> int:
        """Bulk insert with one batched listener notification.

        Returns how many triples were new.  Per-triple listeners still
        see every change; batch listeners get a single call — this is
        what keeps blackboard schema loads O(n) instead of
        O(n · listeners · call overhead).  The index maintenance is
        inlined with the lookups hoisted out of the loop, so a bulk
        matrix serialization pays no per-triple call overhead.
        """
        stored = self._triples
        spo, pos, osp = self._spo, self._pos, self._osp
        fresh: List[Triple] = []
        append = fresh.append
        for triple in triples:
            if triple in stored:
                continue
            stored.add(triple)
            append(triple)
            subject = triple.subject
            predicate = triple.predicate
            obj = triple.object
            by_pred = spo.get(subject)
            if by_pred is None:
                by_pred = spo[subject] = {}
            objs = by_pred.get(predicate)
            if objs is None:
                objs = by_pred[predicate] = set()
            objs.add(obj)
            by_obj = pos.get(predicate)
            if by_obj is None:
                by_obj = pos[predicate] = {}
            subjects = by_obj.get(obj)
            if subjects is None:
                subjects = by_obj[obj] = set()
            subjects.add(subject)
            by_subj = osp.get(obj)
            if by_subj is None:
                by_subj = osp[obj] = {}
            predicates = by_subj.get(subject)
            if predicates is None:
                predicates = by_subj[subject] = set()
            predicates.add(predicate)
        if not fresh:
            return 0
        for counts, per_key in (
            (self._subject_counts, Counter(t.subject for t in fresh)),
            (self._predicate_counts, Counter(t.predicate for t in fresh)),
            (self._object_counts, Counter(t.object for t in fresh)),
        ):
            for key, count in per_key.items():
                counts[key] = counts.get(key, 0) + count
        self._revision += len(fresh)
        if self._listeners or self._batch_listeners:
            self._notify_many([(True, triple) for triple in fresh])
        return len(fresh)

    def bulk_load(self, triples: Sequence[Triple]) -> int:
        """Load a known-distinct triple list into an empty store.

        The snapshot-recovery fast path (:mod:`repro.rdf.durability`):
        with no duplicates possible and nobody observing, it skips the
        per-triple membership probe, the fresh-list assembly, and the
        listener dispatch that ``add_many`` pays, and builds the
        position counters with one :class:`Counter` pass per position.
        The revision advances by the triple count — exactly what
        ``add_many`` would do for the same (all-fresh) input — so a
        recovered store's counter lines up with the replayed WAL.
        """
        if self._triples:
            raise StoreError("bulk_load requires an empty store")
        if self._listeners or self._batch_listeners:
            raise StoreError("bulk_load requires an unobserved store")
        stored = set(triples)
        if len(stored) != len(triples):
            raise StoreError("bulk_load requires distinct triples")
        self._triples = stored
        spo, pos, osp = self._spo, self._pos, self._osp
        for triple in triples:
            subject = triple.subject
            predicate = triple.predicate
            obj = triple.object
            by_pred = spo.get(subject)
            if by_pred is None:
                by_pred = spo[subject] = {}
            objs = by_pred.get(predicate)
            if objs is None:
                objs = by_pred[predicate] = set()
            objs.add(obj)
            by_obj = pos.get(predicate)
            if by_obj is None:
                by_obj = pos[predicate] = {}
            subjects = by_obj.get(obj)
            if subjects is None:
                subjects = by_obj[obj] = set()
            subjects.add(subject)
            by_subj = osp.get(obj)
            if by_subj is None:
                by_subj = osp[obj] = {}
            predicates = by_subj.get(subject)
            if predicates is None:
                predicates = by_subj[subject] = set()
            predicates.add(predicate)
        self._subject_counts = dict(Counter(t.subject for t in triples))
        self._predicate_counts = dict(Counter(t.predicate for t in triples))
        self._object_counts = dict(Counter(t.object for t in triples))
        self._revision += len(triples)
        return len(triples)

    def remove(self, subject: Subject, predicate: IRI, obj: Object) -> bool:
        """Remove one triple.  Returns True if the store changed."""
        return self.remove_triple(Triple(subject, predicate, obj))

    def remove_triple(self, triple: Triple) -> bool:
        if not self._index_remove(triple):
            return False
        self._notify(False, triple)
        return True

    def _index_remove(self, triple: Triple) -> bool:
        """Remove from the permutation indexes without notifying."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._spo[triple.subject][triple.predicate].discard(triple.object)
        self._pos[triple.predicate][triple.object].discard(triple.subject)
        self._osp[triple.object][triple.subject].discard(triple.predicate)
        for counts, key in (
            (self._subject_counts, triple.subject),
            (self._predicate_counts, triple.predicate),
            (self._object_counts, triple.object),
        ):
            remaining = counts[key] - 1
            if remaining:
                counts[key] = remaining
            else:
                del counts[key]
        self._revision += 1
        return True

    def remove_many(self, triples: Iterable[Triple]) -> int:
        """Bulk removal with one batched listener notification."""
        changes: List[Tuple[bool, Triple]] = [
            (False, triple) for triple in triples if self._index_remove(triple)
        ]
        self._notify_many(changes)
        return len(changes)

    def remove_matching(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Object] = None,
    ) -> int:
        """Remove every triple matching the pattern; returns the count."""
        return self.remove_many(list(self.match(subject, predicate, obj)))

    def set_value(self, subject: Subject, predicate: IRI, obj: Object) -> None:
        """Functional-property write: replace all existing objects for
        (subject, predicate) with the single new object."""
        for existing in list(self.objects(subject, predicate)):
            if existing != obj:
                self.remove(subject, predicate, existing)
        self.add(subject, predicate, obj)

    def update(self, triples: Iterable[Triple]) -> int:
        """Bulk insert; returns how many were new."""
        return self.add_many(triples)

    def clear(self) -> None:
        self.remove_many(list(self._triples))

    # -- observation -----------------------------------------------------------

    def subscribe(self, listener: StoreListener) -> Callable[[], None]:
        """Register a mutation listener; returns an unsubscribe callable."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def subscribe_batch(self, listener: BatchListener) -> Callable[[], None]:
        """Register a batch mutation listener; returns an unsubscriber.

        Batch listeners receive one call per bulk mutation (a list of
        ``(added, triple)`` in application order); single mutations
        arrive as one-element batches.
        """
        self._batch_listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._batch_listeners:
                self._batch_listeners.remove(listener)

        return unsubscribe

    def _notify(self, added: bool, triple: Triple) -> None:
        for listener in list(self._listeners):
            listener(added, triple)
        if self._batch_listeners:
            event = [(added, triple)]
            for listener in list(self._batch_listeners):
                listener(event)

    def _notify_many(self, changes: Sequence[Tuple[bool, Triple]]) -> None:
        if not changes:
            return
        if self._listeners:
            for listener in list(self._listeners):
                for added, triple in changes:
                    listener(added, triple)
        for listener in list(self._batch_listeners):
            listener(changes)

    # -- reads -------------------------------------------------------------------

    def subject_slice(self, subject: Subject) -> Dict[IRI, AbstractSet[Object]]:
        """The ``{predicate: objects}`` mapping for one subject.

        Returns the live index slice (empty mapping if the subject is
        absent) so bulk consumers — the matrix delta serializer — can
        diff a subject's stored statements without materializing one
        :class:`Triple` per stored statement.  Callers must treat the
        returned mapping as read-only and must not mutate the store
        while iterating it.
        """
        return self._spo.get(subject, {})

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(sorted(self._triples, key=Triple.sort_key))

    def match(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Object] = None,
    ) -> Iterator[Triple]:
        """All triples matching a pattern; ``None`` is a wildcard."""
        if subject is not None and predicate is not None and obj is not None:
            triple = Triple(subject, predicate, obj)
            if triple in self._triples:
                yield triple
            return
        if subject is not None:
            by_pred = self._spo.get(subject, {})
            predicates = [predicate] if predicate is not None else list(by_pred)
            for pred in predicates:
                for o in list(by_pred.get(pred, ())):
                    if obj is None or o == obj:
                        yield Triple(subject, pred, o)
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate, {})
            objects = [obj] if obj is not None else list(by_obj)
            for o in objects:
                for s in list(by_obj.get(o, ())):
                    yield Triple(s, predicate, o)
            return
        if obj is not None:
            by_subj = self._osp.get(obj, {})
            for s, preds in list(by_subj.items()):
                for p in list(preds):
                    yield Triple(s, p, obj)
            return
        yield from list(self._triples)

    def count_matching(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[IRI] = None,
        obj: Optional[Object] = None,
    ) -> int:
        """Exact number of triples matching a pattern, in O(1).

        Every answer comes straight off index-level sizes or the
        incrementally maintained per-position counters — no triple is
        ever enumerated, which is what makes this usable as the query
        planner's cardinality estimator.
        """
        if subject is not None and predicate is not None and obj is not None:
            if not isinstance(predicate, IRI):
                return 0
            return 1 if Triple(subject, predicate, obj) in self._triples else 0
        if subject is not None and predicate is not None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        if predicate is not None and obj is not None:
            return len(self._pos.get(predicate, {}).get(obj, ()))
        if subject is not None and obj is not None:
            return len(self._osp.get(obj, {}).get(subject, ()))
        if subject is not None:
            return self._subject_counts.get(subject, 0)
        if predicate is not None:
            return self._predicate_counts.get(predicate, 0)
        if obj is not None:
            return self._object_counts.get(obj, 0)
        return len(self._triples)

    #: shared empty result for the *_set accessors below
    _EMPTY: AbstractSet = frozenset()

    def object_set(self, subject: Subject, predicate: IRI) -> AbstractSet[Object]:
        """The objects of (subject, predicate, ?) as a set.

        Returns a live read-only view of the index — do not mutate; the
        query planner's bind-joins intersect these directly.
        """
        return self._spo.get(subject, {}).get(predicate) or self._EMPTY

    def subject_set(self, predicate: IRI, obj: Object) -> AbstractSet[Subject]:
        """The subjects of (?, predicate, object) as a set (read-only)."""
        return self._pos.get(predicate, {}).get(obj) or self._EMPTY

    def predicate_set(self, subject: Subject, obj: Object) -> AbstractSet[IRI]:
        """The predicates of (subject, ?, object) as a set (read-only)."""
        return self._osp.get(obj, {}).get(subject) or self._EMPTY

    def objects(self, subject: Subject, predicate: IRI) -> List[Object]:
        """All objects of (subject, predicate, ?)."""
        return list(self._spo.get(subject, {}).get(predicate, ()))

    def object(self, subject: Subject, predicate: IRI) -> Optional[Object]:
        """The single object of a functional property, or None.

        Raises :class:`StoreError` if the property has multiple values.
        """
        values = self.objects(subject, predicate)
        if not values:
            return None
        if len(values) > 1:
            raise StoreError(
                f"{subject} {predicate} has {len(values)} values, expected one"
            )
        return values[0]

    def subjects(self, predicate: IRI, obj: Object) -> List[Subject]:
        """All subjects of (?, predicate, object)."""
        return list(self._pos.get(predicate, {}).get(obj, ()))

    def subjects_of_type(self, type_iri: Object) -> List[Subject]:
        from .vocabulary import RDF_TYPE

        return self.subjects(RDF_TYPE, type_iri)

    def predicates(self, subject: Subject, obj: Object) -> List[IRI]:
        return list(self._osp.get(obj, {}).get(subject, ()))

    def describe(self, subject: Subject) -> Dict[IRI, List[Object]]:
        """All (predicate → objects) for one subject."""
        return {
            pred: sorted(objs, key=lambda o: str(o))
            for pred, objs in self._spo.get(subject, {}).items()
            if objs
        }

    def snapshot(self) -> Set[Triple]:
        """An immutable copy of the current contents."""
        return set(self._triples)

    def __repr__(self) -> str:
        return f"TripleStore(triples={len(self._triples)})"
