"""RDF substrate: terms, triples, an indexed store, BGP queries and I/O.

The paper's integration blackboard is an RDF repository (Section 5.1).
This package is a from-scratch implementation of exactly the RDF machinery
the blackboard needs: a term model, an indexed triple store with mutation
listeners, a conjunctive query engine, N-Triples/Turtle serialization, and
the canonical triple layout for schema graphs and mapping matrices.
"""

from .namespace import IW_NS, RDF_NS, RDFS_NS, XSD_NS, Namespace, PrefixMap
from .query import (
    PlanStep,
    Query,
    QueryPlan,
    TriplePattern,
    Variable,
    ask,
    evaluate,
    evaluate_planned,
    evaluate_reference,
    explain,
    select,
    values,
)
from .schema_rdf import (
    cell_iri,
    column_iri,
    element_iri,
    matrices_in_store,
    matrix_iri,
    matrix_to_rdf,
    rdf_to_matrix,
    rdf_to_schema,
    row_iri,
    schema_iri,
    schema_to_rdf,
    schemas_in_store,
    write_cell,
)
from .serialize import from_ntriples, parse_term, term_to_ntriples, to_ntriples, to_turtle
from .store import StoreListener, TripleStore
from .term import (
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    BlankNode,
    IRI,
    Literal,
    Object,
    Subject,
    Term,
    fresh_blank,
    literal,
    term_sort_key,
)
from .triple import Triple
from . import vocabulary

__all__ = [
    "BlankNode",
    "IRI",
    "IW_NS",
    "Literal",
    "Namespace",
    "Object",
    "PlanStep",
    "PrefixMap",
    "Query",
    "QueryPlan",
    "RDF_NS",
    "RDFS_NS",
    "StoreListener",
    "Subject",
    "Term",
    "Triple",
    "TriplePattern",
    "TripleStore",
    "Variable",
    "XSD_BOOLEAN",
    "XSD_DOUBLE",
    "XSD_INTEGER",
    "XSD_NS",
    "XSD_STRING",
    "ask",
    "cell_iri",
    "column_iri",
    "element_iri",
    "evaluate",
    "evaluate_planned",
    "evaluate_reference",
    "explain",
    "fresh_blank",
    "from_ntriples",
    "literal",
    "matrices_in_store",
    "matrix_iri",
    "matrix_to_rdf",
    "parse_term",
    "rdf_to_matrix",
    "rdf_to_schema",
    "row_iri",
    "schema_iri",
    "schema_to_rdf",
    "schemas_in_store",
    "select",
    "term_sort_key",
    "term_to_ntriples",
    "to_ntriples",
    "to_turtle",
    "values",
    "vocabulary",
    "write_cell",
]
