"""RDF triples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .term import IRI, Object, Subject, term_sort_key


@dataclass(frozen=True)
class Triple:
    """One (subject, predicate, object) statement."""

    subject: Subject
    predicate: IRI
    object: Object

    def __post_init__(self) -> None:
        if not isinstance(self.predicate, IRI):
            raise TypeError(
                f"predicate must be an IRI, got {type(self.predicate).__name__}"
            )
        object.__setattr__(
            self, "_hash", hash((self.subject, self.predicate, self.object))
        )

    def __hash__(self) -> int:
        # every store insert hashes the triple at least twice (membership
        # probe + set add); cache it once at construction
        try:
            return self._hash
        except AttributeError:  # copied/unpickled around __init__
            value = hash((self.subject, self.predicate, self.object))
            object.__setattr__(self, "_hash", value)
            return value

    def sort_key(self) -> Tuple[tuple, tuple, tuple]:
        return (
            term_sort_key(self.subject),
            term_sort_key(self.predicate),
            term_sort_key(self.object),
        )

    def __str__(self) -> str:
        return f"{self.subject} {self.predicate} {self.object} ."
