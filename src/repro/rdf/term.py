"""RDF terms: IRIs, literals and blank nodes.

The integration blackboard stores everything as RDF (Section 5.1): *"we
propose using RDF for the IB, because: 1) it is natural for representing
labeled graphs, 2) one can use RDF Schema to define useful built-in link
types while still offering easy extensibility, 3) it is vendor-independent,
and 4) it has significant development support."*

This is a small, self-contained term model — enough RDF to make the
blackboard real (typed literals, blank nodes, lexicographic ordering for
deterministic serialization) without pulling in an external toolkit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Union

_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_BOOLEAN = _XSD + "boolean"
XSD_INTEGER = _XSD + "integer"
XSD_DOUBLE = _XSD + "double"


@dataclass(frozen=True, order=True)
class IRI:
    """An absolute IRI naming a resource."""

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("IRI must be non-empty")
        object.__setattr__(self, "_hash", hash(self.value))

    def __hash__(self) -> int:
        # terms are hashed on every index insert/lookup; the cached value
        # turns that into one attribute read (interned IRIs hash once ever)
        try:
            return self._hash
        except AttributeError:  # copied/unpickled around __init__
            value = hash(self.value)
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        return f"<{self.value}>"


@dataclass(frozen=True, order=True)
class Literal:
    """A typed RDF literal with its lexical form."""

    lexical: str
    datatype: str = XSD_STRING

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.lexical, self.datatype)))

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash((self.lexical, self.datatype))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.datatype == XSD_STRING:
            return f'"{escaped}"'
        return f'"{escaped}"^^<{self.datatype}>'

    def to_python(self) -> Any:
        """The literal as the matching Python value."""
        if self.datatype == XSD_BOOLEAN:
            return self.lexical == "true"
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype == XSD_DOUBLE:
            return float(self.lexical)
        return self.lexical


_blank_counter = itertools.count(1)


@dataclass(frozen=True, order=True)
class BlankNode:
    """An anonymous node.  Fresh labels come from :func:`fresh_blank`."""

    label: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(self.label))

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:
            value = hash(self.label)
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        return f"_:{self.label}"


def fresh_blank(prefix: str = "b") -> BlankNode:
    """A blank node with a process-unique label."""
    return BlankNode(f"{prefix}{next(_blank_counter)}")


#: Anything that may appear in subject position.
Subject = Union[IRI, BlankNode]
#: Anything that may appear in object position.
Object = Union[IRI, BlankNode, Literal]
#: Any term at all.
Term = Union[IRI, BlankNode, Literal]


#: interned boolean literals — every matrix cell carries one, so sharing
#: the two instances (and their cached hashes) keeps bulk writes cheap
_TRUE = Literal("true", XSD_BOOLEAN)
_FALSE = Literal("false", XSD_BOOLEAN)


def literal(value: Any) -> Literal:
    """Build a typed literal from a Python value.

    >>> literal(True).datatype.endswith('boolean')
    True
    >>> literal(3).to_python()
    3
    """
    if isinstance(value, Literal):
        return value
    if isinstance(value, bool):
        return _TRUE if value else _FALSE
    if isinstance(value, int):
        return Literal(str(value), XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), XSD_DOUBLE)
    return Literal(str(value), XSD_STRING)


def term_sort_key(term: Term) -> tuple:
    """Total order across term kinds: IRIs < blanks < literals."""
    if isinstance(term, IRI):
        return (0, term.value, "")
    if isinstance(term, BlankNode):
        return (1, term.label, "")
    return (2, term.lexical, term.datatype)
