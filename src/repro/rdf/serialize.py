"""N-Triples and Turtle-subset serialization for the triple store.

The blackboard must be durable and shareable across workbench instances
(Section 5.1.3); these round-trippable text formats are the interchange
mechanism.  The N-Triples reader/writer handles the full term model; the
Turtle writer is a compact pretty-printer (prefixes, predicate grouping)
whose output the N-Triples-style reader does not need to re-read.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..core.errors import StoreError
from .namespace import PrefixMap
from .store import TripleStore
from .term import XSD_STRING, BlankNode, IRI, Literal, Object, Subject, Term
from .triple import Triple

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n", "\r": "\\r", "\t": "\\t"}
_UNESCAPES = {"\\\\": "\\", '\\"': '"', "\\n": "\n", "\\r": "\r", "\\t": "\t"}

_NTRIPLE_LINE = re.compile(
    r"""^
    (?P<subject><[^>]*>|_:\S+)\s+
    (?P<predicate><[^>]*>)\s+
    (?P<object><[^>]*>|_:\S+|"(?:[^"\\]|\\.)*"(?:\^\^<[^>]*>)?)\s*
    \.\s*$""",
    re.VERBOSE,
)


#: Characters Python's splitlines() treats as line boundaries, beyond \n\r.
_LINE_BREAKERS = "\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029"


def _escape(text: str) -> str:
    out: List[str] = []
    for ch in text:
        if ch in _ESCAPES:
            out.append(_ESCAPES[ch])
        elif ord(ch) < 0x20 or ch in _LINE_BREAKERS:
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def _unescape(text: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                i += 2
                continue
            if text[i + 1] == "u" and i + 6 <= len(text):
                out.append(chr(int(text[i + 2 : i + 6], 16)))
                i += 6
                continue
            if text[i + 1] == "U" and i + 10 <= len(text):
                out.append(chr(int(text[i + 2 : i + 10], 16)))
                i += 10
                continue
        out.append(text[i])
        i += 1
    return "".join(out)


def term_to_ntriples(term: Term) -> str:
    if isinstance(term, IRI):
        return f"<{term.value}>"
    if isinstance(term, BlankNode):
        return f"_:{term.label}"
    if isinstance(term, Literal):
        body = f'"{_escape(term.lexical)}"'
        if term.datatype != XSD_STRING:
            body += f"^^<{term.datatype}>"
        return body
    raise StoreError(f"cannot serialize term {term!r}")


def parse_term(text: str) -> Term:
    """Parse one N-Triples term."""
    text = text.strip()
    if text.startswith("<") and text.endswith(">"):
        return IRI(text[1:-1])
    if text.startswith("_:"):
        return BlankNode(text[2:])
    if text.startswith('"'):
        match = re.match(r'^"((?:[^"\\]|\\.)*)"(?:\^\^<([^>]*)>)?$', text)
        if not match:
            raise StoreError(f"malformed literal: {text!r}")
        lexical = _unescape(match.group(1))
        datatype = match.group(2) or XSD_STRING
        return Literal(lexical, datatype)
    raise StoreError(f"cannot parse term: {text!r}")


def to_ntriples(store: TripleStore) -> str:
    """Serialize the whole store in canonical (sorted) N-Triples."""
    lines = []
    for triple in store:  # store iteration is sorted
        lines.append(
            f"{term_to_ntriples(triple.subject)} "
            f"{term_to_ntriples(triple.predicate)} "
            f"{term_to_ntriples(triple.object)} ."
        )
    return "\n".join(lines) + ("\n" if lines else "")


def from_ntriples(text: str, store: Optional[TripleStore] = None) -> TripleStore:
    """Parse N-Triples text into a (new or given) store."""
    store = store if store is not None else TripleStore()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _NTRIPLE_LINE.match(line)
        if not match:
            raise StoreError(f"malformed N-Triples at line {lineno}: {raw!r}")
        subject = parse_term(match.group("subject"))
        predicate = parse_term(match.group("predicate"))
        obj = parse_term(match.group("object"))
        if isinstance(subject, Literal):
            raise StoreError(f"literal subject at line {lineno}")
        if not isinstance(predicate, IRI):
            raise StoreError(f"non-IRI predicate at line {lineno}")
        store.add(subject, predicate, obj)
    return store


def to_turtle(store: TripleStore, prefixes: Optional[PrefixMap] = None) -> str:
    """Pretty Turtle-subset output: prefix directives + grouped predicates."""
    prefixes = prefixes or PrefixMap.default()

    def render(term: Term) -> str:
        if isinstance(term, IRI):
            compact = prefixes.compact(term)
            return compact if compact else f"<{term.value}>"
        return term_to_ntriples(term)

    lines: List[str] = []
    for prefix, ns in sorted(prefixes.namespaces().items()):
        lines.append(f"@prefix {prefix}: <{ns.base}> .")
    if lines:
        lines.append("")

    by_subject: Dict[Subject, List[Triple]] = {}
    for triple in store:
        by_subject.setdefault(triple.subject, []).append(triple)
    for subject in sorted(by_subject, key=lambda s: str(s)):
        triples = by_subject[subject]
        grouped: Dict[IRI, List[Object]] = {}
        for t in triples:
            grouped.setdefault(t.predicate, []).append(t.object)
        parts = []
        for predicate in sorted(grouped, key=lambda p: p.value):
            objects = ", ".join(render(o) for o in grouped[predicate])
            parts.append(f"    {render(predicate)} {objects}")
        lines.append(f"{render(subject)}")
        lines.append(" ;\n".join(parts) + " .")
    return "\n".join(lines) + ("\n" if lines else "")
