"""Durable blackboard substrate: write-ahead log, snapshots, replication.

The paper's integration blackboard is *"a shared repository ... intended
to be accessed by multiple tools"* (Section 5.1); enterprise deployments
additionally expect the repository to survive crashes and to fan heavy
read traffic out across replicas.  This module adds both on top of the
in-memory :class:`~repro.rdf.store.TripleStore`, using the store's
existing change-capture seam (batch listeners + the mutation ``revision``
counter) so durability costs O(delta), never O(store):

* **Write-ahead log** — every mutation batch the store reports becomes
  one framed, CRC-checked :class:`WALFrame` appended to ``store.wal``.
  The fsync policy is configurable (``"always"`` / ``"commit"`` /
  ``"never"``).  Torn or corrupt tails are detected by framing + checksum
  and cut off: recovery always yields exactly the longest durable prefix.
* **Snapshots** — :meth:`DurableStore.checkpoint` writes the whole store
  as ``store.snapshot`` in a compact interned-term binary layout (each
  distinct term encoded once, triples as varint id-triples — the same
  idea as the matrix serializer's ``_matrix_slices`` bulk layout), then
  truncates the WAL.  Snapshot + truncate is the compaction step.
* **Crash recovery** — :class:`DurableStore` replays the WAL over the
  last snapshot, verifying each frame's recorded ``revision`` against
  the store's own counter (bulk and single mutations advance the counter
  identically — see ``TripleStore.revision`` — which is what makes the
  check sound).
* **Delta-shipping replication** — :class:`ReplicaStore` consumes the
  same encoded frames (via :class:`ReplicationLink` in-process, or any
  byte transport) to maintain a read-only copy answering the full
  query/planner API; frames arriving out of order are rejected.

File formats are versioned and golden-tested
(``tests/rdf/test_durability_golden.py``); crash behaviour is
property-tested at every byte boundary (``tests/rdf/test_wal_recovery.py``)
and replicas are differentially tested against their primary
(``tests/rdf/test_replication.py``).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)
from collections import deque

from ..core.errors import DurabilityError, ReplicationError, StoreError
from .faultfs import FileSystem, OS_FS
from .query import Binding, Query, evaluate_planned
from .store import TripleStore
from .term import XSD_STRING, BlankNode, IRI, Literal, Term
from .triple import Triple

__all__ = [
    "WAL_MAGIC",
    "SNAPSHOT_MAGIC",
    "FORMAT_VERSION",
    "WALFrame",
    "DurableStore",
    "ReplicaStore",
    "ReplicationLink",
    "encode_snapshot",
    "decode_snapshot",
    "scan_wal",
]

#: file magics — ASCII tags so a hexdump identifies the file instantly
WAL_MAGIC = b"IWWAL"
SNAPSHOT_MAGIC = b"IWSNAP"
#: current on-disk format version (shared by WAL and snapshot); readers
#: accept any version <= this and the goldens pin version 1 forever
FORMAT_VERSION = 1

#: sanity cap on a single frame payload: a length prefix larger than this
#: is treated as tail corruption, not an allocation request
_MAX_FRAME_BYTES = 1 << 28

#: term kind tags in the binary codec
_KIND_IRI = 0
_KIND_BLANK = 1
_KIND_PLAIN = 2
_KIND_TYPED = 3


# -- varint / term codec -------------------------------------------------------

def _write_uvarint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    length = len(data)
    while True:
        if offset >= length:
            raise DurabilityError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise DurabilityError("varint overflow")


def _write_text(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _write_uvarint(out, len(raw))
    out.extend(raw)


def _read_text(data: bytes, offset: int) -> Tuple[str, int]:
    size, offset = _read_uvarint(data, offset)
    end = offset + size
    if end > len(data):
        raise DurabilityError("truncated string")
    return data[offset:end].decode("utf-8"), end


def _encode_term(out: bytearray, term: Term) -> None:
    if isinstance(term, IRI):
        out.append(_KIND_IRI)
        _write_text(out, term.value)
    elif isinstance(term, BlankNode):
        out.append(_KIND_BLANK)
        _write_text(out, term.label)
    elif isinstance(term, Literal):
        if term.datatype == XSD_STRING:
            out.append(_KIND_PLAIN)
            _write_text(out, term.lexical)
        else:
            out.append(_KIND_TYPED)
            _write_text(out, term.lexical)
            _write_text(out, term.datatype)
    else:
        raise DurabilityError(f"cannot encode term {term!r}")


def _decode_term(data: bytes, offset: int) -> Tuple[Term, int]:
    if offset >= len(data):
        raise DurabilityError("truncated term")
    kind = data[offset]
    offset += 1
    if kind == _KIND_IRI:
        value, offset = _read_text(data, offset)
        return IRI(value), offset
    if kind == _KIND_BLANK:
        label, offset = _read_text(data, offset)
        return BlankNode(label), offset
    if kind == _KIND_PLAIN:
        lexical, offset = _read_text(data, offset)
        return Literal(lexical), offset
    if kind == _KIND_TYPED:
        lexical, offset = _read_text(data, offset)
        datatype, offset = _read_text(data, offset)
        return Literal(lexical, datatype), offset
    raise DurabilityError(f"unknown term kind {kind}")


def _encode_term_table(
    out: bytearray, triples: Iterable[Triple]
) -> Dict[Term, int]:
    """Write the interned-term table for ``triples``; returns term → id.

    Each distinct term is encoded exactly once, in first-appearance
    (subject, predicate, object) order, so a 100k-triple store whose
    statements share a few thousand IRIs pays for each IRI string once —
    the snapshot-level mirror of the matrix serializer's interned-IRI
    bulk layout.
    """
    table: Dict[Term, int] = {}
    for triple in triples:
        for term in (triple.subject, triple.predicate, triple.object):
            if term not in table:
                table[term] = len(table)
    _write_uvarint(out, len(table))
    for term in table:  # dicts preserve insertion order
        _encode_term(out, term)
    return table


def _decode_term_table(data: bytes, offset: int) -> Tuple[List[Term], int]:
    count, offset = _read_uvarint(data, offset)
    terms: List[Term] = []
    for _ in range(count):
        term, offset = _decode_term(data, offset)
        terms.append(term)
    return terms, offset


# -- WAL frames ----------------------------------------------------------------

@dataclass(frozen=True)
class WALFrame:
    """One durable mutation batch.

    ``seq`` is the frame's position in the global log (monotonic across
    compactions); ``revision`` is the primary store's mutation counter
    *after* the batch applied — replaying a frame must land the consumer
    on exactly this revision, or the log and the store have diverged.
    ``ops`` are the applied changes in order, as ``(added, triple)``.
    """

    seq: int
    revision: int
    ops: Tuple[Tuple[bool, Triple], ...]

    def encode(self) -> bytes:
        """The frame payload (framing bytes are added by the writer)."""
        out = bytearray()
        _write_uvarint(out, self.seq)
        _write_uvarint(out, self.revision)
        table = _encode_term_table(out, (triple for _, triple in self.ops))
        _write_uvarint(out, len(self.ops))
        for added, triple in self.ops:
            out.append(1 if added else 0)
            _write_uvarint(out, table[triple.subject])
            _write_uvarint(out, table[triple.predicate])
            _write_uvarint(out, table[triple.object])
        return bytes(out)

    @classmethod
    def decode(cls, payload: bytes) -> "WALFrame":
        seq, offset = _read_uvarint(payload, 0)
        revision, offset = _read_uvarint(payload, offset)
        terms, offset = _decode_term_table(payload, offset)
        op_count, offset = _read_uvarint(payload, offset)
        ops: List[Tuple[bool, Triple]] = []
        for _ in range(op_count):
            if offset >= len(payload):
                raise DurabilityError("truncated op")
            flag = payload[offset]
            offset += 1
            if flag not in (0, 1):
                raise DurabilityError(f"bad op flag {flag}")
            sid, offset = _read_uvarint(payload, offset)
            pid, offset = _read_uvarint(payload, offset)
            oid, offset = _read_uvarint(payload, offset)
            try:
                triple = Triple(terms[sid], terms[pid], terms[oid])
            except (IndexError, TypeError) as exc:
                raise DurabilityError(f"bad term reference: {exc}") from exc
            ops.append((bool(flag), triple))
        if offset != len(payload):
            raise DurabilityError("trailing bytes after frame ops")
        return cls(seq=seq, revision=revision, ops=tuple(ops))


def _frame_bytes(payload: bytes) -> bytes:
    """On-disk framing: u32-LE length, u32-LE CRC32, payload."""
    header = len(payload).to_bytes(4, "little")
    crc = (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little")
    return header + crc + payload


def _wal_header(base_revision: int, base_seq: int) -> bytes:
    """WAL file header: magic, version, CRC-guarded base counters."""
    body = bytearray()
    _write_uvarint(body, base_revision)
    _write_uvarint(body, base_seq)
    crc = (zlib.crc32(bytes(body)) & 0xFFFFFFFF).to_bytes(4, "little")
    return (
        WAL_MAGIC
        + bytes([FORMAT_VERSION])
        + len(body).to_bytes(2, "little")
        + crc
        + bytes(body)
    )


def scan_wal(data: bytes) -> Tuple[int, int, List[WALFrame], int]:
    """Parse a WAL byte string up to its longest durable prefix.

    Returns ``(base_revision, base_seq, frames, durable_length)`` where
    ``durable_length`` is the byte offset after the last intact frame —
    everything past it (torn length word, short payload, CRC mismatch,
    undecodable frame, sequence gap) is a casualty of the crash and is
    ignored.  Only a *foreign* file — wrong magic, or a version newer
    than this reader — raises :class:`DurabilityError`: that is operator
    error, not crash damage, and must not be "recovered" into silence.

    A header too short or checksum-damaged is indistinguishable from a
    crash during initial WAL creation, so it yields an empty log.
    """
    fixed = len(WAL_MAGIC) + 1 + 2 + 4
    if len(data) >= len(WAL_MAGIC) and not data.startswith(WAL_MAGIC):
        raise DurabilityError("not a WAL file (bad magic)")
    if len(data) < fixed:
        return 0, 1, [], 0
    version = data[len(WAL_MAGIC)]
    if version > FORMAT_VERSION:
        raise DurabilityError(
            f"WAL format version {version} is newer than supported "
            f"version {FORMAT_VERSION}")
    body_len = int.from_bytes(data[len(WAL_MAGIC) + 1:len(WAL_MAGIC) + 3],
                              "little")
    crc_stored = int.from_bytes(data[len(WAL_MAGIC) + 3:fixed], "little")
    body_end = fixed + body_len
    if body_end > len(data):
        return 0, 1, [], 0
    body = data[fixed:body_end]
    if (zlib.crc32(body) & 0xFFFFFFFF) != crc_stored:
        return 0, 1, [], 0
    try:
        base_revision, offset = _read_uvarint(body, 0)
        base_seq, _ = _read_uvarint(body, offset)
    except DurabilityError:
        return 0, 1, [], 0

    frames: List[WALFrame] = []
    offset = body_end
    expected_seq = base_seq
    while True:
        if offset + 8 > len(data):
            break
        length = int.from_bytes(data[offset:offset + 4], "little")
        crc = int.from_bytes(data[offset + 4:offset + 8], "little")
        payload_end = offset + 8 + length
        if length > _MAX_FRAME_BYTES or payload_end > len(data):
            break
        payload = data[offset + 8:payload_end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            break
        try:
            frame = WALFrame.decode(payload)
        except (DurabilityError, ValueError):
            # ValueError covers term-model validation (empty IRI) and
            # undecodable UTF-8 — possible only for payloads that pass
            # CRC by construction, e.g. a deliberately crafted tail
            break
        if frame.seq != expected_seq:
            break
        frames.append(frame)
        expected_seq += 1
        offset = payload_end
    return base_revision, base_seq, frames, offset


# -- snapshots -----------------------------------------------------------------

def encode_snapshot(store: TripleStore, seq: int) -> bytes:
    """Serialize a store as the compact interned-term snapshot format.

    Deterministic: triples are emitted in the store's canonical sorted
    order and the term table in first-appearance order, so equal stores
    produce byte-identical snapshots (golden-testable).  ``seq`` records
    the next WAL sequence number at snapshot time, letting replicas
    bootstrap from a snapshot and join the frame stream without a gap.
    """
    body = bytearray()
    _write_uvarint(body, store.revision)
    _write_uvarint(body, seq)
    triples = list(store)  # sorted
    table = _encode_term_table(body, triples)
    _write_uvarint(body, len(triples))
    for triple in triples:
        _write_uvarint(body, table[triple.subject])
        _write_uvarint(body, table[triple.predicate])
        _write_uvarint(body, table[triple.object])
    crc = (zlib.crc32(bytes(body)) & 0xFFFFFFFF).to_bytes(4, "little")
    return SNAPSHOT_MAGIC + bytes([FORMAT_VERSION]) + crc + bytes(body)


def decode_snapshot(data: bytes) -> Tuple[int, int, List[Triple]]:
    """Parse a snapshot; returns ``(revision, next_seq, triples)``.

    Unlike the WAL, a snapshot is written atomically (temp file +
    rename), so *any* damage is a hard :class:`DurabilityError` — there
    is no meaningful prefix to salvage.
    """
    fixed = len(SNAPSHOT_MAGIC) + 1 + 4
    if not data.startswith(SNAPSHOT_MAGIC):
        raise DurabilityError("not a snapshot file (bad magic)")
    if len(data) < fixed:
        raise DurabilityError("snapshot header truncated")
    version = data[len(SNAPSHOT_MAGIC)]
    if version > FORMAT_VERSION:
        raise DurabilityError(
            f"snapshot format version {version} is newer than supported "
            f"version {FORMAT_VERSION}")
    crc_stored = int.from_bytes(
        data[len(SNAPSHOT_MAGIC) + 1:fixed], "little")
    body = data[fixed:]
    if (zlib.crc32(body) & 0xFFFFFFFF) != crc_stored:
        raise DurabilityError("snapshot checksum mismatch")
    revision, offset = _read_uvarint(body, 0)
    seq, offset = _read_uvarint(body, offset)
    terms, offset = _decode_term_table(body, offset)
    count, offset = _read_uvarint(body, offset)
    triples: List[Triple] = []
    append = triples.append
    # the id-triple loop dominates recovery of a large store, so the
    # three varint reads are inlined here instead of calling
    # _read_uvarint 3*count times; IndexError doubles as the
    # truncation check the helper does explicitly
    try:
        for _ in range(count):
            ids = []
            for _position in range(3):
                result = 0
                shift = 0
                while True:
                    byte = body[offset]
                    offset += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                    if shift > 63:
                        raise DurabilityError("varint overflow")
                ids.append(result)
            append(Triple(terms[ids[0]], terms[ids[1]], terms[ids[2]]))
    except IndexError as exc:
        raise DurabilityError(f"truncated or bad triple ids: {exc}") from exc
    except TypeError as exc:
        raise DurabilityError(f"bad term reference: {exc}") from exc
    if offset != len(body):
        raise DurabilityError("trailing bytes after snapshot triples")
    return revision, seq, triples


def _apply_ops(
    store: TripleStore, ops: Sequence[Tuple[bool, Triple]]
) -> int:
    """Replay one frame's ops, preserving order and bulk grouping.

    Consecutive runs of same-direction ops are applied through
    ``add_many`` / ``remove_many`` so the replayed store's revision
    counter advances exactly as the primary's did (both bulk and single
    mutations advance it by the number of applied changes).  Every
    logged op was an applied change on the primary, so a no-op here
    means the log and the base state have diverged.
    """
    applied = 0
    i = 0
    count = len(ops)
    while i < count:
        added = ops[i][0]
        j = i
        run: List[Triple] = []
        while j < count and ops[j][0] == added:
            run.append(ops[j][1])
            j += 1
        changed = store.add_many(run) if added else store.remove_many(run)
        if changed != len(run):
            raise DurabilityError(
                f"replayed {'insert' if added else 'removal'} run applied "
                f"{changed}/{len(run)} changes — log diverged from base state")
        applied += changed
        i = j
    return applied


# -- the durable primary -------------------------------------------------------

#: callback receiving each appended frame and its encoded payload
FrameListener = Callable[[WALFrame, bytes], None]

_FSYNC_POLICIES = ("always", "commit", "never")


class DurableStore:
    """A :class:`TripleStore` whose mutations survive crashes.

    Opening a directory recovers whatever is durable in it (snapshot +
    WAL prefix) and resumes logging; a fresh directory starts empty.
    All access to triples goes through :attr:`store` — the durable layer
    is a pure observer of the store's batch-listener seam, so every
    existing caller (blackboard, transactions, serializers) is logged
    without modification.

    ``fsync`` policies:

    * ``"always"`` — fsync after every frame: a crash loses nothing that
      any caller observed as written.
    * ``"commit"`` (default) — write-through to the OS per frame, fsync
      only at :meth:`sync`, :meth:`checkpoint` and :meth:`close`: a
      power loss may drop the un-synced tail (never a prefix, never a
      partial frame after recovery).
    * ``"never"`` — leave fsync to the OS entirely; cheapest, weakest.

    ``auto_checkpoint_bytes`` triggers compaction (snapshot + WAL
    truncate) whenever the log grows past the threshold.
    """

    SNAPSHOT_NAME = "store.snapshot"
    WAL_NAME = "store.wal"

    def __init__(
        self,
        directory: str,
        fsync: str = "commit",
        auto_checkpoint_bytes: Optional[int] = None,
        fs: Optional[FileSystem] = None,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {_FSYNC_POLICIES}, got {fsync!r}")
        self.directory = directory
        self.fsync_policy = fsync
        self.auto_checkpoint_bytes = auto_checkpoint_bytes
        self._fs = fs if fs is not None else OS_FS
        if self._fs is OS_FS:
            os.makedirs(directory, exist_ok=True)
        self.store = TripleStore()
        self._frame_listeners: List[FrameListener] = []
        self._wal_file = None
        self._wal_size = 0
        self._next_seq = 1
        self._closed = False
        self._in_checkpoint = False
        self.stats: Dict[str, int] = {
            "frames_appended": 0,
            "bytes_appended": 0,
            "fsyncs": 0,
            "checkpoints": 0,
            "recovered_snapshot_triples": 0,
            "recovered_frames": 0,
            "recovered_ops": 0,
            "truncated_tail_bytes": 0,
        }
        self._recover()
        self._unsubscribe = self.store.subscribe_batch(self._on_batch)

    # -- paths -----------------------------------------------------------------

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.directory, self.SNAPSHOT_NAME)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.directory, self.WAL_NAME)

    @property
    def revision(self) -> int:
        return self.store.revision

    @property
    def next_seq(self) -> int:
        """The sequence number the next appended frame will carry."""
        return self._next_seq

    @property
    def wal_size(self) -> int:
        """Current WAL length in bytes (header + durable frames)."""
        return self._wal_size

    # -- recovery --------------------------------------------------------------

    def _read_file(self, path: str) -> bytes:
        handle = self._fs.open(path, "rb")
        try:
            return handle.read()
        finally:
            handle.close()

    def _recover(self) -> None:
        fs = self._fs
        for stale in (self.snapshot_path + ".tmp", self.wal_path + ".tmp"):
            if fs.exists(stale):
                fs.remove(stale)
        if fs.exists(self.snapshot_path):
            revision, seq, triples = decode_snapshot(
                self._read_file(self.snapshot_path))
            try:
                self.store.bulk_load(triples)
            except StoreError as exc:  # duplicate triples in the file
                raise DurabilityError(f"bad snapshot: {exc}") from exc
            # the snapshot records the primary's revision, which counts
            # every mutation ever applied — not just surviving triples
            self.store._revision = revision
            self._next_seq = seq
            self.stats["recovered_snapshot_triples"] = len(triples)
        if fs.exists(self.wal_path):
            data = self._read_file(self.wal_path)
            base_revision, base_seq, frames, durable_len = scan_wal(data)
            for frame in frames:
                if frame.revision <= self.store.revision:
                    # already folded into the snapshot (a crash landed
                    # between snapshot rename and WAL truncation)
                    self._next_seq = max(self._next_seq, frame.seq + 1)
                    continue
                _apply_ops(self.store, frame.ops)
                if self.store.revision != frame.revision:
                    raise DurabilityError(
                        f"frame {frame.seq} replayed to revision "
                        f"{self.store.revision}, log says {frame.revision}")
                self._next_seq = frame.seq + 1
                self.stats["recovered_frames"] += 1
                self.stats["recovered_ops"] += len(frame.ops)
            self.stats["truncated_tail_bytes"] = len(data) - durable_len
            self._wal_file = fs.open(self.wal_path, "r+b")
            self._wal_file.seek(durable_len)
            self._wal_file.truncate(durable_len)
            self._wal_size = durable_len
            if durable_len == 0:
                # crash during initial WAL creation: rewrite the header
                self._write_wal_header()
        else:
            self._wal_file = fs.open(self.wal_path, "wb")
            self._write_wal_header()

    def _write_wal_header(self) -> None:
        header = _wal_header(self.store.revision, self._next_seq)
        self._wal_file.seek(0)
        self._wal_file.truncate(0)
        self._wal_file.write(header)
        self._wal_file.flush()
        if self.fsync_policy != "never":
            self._fs.fsync(self._wal_file)
            self.stats["fsyncs"] += 1
        self._wal_size = len(header)

    # -- logging ---------------------------------------------------------------

    def _on_batch(self, changes: Sequence[Tuple[bool, Triple]]) -> None:
        if self._closed:
            raise DurabilityError("mutation on a closed DurableStore")
        frame = WALFrame(
            seq=self._next_seq,
            revision=self.store.revision,
            ops=tuple(changes),
        )
        payload = frame.encode()
        self._wal_file.write(_frame_bytes(payload))
        self._wal_file.flush()
        if self.fsync_policy == "always":
            self._fs.fsync(self._wal_file)
            self.stats["fsyncs"] += 1
        self._next_seq += 1
        self._wal_size += 8 + len(payload)
        self.stats["frames_appended"] += 1
        self.stats["bytes_appended"] += 8 + len(payload)
        for listener in list(self._frame_listeners):
            listener(frame, payload)
        if (
            self.auto_checkpoint_bytes is not None
            and not self._in_checkpoint
            and self._wal_size >= self.auto_checkpoint_bytes
        ):
            self.checkpoint()

    def subscribe_frames(self, listener: FrameListener) -> Callable[[], None]:
        """Register a replication tap; returns an unsubscriber.

        The listener receives every appended :class:`WALFrame` together
        with its encoded payload — the bytes are the transport format,
        so shipping them over a socket instead of an in-process queue is
        a transport swap, not a new protocol.
        """
        self._frame_listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._frame_listeners:
                self._frame_listeners.remove(listener)

        return unsubscribe

    # -- durability controls ---------------------------------------------------

    def sync(self) -> None:
        """Force everything appended so far onto durable storage."""
        self._assert_open()
        self._wal_file.flush()
        self._fs.fsync(self._wal_file)
        self.stats["fsyncs"] += 1

    def checkpoint(self) -> None:
        """Compaction: snapshot the store, then truncate the WAL.

        The snapshot lands via temp-file + atomic rename *before* the
        WAL is reset, so a crash at any point leaves either the old
        (snapshot, long WAL) or the new (snapshot, truncated WAL) — the
        recovery path skips WAL frames already folded into a newer
        snapshot, covering the in-between window.
        """
        self._assert_open()
        fs = self._fs
        self._in_checkpoint = True
        try:
            data = encode_snapshot(self.store, self._next_seq)
            tmp = self.snapshot_path + ".tmp"
            handle = fs.open(tmp, "wb")
            try:
                handle.write(data)
                handle.flush()
                fs.fsync(handle)
            finally:
                handle.close()
            fs.replace(tmp, self.snapshot_path)
            self._wal_file.close()
            self._wal_file = fs.open(self.wal_path, "wb")
            self._write_wal_header()
            self.stats["checkpoints"] += 1
        finally:
            self._in_checkpoint = False

    def replication_bootstrap(self) -> bytes:
        """A snapshot of the current state for seeding a new replica.

        Encodes the live store (not the on-disk snapshot, which may lag)
        with the next frame sequence number, so a replica loading it
        joins the frame stream gap-free.
        """
        return encode_snapshot(self.store, self._next_seq)

    def close(self) -> None:
        """Detach from the store and release the WAL file."""
        if self._closed:
            return
        self._closed = True
        self._unsubscribe()
        if self._wal_file is not None:
            self._wal_file.flush()
            if self.fsync_policy != "never":
                self._fs.fsync(self._wal_file)
                self.stats["fsyncs"] += 1
            self._wal_file.close()
            self._wal_file = None

    def _assert_open(self) -> None:
        if self._closed:
            raise DurabilityError("DurableStore is closed")

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableStore(dir={self.directory!r}, triples={len(self.store)}, "
            f"revision={self.revision}, next_seq={self._next_seq}, "
            f"fsync={self.fsync_policy!r})"
        )


# -- replicas ------------------------------------------------------------------

class ReplicaStore:
    """A read-only store maintained by consuming WAL frames.

    The replica owns a private :class:`TripleStore` that only
    :meth:`apply_frame` may mutate; reads go through the standard
    query/planner API (:meth:`query`, :attr:`store`), so a caller can
    point existing query code at a replica unchanged.

    Frame discipline: the next frame must carry exactly the expected
    sequence number.  Re-delivered old frames are ignored (idempotent
    transports stay simple); a *gap* — a frame from the future — raises
    :class:`ReplicationError`, because applying it would silently skip
    mutations.
    """

    def __init__(self, expected_seq: int = 1, base_revision: int = 0) -> None:
        self.store = TripleStore()
        if base_revision:
            self.store._revision = base_revision
        self._expected_seq = expected_seq
        self.frames_applied = 0
        self.frames_ignored = 0

    @classmethod
    def from_bootstrap(cls, snapshot: bytes) -> "ReplicaStore":
        """Seed a replica from :meth:`DurableStore.replication_bootstrap`."""
        revision, seq, triples = decode_snapshot(snapshot)
        replica = cls(expected_seq=seq)
        try:
            replica.store.bulk_load(triples)
        except StoreError as exc:
            raise ReplicationError(f"bad bootstrap snapshot: {exc}") from exc
        replica.store._revision = revision
        return replica

    @property
    def expected_seq(self) -> int:
        return self._expected_seq

    @property
    def revision(self) -> int:
        return self.store.revision

    def lag(self, primary: DurableStore) -> int:
        """How many frames behind the primary this replica is."""
        return primary.next_seq - self._expected_seq

    def apply_frame(self, frame) -> bool:
        """Apply one frame (a :class:`WALFrame` or its encoded payload).

        Returns True if the frame advanced the replica, False if it was
        an already-applied duplicate.  Raises :class:`ReplicationError`
        on a sequence gap or a post-apply revision mismatch.
        """
        if isinstance(frame, (bytes, bytearray, memoryview)):
            frame = WALFrame.decode(bytes(frame))
        if frame.seq < self._expected_seq:
            self.frames_ignored += 1
            return False
        if frame.seq > self._expected_seq:
            raise ReplicationError(
                f"out-of-order frame: got seq {frame.seq}, expected "
                f"{self._expected_seq} — refusing to skip mutations")
        try:
            _apply_ops(self.store, frame.ops)
        except DurabilityError as exc:
            raise ReplicationError(str(exc)) from exc
        if self.store.revision != frame.revision:
            raise ReplicationError(
                f"replica at revision {self.store.revision} after frame "
                f"{frame.seq}, primary recorded {frame.revision}")
        self._expected_seq += 1
        self.frames_applied += 1
        return True

    def query(self, query: Query) -> List[Binding]:
        """Evaluate a BGP query through the cost-based planner."""
        return evaluate_planned(self.store, query)

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return (
            f"ReplicaStore(triples={len(self.store)}, "
            f"revision={self.revision}, expected_seq={self._expected_seq})"
        )


class ReplicationLink:
    """In-process delta-shipping from a primary to its replicas.

    Subscribes to the primary's frame stream and buffers the encoded
    payloads per replica; :meth:`pump` delivers what is queued.  Keeping
    delivery explicit makes lag observable and lets tests (and batch
    topologies) ship deltas at their own cadence; a real transport would
    replace this class while reusing the same frame bytes.
    """

    def __init__(self, primary: DurableStore) -> None:
        self.primary = primary
        self._queues: Dict[ReplicaStore, Deque[bytes]] = {}
        self._unsubscribe = primary.subscribe_frames(self._on_frame)
        self.frames_shipped = 0

    def _on_frame(self, frame: WALFrame, payload: bytes) -> None:
        for queue in self._queues.values():
            queue.append(payload)

    def attach(self, replica: Optional[ReplicaStore] = None) -> ReplicaStore:
        """Attach (or create) a replica, bootstrapped from the primary."""
        if replica is None:
            replica = ReplicaStore.from_bootstrap(
                self.primary.replication_bootstrap())
        self._queues[replica] = deque()
        return replica

    def detach(self, replica: ReplicaStore) -> None:
        self._queues.pop(replica, None)

    def pending(self, replica: ReplicaStore) -> int:
        """Frames queued for a replica but not yet delivered."""
        return len(self._queues[replica])

    def pump(self, limit: Optional[int] = None) -> int:
        """Deliver up to ``limit`` queued frames per replica (all, if
        None); returns the total number of frames applied."""
        delivered = 0
        for replica, queue in self._queues.items():
            budget = len(queue) if limit is None else min(limit, len(queue))
            for _ in range(budget):
                replica.apply_frame(queue.popleft())
                delivered += 1
        self.frames_shipped += delivered
        return delivered

    def close(self) -> None:
        self._unsubscribe()
        self._queues.clear()
