"""Filesystem seam for the durability layer, with fault injection.

:class:`~repro.rdf.durability.DurableStore` performs every file operation
through a small :class:`FileSystem` object so the crash-recovery test
harness can put a hostile disk underneath it.  Three implementations:

* :class:`OsFileSystem` — the real thing (the default, via :data:`OS_FS`);
* :class:`MemoryFS` — an in-memory disk, so property tests can run
  thousands of recoveries without touching the host filesystem;
* :class:`FaultInjectingFS` — a :class:`MemoryFS` that models the failure
  modes a write-ahead log must survive:

  - **fsync-dropped tail** — written bytes live in a volatile cache until
    ``fsync``; :meth:`FaultInjectingFS.crash` reverts every file to its
    last-synced prefix, so un-synced frames vanish exactly as they would
    on power loss;
  - **torn writes** — ``crash(keep_unsynced_bytes=k)`` persists only the
    first *k* bytes of the volatile tail, leaving a partial frame on disk;
  - **short writes** — :attr:`FaultInjectingFS.fail_after_bytes` makes a
    write persist a prefix and then raise ``OSError``, like a full disk;
  - **corrupt frames** — :meth:`FaultInjectingFS.corrupt` flips stored
    bytes in place, defeating length checks but not checksums.

The model is deliberately byte-granular: recovery must yield exactly the
longest durable prefix for a crash at *any* byte boundary, and the
hypothesis suite in ``tests/rdf/test_wal_recovery.py`` drives these hooks
over every boundary of every generated log.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

__all__ = [
    "FileSystem",
    "OsFileSystem",
    "MemoryFS",
    "FaultInjectingFS",
    "OS_FS",
]


class FileSystem:
    """The file operations the durability layer needs, as one seam.

    Only binary modes are supported (``"rb"``, ``"wb"``, ``"ab"``,
    ``"r+b"``) — the WAL and snapshot formats are binary.
    """

    def open(self, path: str, mode: str = "rb"):
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def replace(self, src: str, dst: str) -> None:
        """Atomically rename ``src`` over ``dst`` (``os.replace``)."""
        raise NotImplementedError

    def remove(self, path: str) -> None:
        raise NotImplementedError

    def fsync(self, handle) -> None:
        """Force ``handle``'s written bytes to durable storage."""
        raise NotImplementedError


class OsFileSystem(FileSystem):
    """The real filesystem."""

    def open(self, path: str, mode: str = "rb"):
        return open(path, mode)

    def exists(self, path: str) -> bool:
        return os.path.exists(path)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def fsync(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())


#: shared real-filesystem instance (the default everywhere)
OS_FS = OsFileSystem()


class _MemFile:
    """A file handle over a :class:`MemoryFS` entry."""

    def __init__(self, fs: "MemoryFS", path: str, mode: str) -> None:
        if mode not in ("rb", "wb", "ab", "r+b"):
            raise ValueError(f"MemoryFS supports binary modes only, got {mode!r}")
        self._fs = fs
        self.path = path
        self.mode = mode
        self.closed = False
        data = fs._files.get(path)
        if mode == "rb":
            if data is None:
                raise FileNotFoundError(path)
            self._pos = 0
        elif mode == "wb":
            fs._files[path] = bytearray()
            fs._synced[path] = 0
            self._pos = 0
        elif mode == "ab":
            if data is None:
                fs._files[path] = bytearray()
                fs._synced[path] = 0
            self._pos = len(fs._files[path])
        else:  # r+b
            if data is None:
                raise FileNotFoundError(path)
            self._pos = 0

    # -- the subset of the io protocol the WAL uses ---------------------------

    def read(self, size: int = -1) -> bytes:
        self._check_open()
        data = self._fs._files[self.path]
        if size is None or size < 0:
            chunk = bytes(data[self._pos:])
        else:
            chunk = bytes(data[self._pos:self._pos + size])
        self._pos += len(chunk)
        return chunk

    def write(self, payload: bytes) -> int:
        self._check_open()
        if self.mode == "rb":
            raise OSError("file opened read-only")
        accepted = self._fs._accept_write(self.path, len(payload))
        data = self._fs._files[self.path]
        chunk = payload[:accepted]
        end = self._pos + len(chunk)
        if self._pos == len(data):
            data.extend(chunk)
        else:
            if end > len(data):
                data.extend(b"\x00" * (end - len(data)))
            data[self._pos:end] = chunk
        self._pos = end
        if accepted < len(payload):
            raise OSError(
                f"short write on {self.path}: {accepted}/{len(payload)} bytes")
        return accepted

    def seek(self, offset: int, whence: int = 0) -> int:
        self._check_open()
        size = len(self._fs._files[self.path])
        if whence == 0:
            self._pos = offset
        elif whence == 1:
            self._pos += offset
        elif whence == 2:
            self._pos = size + offset
        else:
            raise ValueError(f"bad whence {whence}")
        return self._pos

    def tell(self) -> int:
        return self._pos

    def truncate(self, size: Optional[int] = None) -> int:
        self._check_open()
        if self.mode == "rb":
            raise OSError("file opened read-only")
        size = self._pos if size is None else size
        data = self._fs._files[self.path]
        del data[size:]
        synced = self._fs._synced
        synced[self.path] = min(synced.get(self.path, 0), size)
        return size

    def flush(self) -> None:
        self._check_open()
        # writes are modeled as landing in the OS cache immediately; only
        # FileSystem.fsync advances the durable prefix

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            handles = self._fs._handles.get(self.path)
            if handles and self in handles:
                handles.remove(self)

    def __enter__(self) -> "_MemFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self.closed:
            raise ValueError("I/O operation on closed file")


class MemoryFS(FileSystem):
    """An in-memory disk with the same durability model as a real one:
    file contents are what the OS cache sees; the per-file *synced*
    length is what survives :meth:`FaultInjectingFS.crash`."""

    def __init__(self) -> None:
        self._files: Dict[str, bytearray] = {}
        #: durable prefix length per path (advanced only by fsync)
        self._synced: Dict[str, int] = {}
        self._handles: Dict[str, List[_MemFile]] = {}

    def open(self, path: str, mode: str = "rb"):
        handle = _MemFile(self, path, mode)
        self._handles.setdefault(path, []).append(handle)
        return handle

    def exists(self, path: str) -> bool:
        return path in self._files

    def replace(self, src: str, dst: str) -> None:
        if src not in self._files:
            raise FileNotFoundError(src)
        self._files[dst] = self._files.pop(src)
        self._synced[dst] = self._synced.pop(src, 0)

    def remove(self, path: str) -> None:
        if path not in self._files:
            raise FileNotFoundError(path)
        del self._files[path]
        self._synced.pop(path, None)

    def fsync(self, handle) -> None:
        self._synced[handle.path] = len(self._files[handle.path])

    # -- inspection helpers for tests ----------------------------------------

    def read_bytes(self, path: str) -> bytes:
        return bytes(self._files[path])

    def write_bytes(self, path: str, data: bytes) -> None:
        """Install file content directly, marking it fully durable."""
        self._files[path] = bytearray(data)
        self._synced[path] = len(data)

    def synced_length(self, path: str) -> int:
        return self._synced.get(path, 0)

    def _accept_write(self, path: str, size: int) -> int:
        """How many of ``size`` bytes the disk accepts (hook for faults)."""
        return size


class FaultInjectingFS(MemoryFS):
    """A :class:`MemoryFS` that can lose power, run out of disk, and rot."""

    def __init__(self) -> None:
        super().__init__()
        #: when set, total bytes accepted across all writes before the
        #: disk starts short-writing (the excess raises ``OSError``)
        self.fail_after_bytes: Optional[int] = None
        self._written_total = 0
        self.crashes = 0

    def _accept_write(self, path: str, size: int) -> int:
        if self.fail_after_bytes is None:
            return size
        budget = self.fail_after_bytes - self._written_total
        accepted = max(0, min(size, budget))
        self._written_total += accepted
        return accepted

    def crash(self, keep_unsynced_bytes: int = 0) -> None:
        """Simulate power loss: every file reverts to its durable prefix.

        ``keep_unsynced_bytes`` persists that many bytes of each file's
        volatile tail first — a torn write frozen mid-flight.  All open
        handles are invalidated, as the process they belonged to is gone.
        """
        self.crashes += 1
        for path, data in self._files.items():
            durable = min(
                len(data), self._synced.get(path, 0) + keep_unsynced_bytes
            )
            del data[durable:]
            self._synced[path] = durable
        for path, handles in list(self._handles.items()):
            for handle in handles:
                handle.closed = True
            self._handles[path] = []

    def corrupt(self, path: str, offset: int, xor: int = 0xFF) -> None:
        """Flip bits of one stored byte in place (checksum fodder)."""
        data = self._files[path]
        if not 0 <= offset < len(data):
            raise IndexError(f"corrupt offset {offset} outside {path}")
        data[offset] ^= xor
