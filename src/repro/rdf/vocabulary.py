"""The integration-workbench RDF vocabulary (controlled terms, Section 5.1).

The paper predefines *"certain annotations using a controlled vocabulary"*
— ``name``, ``type``, ``documentation`` on schema elements; containment
edge labels; ``confidence-score``, ``is-user-defined``, ``is-complete``,
``variable-name`` and ``code`` on mapping-matrix components.  This module
pins those terms down as IRIs in the ``iw:`` namespace plus the slice of
RDF/RDFS we rely on.
"""

from __future__ import annotations

from .namespace import IW_NS, RDF_NS, RDFS_NS
from .term import IRI

# -- RDF / RDFS core -----------------------------------------------------------

RDF_TYPE: IRI = RDF_NS.type
RDFS_LABEL: IRI = RDFS_NS.label
RDFS_COMMENT: IRI = RDFS_NS.comment
RDFS_SUBCLASS_OF: IRI = RDFS_NS.subClassOf

# -- classes -------------------------------------------------------------------

SCHEMA_CLASS: IRI = IW_NS.Schema
ELEMENT_CLASS: IRI = IW_NS.SchemaElement
MATRIX_CLASS: IRI = IW_NS.MappingMatrix
ROW_CLASS: IRI = IW_NS.MatrixRow
COLUMN_CLASS: IRI = IW_NS.MatrixColumn
CELL_CLASS: IRI = IW_NS.MappingCell

# -- element annotations (Section 5.1.1: name, type, documentation) ----------

NAME: IRI = IW_NS.name
TYPE: IRI = IW_NS.type
DOCUMENTATION: IRI = IW_NS.documentation
KIND: IRI = IW_NS.kind

# -- structural edge labels ----------------------------------------------------

CONTAINS_TABLE: IRI = IW_NS["contains-table"]
CONTAINS_ATTRIBUTE: IRI = IW_NS["contains-attribute"]
CONTAINS_ELEMENT: IRI = IW_NS["contains-element"]
CONTAINS_VALUE: IRI = IW_NS["contains-value"]
HAS_DOMAIN: IRI = IW_NS["has-domain"]
HAS_KEY: IRI = IW_NS["has-key"]
KEY_ATTRIBUTE: IRI = IW_NS["key-attribute"]
REFERENCES: IRI = IW_NS.references

#: Mapping between schema-graph edge labels (strings) and IW edge IRIs.
EDGE_LABEL_TO_IRI = {
    "contains-table": CONTAINS_TABLE,
    "contains-attribute": CONTAINS_ATTRIBUTE,
    "contains-element": CONTAINS_ELEMENT,
    "contains-value": CONTAINS_VALUE,
    "has-domain": HAS_DOMAIN,
    "has-key": HAS_KEY,
    "key-attribute": KEY_ATTRIBUTE,
    "references": REFERENCES,
}
IRI_TO_EDGE_LABEL = {iri: label for label, iri in EDGE_LABEL_TO_IRI.items()}

# -- schema / matrix structure --------------------------------------------------

HAS_ELEMENT: IRI = IW_NS.hasElement
HAS_ROOT: IRI = IW_NS.hasRoot
HAS_ROW: IRI = IW_NS.hasRow
HAS_COLUMN: IRI = IW_NS.hasColumn
HAS_CELL: IRI = IW_NS.hasCell
ROW_ELEMENT: IRI = IW_NS.rowElement
COLUMN_ELEMENT: IRI = IW_NS.columnElement
CELL_ROW: IRI = IW_NS.cellRow
CELL_COLUMN: IRI = IW_NS.cellColumn
SOURCE_SCHEMA: IRI = IW_NS.sourceSchema
TARGET_SCHEMA: IRI = IW_NS.targetSchema

# -- mapping annotations (Section 5.1.2) ----------------------------------------

CONFIDENCE_SCORE: IRI = IW_NS["confidence-score"]
IS_USER_DEFINED: IRI = IW_NS["is-user-defined"]
IS_COMPLETE: IRI = IW_NS["is-complete"]
VARIABLE_NAME: IRI = IW_NS["variable-name"]
CODE: IRI = IW_NS.code

# -- provenance / versioning (Section 5.1.3 enhancements) -----------------------

VERSION: IRI = IW_NS.version
PREDECESSOR: IRI = IW_NS.predecessor
GENERATED_BY: IRI = IW_NS.generatedBy
GENERATED_AT: IRI = IW_NS.generatedAt
DERIVED_FROM: IRI = IW_NS.derivedFrom
FOCUS: IRI = IW_NS.focus
