"""Conversions between the core model and its RDF representation.

Section 5.1: the blackboard's *"basic contents ... are schema graphs and
mapping matrices"*, stored as RDF so that any element can be annotated.
These functions define the canonical triple layout:

* a schema is an ``iw:Schema`` resource with ``iw:hasElement`` links;
* each element is an ``iw:SchemaElement`` with ``iw:name``, ``iw:kind``,
  ``iw:type`` and ``iw:documentation`` annotations;
* structural edges reuse the controlled edge vocabulary
  (``iw:contains-attribute`` etc.);
* a matrix is an ``iw:MappingMatrix`` with row/column resources carrying
  ``iw:variable-name`` / ``iw:code`` / ``iw:is-complete``, and cell
  resources carrying ``iw:confidence-score`` / ``iw:is-user-defined``.

The IRI scheme is deterministic so that graph → RDF → graph round-trips
and deltas are stable across workbench instances.
"""

from __future__ import annotations

import urllib.parse
from typing import Dict, List, Optional, Tuple

from ..core.correspondence import Correspondence
from ..core.elements import ElementKind, SchemaElement
from ..core.errors import StoreError
from ..core.graph import SchemaGraph
from ..core.matrix import MappingMatrix
from .namespace import IW_NS, Namespace
from .store import TripleStore
from .term import IRI, Literal, literal
from .triple import Triple
from . import vocabulary as V

SCHEMA_BASE = Namespace("http://mitre.org/iw/schema/")
ELEMENT_BASE = Namespace("http://mitre.org/iw/element/")
MATRIX_BASE = Namespace("http://mitre.org/iw/matrix/")


def _quote(name: str) -> str:
    return urllib.parse.quote(name, safe="")


def schema_iri(schema_name: str) -> IRI:
    return SCHEMA_BASE.term(_quote(schema_name))


def element_iri(schema_name: str, element_id: str) -> IRI:
    return ELEMENT_BASE.term(f"{_quote(schema_name)}/{_quote(element_id)}")


def matrix_iri(matrix_name: str) -> IRI:
    return MATRIX_BASE.term(_quote(matrix_name))


def row_iri(matrix_name: str, element_id: str) -> IRI:
    return MATRIX_BASE.term(f"{_quote(matrix_name)}/row/{_quote(element_id)}")


def column_iri(matrix_name: str, element_id: str) -> IRI:
    return MATRIX_BASE.term(f"{_quote(matrix_name)}/col/{_quote(element_id)}")


def cell_iri(matrix_name: str, source_id: str, target_id: str) -> IRI:
    return MATRIX_BASE.term(
        f"{_quote(matrix_name)}/cell/{_quote(source_id)}/{_quote(target_id)}"
    )


# -- schema graph -> RDF ------------------------------------------------------

def schema_to_rdf(graph: SchemaGraph, store: TripleStore) -> IRI:
    """Write a schema graph into the store; returns the schema's IRI.

    The whole graph lands via one :meth:`TripleStore.add_many` bulk
    mutation, so transaction logs and other batch listeners pay one
    callback per schema load instead of one per triple.
    """
    s_iri = schema_iri(graph.name)
    triples: List[Triple] = [
        Triple(s_iri, V.RDF_TYPE, V.SCHEMA_CLASS),
        Triple(s_iri, V.NAME, literal(graph.name)),
    ]
    element_iris: Dict[str, IRI] = {}
    for element in graph:
        e_iri = element_iri(graph.name, element.element_id)
        element_iris[element.element_id] = e_iri
        triples.append(Triple(s_iri, V.HAS_ELEMENT, e_iri))
        triples.append(Triple(e_iri, V.RDF_TYPE, V.ELEMENT_CLASS))
        triples.append(Triple(e_iri, V.NAME, literal(element.name)))
        triples.append(Triple(e_iri, V.KIND, literal(element.kind.value)))
        if element.datatype:
            triples.append(Triple(e_iri, V.TYPE, literal(element.datatype)))
        if element.documentation:
            triples.append(Triple(e_iri, V.DOCUMENTATION, literal(element.documentation)))
        for key, value in element.annotations.items():
            if isinstance(value, (str, int, float, bool)):
                triples.append(
                    Triple(e_iri, IW_NS.term(f"annotation-{_quote(key)}"), literal(value))
                )
    triples.append(Triple(s_iri, V.HAS_ROOT, element_iris[graph.root.element_id]))
    for edge in graph.edges:
        predicate = V.EDGE_LABEL_TO_IRI.get(edge.label, IW_NS.term(_quote(edge.label)))
        triples.append(Triple(element_iris[edge.subject], predicate, element_iris[edge.object]))
    store.add_many(triples)
    return s_iri


def _schema_slices(
    graph: SchemaGraph,
) -> "Tuple[Dict[object, Dict[IRI, List[object]]], int]":
    """The canonical schema layout as ``{subject: {predicate: [objects]}}``.

    The schema-side mirror of :func:`_matrix_slices`: the single source
    of truth for the schema→RDF shape that both :func:`schema_triples`
    (which flattens it) and the delta branch of :func:`serialize_schema`
    (which diffs it against the store's index slices without
    materializing a :class:`Triple` per statement) build on.  Returns
    the nested slices plus the total statement count.
    """
    s_iri = schema_iri(graph.name)
    qname = _quote(graph.name)
    term = ELEMENT_BASE.term
    slices: Dict[object, Dict[IRI, List[object]]] = {}
    total = 0

    m_slice: Dict[IRI, List[object]] = slices.setdefault(s_iri, {})
    m_slice[V.RDF_TYPE] = [V.SCHEMA_CLASS]
    m_slice[V.NAME] = [literal(graph.name)]
    has_elements = m_slice.setdefault(V.HAS_ELEMENT, [])
    total += 2
    element_iris: Dict[str, IRI] = {}
    for element in graph:
        e_iri = term(f"{qname}/{_quote(element.element_id)}")
        element_iris[element.element_id] = e_iri
        has_elements.append(e_iri)
        e_slice: Dict[IRI, List[object]] = {
            V.RDF_TYPE: [V.ELEMENT_CLASS],
            V.NAME: [literal(element.name)],
            V.KIND: [literal(element.kind.value)],
        }
        total += 4
        if element.datatype:
            e_slice[V.TYPE] = [literal(element.datatype)]
            total += 1
        if element.documentation:
            e_slice[V.DOCUMENTATION] = [literal(element.documentation)]
            total += 1
        for key, value in element.annotations.items():
            if isinstance(value, (str, int, float, bool)):
                e_slice[IW_NS.term(f"annotation-{_quote(key)}")] = [literal(value)]
                total += 1
        slices[e_iri] = e_slice
    m_slice[V.HAS_ROOT] = [element_iris[graph.root.element_id]]
    total += 1
    for edge in graph.edges:
        predicate = V.EDGE_LABEL_TO_IRI.get(edge.label, IW_NS.term(_quote(edge.label)))
        e_slice = slices[element_iris[edge.subject]]
        objs = e_slice.get(predicate)
        if objs is None:
            objs = e_slice[predicate] = []
        objs.append(element_iris[edge.object])
        total += 1
    if not has_elements:
        del m_slice[V.HAS_ELEMENT]
    return slices, total


def schema_triples(graph: SchemaGraph) -> List[Triple]:
    """The canonical triple layout of a schema, as one list.

    Flattens :func:`_schema_slices`, so it is content-identical (as a
    set) to what :func:`schema_to_rdf` writes and to what the delta
    serializer diffs.
    """
    slices, _total = _schema_slices(graph)
    triples: List[Triple] = []
    append = triples.append
    for subject, by_pred in slices.items():
        for predicate, objs in by_pred.items():
            for obj in objs:
                append(Triple(subject, predicate, obj))
    return triples


def remove_schema(store: TripleStore, schema_name: str) -> int:
    """Remove a schema and all its element triples.

    Also strips triples *pointing at* the schema or its elements
    (matrix row/column links, third-party annotations), so nothing
    dangles.  Returns the number of triples removed; zero if no such
    schema is stored.
    """
    s_iri = schema_iri(schema_name)
    element_iris = [
        obj for obj in store.objects(s_iri, V.HAS_ELEMENT)
        if isinstance(obj, IRI)
    ]
    removed = store.remove_matching(subject=s_iri)
    for e_iri in element_iris:
        removed += store.remove_matching(subject=e_iri)
        removed += store.remove_matching(obj=e_iri)
    removed += store.remove_matching(obj=s_iri)
    return removed


def _dirty_schema_elements(previous: SchemaGraph, graph: SchemaGraph) -> set:
    """Element ids whose RDF subject slices may differ between versions.

    A lightweight mirror of the harmony engine's ``graph_delta`` kept
    local so :mod:`repro.rdf` never imports :mod:`repro.harmony`:
    added/removed ids, attribute-level changes (name, kind, datatype,
    documentation, annotations), and the *subjects* of added or removed
    edges (edge triples live in the subject element's slice).
    """
    old_ids = set(previous.element_ids)
    new_ids = set(graph.element_ids)
    dirty = old_ids ^ new_ids
    for element_id in old_ids & new_ids:
        old = previous.element(element_id)
        new = graph.element(element_id)
        if (
            old.name != new.name
            or old.kind != new.kind
            or old.datatype != new.datatype
            or old.documentation != new.documentation
            or old.annotations != new.annotations
        ):
            dirty.add(element_id)
    old_edges = {(e.subject, e.label, e.object) for e in previous.edges}
    new_edges = {(e.subject, e.label, e.object) for e in graph.edges}
    for subject, _label, _obj in old_edges ^ new_edges:
        dirty.add(subject)
    return dirty


def serialize_schema(
    graph: SchemaGraph,
    store: TripleStore,
    delta: bool = False,
    previous: Optional[SchemaGraph] = None,
) -> IRI:
    """Schema serialization with an O(delta) re-serialization path.

    Both modes are idempotent and produce the same stored schema state
    as :func:`schema_to_rdf`:

    * **bulk** (``delta=False``) — remove any stored schema of the same
      name, then land the precomputed triple list in one ``add_many``;
    * **delta** (``delta=True``) — diff the desired layout against the
      stored subject slices and only remove the stale / add the fresh
      statements.  When *previous* (the graph version currently in the
      store) is given, the diff is restricted to the elements that
      actually changed between the versions — the evolve→serialize hot
      path touches O(delta) subjects instead of every element.  Unlike
      the bulk mode, *inbound* triples pointing at surviving elements
      (matrix links, third-party annotations) are preserved.

    *previous* must faithfully describe the stored version: a stale
    *previous* can leave superseded triples behind (callers like
    ``evolve_and_rematch`` pass the version they just read).
    """
    stats = _SERIALIZATION_STATS
    s_iri = schema_iri(graph.name)
    if not delta:
        removed = 0
        if V.SCHEMA_CLASS in store.objects(s_iri, V.RDF_TYPE):
            removed = remove_schema(store, graph.name)
        desired = schema_triples(graph)
        store.add_many(desired)
        stats["schema_bulk_serializations"] += 1
        stats["schema_triples_written"] += len(desired)
        stats["schema_triples_removed"] += removed
        return s_iri

    desired_slices, total = _schema_slices(graph)
    exists = V.SCHEMA_CLASS in store.objects(s_iri, V.RDF_TYPE)
    if previous is not None and previous.name != graph.name:
        previous = None
    subject_slice = store.subject_slice
    dropped_iris: List[IRI]
    if previous is not None and exists:
        dirty = _dirty_schema_elements(previous, graph)
        subjects = {s_iri}
        subjects.update(element_iri(graph.name, eid) for eid in dirty)
        dropped_iris = [
            element_iri(graph.name, eid)
            for eid in previous.element_ids
            if eid not in graph
        ]
    else:
        subjects = set(desired_slices)
        stored_elements = [
            obj for obj in store.objects(s_iri, V.HAS_ELEMENT)
            if isinstance(obj, IRI)
        ]
        subjects.update(stored_elements)
        dropped_iris = [e for e in stored_elements if e not in desired_slices]

    fresh: List[Triple] = []
    stale: List[Triple] = []
    fresh_append = fresh.append
    stale_append = stale.append
    reconcile = [s for s in desired_slices if s in subjects]
    reconcile.extend(s for s in subjects if s not in desired_slices)
    for subject in reconcile:
        desired_slice = desired_slices.get(subject)
        stored = subject_slice(subject)
        if desired_slice:
            for predicate, objs in desired_slice.items():
                have = stored.get(predicate) if stored else None
                if have is None:
                    for obj in objs:
                        fresh_append(Triple(subject, predicate, obj))
                else:
                    for obj in objs:
                        if obj not in have:
                            fresh_append(Triple(subject, predicate, obj))
        if stored:
            for predicate, objs in stored.items():
                want = desired_slice.get(predicate) if desired_slice else None
                gone = objs - set(want) if want else objs
                for obj in gone:
                    stale_append(Triple(subject, predicate, obj))
    stale.sort(key=Triple.sort_key)
    store.remove_many(stale)
    inbound_removed = 0
    for e_iri in dropped_iris:
        inbound_removed += store.remove_matching(obj=e_iri)
    store.add_many(fresh)
    stats["schema_delta_serializations"] += 1
    stats["schema_triples_written"] += len(fresh)
    stats["schema_triples_removed"] += len(stale) + inbound_removed
    stats["schema_triples_unchanged"] += total - len(fresh)
    return s_iri


def rdf_to_schema(store: TripleStore, schema_name: str) -> SchemaGraph:
    """Reconstruct a schema graph from its triples."""
    s_iri = schema_iri(schema_name)
    if V.SCHEMA_CLASS not in store.objects(s_iri, V.RDF_TYPE):
        raise StoreError(f"no schema named {schema_name!r} in the store")
    graph = SchemaGraph(schema_name)
    iri_to_id: Dict[IRI, str] = {}
    for obj in store.objects(s_iri, V.HAS_ELEMENT):
        assert isinstance(obj, IRI)
        name_lit = store.object(obj, V.NAME)
        kind_lit = store.object(obj, V.KIND)
        type_lit = store.object(obj, V.TYPE)
        doc_lit = store.object(obj, V.DOCUMENTATION)
        element_id = urllib.parse.unquote(obj.value.rsplit("/", 1)[-1])
        annotations = {}
        for predicate, values in store.describe(obj).items():
            prefix = IW_NS.base + "annotation-"
            if predicate.value.startswith(prefix):
                key = urllib.parse.unquote(predicate.value[len(prefix):])
                lit = values[0]
                if isinstance(lit, Literal):
                    annotations[key] = lit.to_python()
        graph.add_element(
            SchemaElement(
                element_id=element_id,
                name=name_lit.to_python() if isinstance(name_lit, Literal) else element_id,
                kind=ElementKind(kind_lit.to_python()) if isinstance(kind_lit, Literal) else ElementKind.ELEMENT,
                datatype=type_lit.to_python() if isinstance(type_lit, Literal) else None,
                documentation=doc_lit.to_python() if isinstance(doc_lit, Literal) else "",
                annotations=annotations,
            )
        )
        iri_to_id[obj] = element_id
    for e_iri, element_id in iri_to_id.items():
        for predicate, values in store.describe(e_iri).items():
            label = V.IRI_TO_EDGE_LABEL.get(predicate)
            if label is None:
                continue
            for value in values:
                if isinstance(value, IRI) and value in iri_to_id:
                    graph.add_edge(element_id, label, iri_to_id[value])
    return graph


def schemas_in_store(store: TripleStore) -> List[str]:
    """Names of all schemas present in the store."""
    names = []
    for subject in store.subjects(V.RDF_TYPE, V.SCHEMA_CLASS):
        lit = store.object(subject, V.NAME)
        if isinstance(lit, Literal):
            names.append(lit.lexical)
    return sorted(names)


# -- mapping matrix -> RDF --------------------------------------------------------

#: process-wide bulk/delta matrix-serialization counters; surfaced via
#: :meth:`HarmonyEngine.fastpath_stats` and asserted in perf_smoke.py
_SERIALIZATION_STATS = {
    "matrix_bulk_serializations": 0,
    "matrix_delta_serializations": 0,
    "matrix_triples_written": 0,
    "matrix_triples_removed": 0,
    "matrix_triples_unchanged": 0,
    "schema_bulk_serializations": 0,
    "schema_delta_serializations": 0,
    "schema_triples_written": 0,
    "schema_triples_removed": 0,
    "schema_triples_unchanged": 0,
}


def serialization_stats() -> Dict[str, int]:
    """A snapshot of the matrix/schema-serialization counters."""
    return dict(_SERIALIZATION_STATS)


def reset_serialization_stats() -> None:
    for key in _SERIALIZATION_STATS:
        _SERIALIZATION_STATS[key] = 0


def _matrix_slices(
    matrix: MappingMatrix,
) -> "Tuple[Dict[object, Dict[IRI, List[object]]], int]":
    """The canonical matrix layout as ``{subject: {predicate: [objects]}}``.

    This is the single source of truth for the matrix→RDF shape.  Both
    :func:`matrix_triples` (which flattens it) and the delta branch of
    :func:`serialize_matrix` (which diffs it against the store's index
    slices without materializing a :class:`Triple` per statement) build
    on it, so bulk and delta serialization can never drift apart.

    The matrix name is quoted once and every row/column identifier is
    interned in a dict, so the cell loop — the bulk of a big matrix —
    reuses the quoted ids instead of re-quoting three per cell.  Returns
    the nested slices plus the total statement count.
    """
    qname = _quote(matrix.name)
    m_iri = matrix_iri(matrix.name)
    slices: Dict[object, Dict[IRI, List[object]]] = {}
    total = 0

    def _slot(subject: object, predicate: IRI) -> List[object]:
        by_pred = slices.get(subject)
        if by_pred is None:
            by_pred = slices[subject] = {}
        objs = by_pred.get(predicate)
        if objs is None:
            objs = by_pred[predicate] = []
        return objs

    m_slice: Dict[IRI, List[object]] = slices.setdefault(m_iri, {})
    m_slice[V.RDF_TYPE] = [V.MATRIX_CLASS]
    m_slice[V.NAME] = [literal(matrix.name)]
    total += 2
    if matrix.code:
        m_slice[V.CODE] = [literal(matrix.code)]
        total += 1
    quoted_ids: Dict[str, str] = {}

    def _qid(element_id: str) -> str:
        quoted = quoted_ids.get(element_id)
        if quoted is None:
            quoted = quoted_ids[element_id] = _quote(element_id)
        return quoted

    term = MATRIX_BASE.term
    row_iris: Dict[str, IRI] = {}
    col_iris: Dict[str, IRI] = {}
    has_rows = m_slice.setdefault(V.HAS_ROW, [])
    for element_id in matrix.row_ids:
        header = matrix.row(element_id)
        r_iri = term(f"{qname}/row/{_qid(element_id)}")
        row_iris[element_id] = r_iri
        has_rows.append(r_iri)
        r_slice: Dict[IRI, List[object]] = {
            V.RDF_TYPE: [V.ROW_CLASS],
            V.ROW_ELEMENT: [element_iri(header.schema_name, element_id)],
            V.NAME: [literal(element_id)],
            V.IS_COMPLETE: [literal(header.is_complete)],
        }
        total += 5
        if header.variable_name:
            r_slice[V.VARIABLE_NAME] = [literal(header.variable_name)]
            total += 1
        slices[r_iri] = r_slice
    has_columns = m_slice.setdefault(V.HAS_COLUMN, [])
    for element_id in matrix.column_ids:
        header = matrix.column(element_id)
        c_iri = term(f"{qname}/col/{_qid(element_id)}")
        col_iris[element_id] = c_iri
        has_columns.append(c_iri)
        c_slice: Dict[IRI, List[object]] = {
            V.RDF_TYPE: [V.COLUMN_CLASS],
            V.COLUMN_ELEMENT: [element_iri(header.schema_name, element_id)],
            V.NAME: [literal(element_id)],
            V.IS_COMPLETE: [literal(header.is_complete)],
        }
        total += 5
        if header.code:
            c_slice[V.CODE] = [literal(header.code)]
            total += 1
        slices[c_iri] = c_slice
    has_cells = m_slice.setdefault(V.HAS_CELL, [])
    rdf_type, cell_class = V.RDF_TYPE, V.CELL_CLASS
    cell_row, cell_column = V.CELL_ROW, V.CELL_COLUMN
    confidence_score, is_user_defined = V.CONFIDENCE_SCORE, V.IS_USER_DEFINED
    for cell in matrix.cells():
        source_id, target_id = cell.source_id, cell.target_id
        c_iri = term(f"{qname}/cell/{_qid(source_id)}/{_qid(target_id)}")
        r_iri = row_iris.get(source_id)
        if r_iri is None:
            r_iri = term(f"{qname}/row/{_qid(source_id)}")
        col_iri_ = col_iris.get(target_id)
        if col_iri_ is None:
            col_iri_ = term(f"{qname}/col/{_qid(target_id)}")
        has_cells.append(c_iri)
        slices[c_iri] = {
            rdf_type: [cell_class],
            cell_row: [r_iri],
            cell_column: [col_iri_],
            confidence_score: [literal(float(cell.confidence))],
            is_user_defined: [literal(cell.is_user_defined)],
        }
        total += 6
    for predicate in (V.HAS_ROW, V.HAS_COLUMN, V.HAS_CELL):
        if not m_slice[predicate]:
            del m_slice[predicate]
    return slices, total


def matrix_triples(matrix: MappingMatrix) -> List[Triple]:
    """The canonical triple layout of a matrix, as one list.

    Flattens :func:`_matrix_slices`, so it is byte-identical in content
    to what the delta serializer diffs.  Shared by :func:`matrix_to_rdf`
    and :func:`serialize_matrix`.
    """
    slices, total = _matrix_slices(matrix)
    triples: List[Triple] = []
    append = triples.append
    for subject, by_pred in slices.items():
        for predicate, objs in by_pred.items():
            for obj in objs:
                append(Triple(subject, predicate, obj))
    return triples


def _matrix_part_iris(store: TripleStore, m_iri: IRI) -> List[IRI]:
    """The row/column/cell resources a stored matrix links to."""
    parts: List[IRI] = []
    for predicate in (V.HAS_ROW, V.HAS_COLUMN, V.HAS_CELL):
        parts.extend(
            obj for obj in store.objects(m_iri, predicate)
            if isinstance(obj, IRI)
        )
    return parts


def remove_matrix(store: TripleStore, matrix_name: str) -> int:
    """Remove a matrix and all its row/column/cell triples.

    Also strips triples *pointing at* the parts (annotations on cells),
    so nothing dangles.  Returns the number of triples removed; zero if
    no such matrix is stored.
    """
    m_iri = matrix_iri(matrix_name)
    parts = _matrix_part_iris(store, m_iri)
    removed = store.remove_matching(subject=m_iri)
    for part in parts:
        removed += store.remove_matching(subject=part)
        removed += store.remove_matching(obj=part)
    return removed


def matrix_to_rdf(matrix: MappingMatrix, store: TripleStore) -> IRI:
    """Write a mapping matrix into the store; returns the matrix IRI.

    Idempotent: a previously stored matrix of the same name is removed
    first (:func:`remove_matrix`), so re-serializing after a rematch can
    never leave superseded cell triples behind.
    """
    m_iri = matrix_iri(matrix.name)
    if V.MATRIX_CLASS in store.objects(m_iri, V.RDF_TYPE):
        remove_matrix(store, matrix.name)
    store.add_many(matrix_triples(matrix))
    return m_iri


def serialize_matrix(
    matrix: MappingMatrix, store: TripleStore, delta: bool = False
) -> IRI:
    """Bulk matrix serialization (the ``EngineConfig.delta_matrix_rdf`` path).

    Both modes are idempotent and produce the same stored matrix state
    as :func:`matrix_to_rdf`:

    * **bulk** (``delta=False``) — remove any stored matrix of the same
      name, then land the precomputed triple list in one ``add_many``;
    * **delta** (``delta=True``) — diff the desired triples against the
      currently stored matrix subjects and only remove the stale / add
      the fresh ones, so re-serializing after a rematch touches changed
      cells alone.  Unlike the bulk mode, *inbound* triples pointing at
      surviving parts (e.g. annotations on cells) are preserved.
    """
    stats = _SERIALIZATION_STATS
    m_iri = matrix_iri(matrix.name)
    if not delta:
        desired = matrix_triples(matrix)
        removed = 0
        if V.MATRIX_CLASS in store.objects(m_iri, V.RDF_TYPE):
            removed = remove_matrix(store, matrix.name)
        store.add_many(desired)
        stats["matrix_bulk_serializations"] += 1
        stats["matrix_triples_written"] += len(desired)
        stats["matrix_triples_removed"] += removed
        return m_iri

    # diff the desired layout against the store at the term level: each
    # (subject, predicate) index slice is compared as a set of objects,
    # so no Triple is materialized for statements that are staying put —
    # only the actual fresh/stale statements pay construction cost
    desired_slices, total = _matrix_slices(matrix)
    subject_slice = store.subject_slice
    fresh: List[Triple] = []
    fresh_append = fresh.append
    for subject, by_pred in desired_slices.items():
        stored = subject_slice(subject)
        if stored:
            for predicate, objs in by_pred.items():
                have = stored.get(predicate)
                if have is None:
                    for obj in objs:
                        fresh_append(Triple(subject, predicate, obj))
                else:
                    for obj in objs:
                        if obj not in have:
                            fresh_append(Triple(subject, predicate, obj))
        else:
            for predicate, objs in by_pred.items():
                for obj in objs:
                    fresh_append(Triple(subject, predicate, obj))
    subjects = {m_iri}
    subjects.update(_matrix_part_iris(store, m_iri))
    stale: List[Triple] = []
    for subject in subjects:
        desired_slice = desired_slices.get(subject)
        stored = subject_slice(subject)
        for predicate, objs in stored.items():
            want = desired_slice.get(predicate) if desired_slice else None
            gone = objs - set(want) if want else objs
            for obj in gone:
                stale.append(Triple(subject, predicate, obj))
    stale.sort(key=Triple.sort_key)
    store.remove_many(stale)
    store.add_many(fresh)
    stats["matrix_delta_serializations"] += 1
    stats["matrix_triples_written"] += len(fresh)
    stats["matrix_triples_removed"] += len(stale)
    stats["matrix_triples_unchanged"] += total - len(fresh)
    return m_iri


def write_cell(store: TripleStore, matrix_name: str, cell: Correspondence) -> IRI:
    """Write (or refresh) one mapping cell's triples."""
    c_iri = cell_iri(matrix_name, cell.source_id, cell.target_id)
    m_iri = matrix_iri(matrix_name)
    store.add(m_iri, V.HAS_CELL, c_iri)
    store.add(c_iri, V.RDF_TYPE, V.CELL_CLASS)
    store.add(c_iri, V.CELL_ROW, row_iri(matrix_name, cell.source_id))
    store.add(c_iri, V.CELL_COLUMN, column_iri(matrix_name, cell.target_id))
    store.set_value(c_iri, V.CONFIDENCE_SCORE, literal(float(cell.confidence)))
    store.set_value(c_iri, V.IS_USER_DEFINED, literal(cell.is_user_defined))
    return c_iri


def rdf_to_matrix(store: TripleStore, matrix_name: str) -> MappingMatrix:
    """Reconstruct a mapping matrix from its triples."""
    m_iri = matrix_iri(matrix_name)
    if V.MATRIX_CLASS not in store.objects(m_iri, V.RDF_TYPE):
        raise StoreError(f"no mapping matrix named {matrix_name!r} in the store")
    matrix = MappingMatrix(matrix_name)
    code = store.object(m_iri, V.CODE)
    if isinstance(code, Literal):
        matrix.code = code.lexical

    def _schema_of(element_ref: Optional[object]) -> str:
        if isinstance(element_ref, IRI) and element_ref in ELEMENT_BASE:
            path = ELEMENT_BASE.local_name(element_ref)
            return urllib.parse.unquote(path.split("/", 1)[0])
        return ""

    for r in store.objects(m_iri, V.HAS_ROW):
        assert isinstance(r, IRI)
        name = store.object(r, V.NAME)
        element_id = name.lexical if isinstance(name, Literal) else ""
        header = matrix.add_row(element_id, schema_name=_schema_of(store.object(r, V.ROW_ELEMENT)))
        complete = store.object(r, V.IS_COMPLETE)
        header.is_complete = bool(complete.to_python()) if isinstance(complete, Literal) else False
        variable = store.object(r, V.VARIABLE_NAME)
        if isinstance(variable, Literal):
            header.variable_name = variable.lexical
    for c in store.objects(m_iri, V.HAS_COLUMN):
        assert isinstance(c, IRI)
        name = store.object(c, V.NAME)
        element_id = name.lexical if isinstance(name, Literal) else ""
        header = matrix.add_column(element_id, schema_name=_schema_of(store.object(c, V.COLUMN_ELEMENT)))
        complete = store.object(c, V.IS_COMPLETE)
        header.is_complete = bool(complete.to_python()) if isinstance(complete, Literal) else False
        code_lit = store.object(c, V.CODE)
        if isinstance(code_lit, Literal):
            header.code = code_lit.lexical
    for cl in store.objects(m_iri, V.HAS_CELL):
        assert isinstance(cl, IRI)
        path = MATRIX_BASE.local_name(cl)
        parts = path.split("/")
        # <matrix>/cell/<source>/<target>
        if len(parts) != 4 or parts[1] != "cell":
            raise StoreError(f"malformed cell IRI {cl}")
        source_id = urllib.parse.unquote(parts[2])
        target_id = urllib.parse.unquote(parts[3])
        conf = store.object(cl, V.CONFIDENCE_SCORE)
        user = store.object(cl, V.IS_USER_DEFINED)
        confidence = float(conf.to_python()) if isinstance(conf, Literal) else 0.0
        user_defined = bool(user.to_python()) if isinstance(user, Literal) else False
        matrix.set_confidence(source_id, target_id, confidence, user_defined=user_defined)
    return matrix


def matrices_in_store(store: TripleStore) -> List[str]:
    names = []
    for subject in store.subjects(V.RDF_TYPE, V.MATRIX_CLASS):
        lit = store.object(subject, V.NAME)
        if isinstance(lit, Literal):
            names.append(lit.lexical)
    return sorted(names)
